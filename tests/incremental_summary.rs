//! Acceptance tests for the incremental serving layer: for any sequence of seed
//! mutations, the [`DeltaSummary`] statistics — and the estimated `H` built on them —
//! are bit-identical to a cold `summarize_with` + `estimate` on the final seed set,
//! across both counting modes and 1/2/4/auto threads.

use factorized_graphs::core::incremental::{DeltaSummary, SeedMutation};
use factorized_graphs::core::{summarize_with, SummaryConfig};
use factorized_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic sweep cases: (generator seed, n, degree, k, skew, seed fraction).
fn sweep_cases() -> Vec<(u64, usize, f64, usize, f64, f64)> {
    vec![
        (3, 400, 8.0, 3, 8.0, 0.05),
        (11, 600, 6.0, 2, 3.0, 0.02),
        (29, 500, 10.0, 4, 5.0, 0.1),
    ]
}

fn build_case(case: (u64, usize, f64, usize, f64, f64)) -> (Arc<Graph>, SeedLabels, Labeling) {
    let (seed, n, degree, k, skew, fraction) = case;
    let cfg = GeneratorConfig::balanced(n, degree, k, skew).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(fraction, &mut rng);
    (Arc::new(syn.graph), seeds, syn.labeling)
}

/// Drive a random but seeded mutation stream (biased toward additions, with
/// removals and relabels mixed in) against the engine; returns the mutations.
fn mutation_stream(
    engine: &mut DeltaSummary,
    truth: &Labeling,
    steps: usize,
    rng_seed: u64,
) -> usize {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let k = truth.k();
    let mut applied = 0;
    for _ in 0..steps {
        let labeled = engine.seeds().labeled_nodes();
        let unlabeled = engine.seeds().unlabeled_nodes();
        let mutation = match rng.gen_index(4) {
            0 | 1 if !unlabeled.is_empty() => {
                let node = unlabeled[rng.gen_index(unlabeled.len())];
                SeedMutation::Add {
                    node,
                    label: truth.class_of(node),
                }
            }
            2 if labeled.len() > k => SeedMutation::Remove {
                node: labeled[rng.gen_index(labeled.len())],
            },
            _ if !labeled.is_empty() => SeedMutation::Relabel {
                node: labeled[rng.gen_index(labeled.len())],
                label: rng.gen_index(k),
            },
            _ => continue,
        };
        let outcome = engine.apply(&[mutation]).unwrap();
        assert_eq!(outcome.full_recomputes, 0, "delta path must not fall back");
        applied += 1;
    }
    applied
}

fn bits(m: &DenseMatrix) -> Vec<u64> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn delta_summaries_are_bit_identical_to_cold_summaries_across_modes_and_threads() {
    let thread_policies = [
        Threads::Serial,
        Threads::Fixed(2),
        Threads::Fixed(4),
        Threads::Auto,
    ];
    for case in sweep_cases() {
        for non_backtracking in [true, false] {
            let (graph, seeds, truth) = build_case(case);
            let mut engine = DeltaSummary::new(
                Arc::clone(&graph),
                seeds,
                5,
                non_backtracking,
                Threads::Serial,
            )
            .unwrap();
            let applied = mutation_stream(&mut engine, &truth, 40, case.0 ^ 0xabcd);
            assert!(applied > 0);
            assert_eq!(engine.stats().full_summarizations, 1);
            assert_eq!(engine.stats().delta_mutations, applied);

            // The maintained counts equal a cold summarization of the final seed
            // set, bit for bit, at every thread count.
            let final_seeds = engine.seeds().clone();
            for threads in thread_policies {
                let config = SummaryConfig {
                    max_length: 5,
                    non_backtracking,
                    variant: NormalizationVariant::RowStochastic,
                    ..SummaryConfig::default()
                };
                let cold = summarize_with(&graph, &final_seeds, &config, threads).unwrap();
                for l in 1..=5 {
                    assert_eq!(
                        bits(&engine.counts()[l - 1]),
                        bits(cold.count(l).unwrap()),
                        "case {case:?} nb={non_backtracking} {threads:?} length {l}"
                    );
                }
                // Statistics (all three normalization variants) follow the counts.
                for variant in NormalizationVariant::all() {
                    let delta_summary = engine
                        .summary(&SummaryConfig {
                            max_length: 5,
                            non_backtracking,
                            variant,
                            ..SummaryConfig::default()
                        })
                        .unwrap();
                    let cold = summarize_with(
                        &graph,
                        &final_seeds,
                        &SummaryConfig {
                            max_length: 5,
                            non_backtracking,
                            variant,
                            ..SummaryConfig::default()
                        },
                        threads,
                    )
                    .unwrap();
                    for l in 1..=5 {
                        assert_eq!(
                            bits(delta_summary.statistic(l).unwrap()),
                            bits(cold.statistic(l).unwrap()),
                            "statistics diverge: {case:?} {variant:?} length {l}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn estimated_h_through_published_counts_matches_cold_estimation() {
    // The serving path: mutate, publish into a shared cache, estimate through a
    // context. The resulting H must be bit-identical to cold estimation on the
    // final seed set — for the full estimator spread.
    for case in sweep_cases().into_iter().take(2) {
        let (graph, seeds, truth) = build_case(case);
        let mut engine =
            DeltaSummary::new(Arc::clone(&graph), seeds, 5, true, Threads::Serial).unwrap();
        mutation_stream(&mut engine, &truth, 25, case.0 ^ 0x5eed);
        let final_seeds = engine.seeds().clone();

        let cache = SummaryCache::shared();
        engine.publish_to(&cache);
        let ctx =
            EstimationContext::with_cache(&graph, &final_seeds, std::sync::Arc::clone(&cache));
        for method in ["mce", "dce", "dcer"] {
            let estimator = factorized_graphs::core::estimator_by_name(method).unwrap();
            let served = estimator.estimate_with_context(&ctx).unwrap();
            let cold = estimator.estimate(&graph, &final_seeds).unwrap();
            assert_eq!(
                bits(&served),
                bits(&cold),
                "case {case:?} method {method}: served H diverges from cold H"
            );
        }
        // Everything above was answered from the published counts.
        assert_eq!(ctx.summary_computations(), 0);
        assert_eq!(engine.stats().full_summarizations, 1);
    }
}

#[test]
fn amortization_counters_prove_delta_updates_beat_full_recomputes() {
    // Counter-level acceptance (no wall-clock): after warm-up, a single-seed
    // mutation performs zero full summarizations, and its touched rows are a small
    // fraction of what one recomputation would touch.
    let (graph, seeds, truth) = build_case((7, 2000, 5.0, 3, 8.0, 0.01));
    let mut engine =
        DeltaSummary::new(Arc::clone(&graph), seeds, 5, true, Threads::Serial).unwrap();
    let full_before = engine.stats().full_summarizations;
    let node = engine.seeds().unlabeled_nodes()[0];
    let outcome = engine
        .apply(&[SeedMutation::Add {
            node,
            label: truth.class_of(node),
        }])
        .unwrap();
    assert_eq!(engine.stats().full_summarizations, full_before);
    assert!(outcome.rows_touched > 0);
    assert!(
        outcome.rows_touched < engine.stats().full_rows_per_summarization,
        "delta rows {} should undercut full rows {}",
        outcome.rows_touched,
        engine.stats().full_rows_per_summarization
    );
}
