//! Kernel-rewrite equivalence suite: the blocked/monomorphized SpMM and the
//! buffer-reusing summarize chain must leave every observable output unchanged
//! **bit for bit**.
//!
//! The first test replays the pre-rewrite summarize chain out of public pieces —
//! the retained scalar reference kernel ([`fg_sparse::CsrMatrix::spmm_dense_reference`]),
//! an explicit `scale-rows-then-subtract` correction, and a dense `Xᵀ·N` product —
//! and asserts `summarize_with` reproduces it exactly on a seeded family of graphs,
//! at every thread count. The second asserts the recurrence's allocation discipline:
//! a constant number of `N` buffers per summarize call, independent of `ℓmax`, on
//! the fig3b-scale n = 50k graph.
//!
//! Both tests serialize on a shared lock: the `N`-buffer counter is process-global,
//! so no other summarize may run concurrently while a delta is measured.

use fg_core::paths::n_buffer_allocations;
use fg_core::prelude::*;
use fg_sparse::DenseMatrix as Dense;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

static SUMMARIZE_LOCK: Mutex<()> = Mutex::new(());

/// `diag(factors) * m` — the degree-correction scaling exactly as the pre-rewrite
/// chain computed it (value-times-factor, row by row).
fn scale_rows(m: &Dense, factors: &[f64]) -> Dense {
    let mut out = m.clone();
    for (i, &f) in factors.iter().enumerate() {
        for v in out.row_mut(i) {
            *v *= f;
        }
    }
    out
}

/// Replay the original summarize chain with the scalar reference kernel and
/// per-length allocations: `N(ℓ)` via `spmm_dense_reference`, NB corrections via
/// `sub(scale_rows(..))`, counts via `Xᵀ · N(ℓ)` (dense matmul — for n ≤ 4096 the
/// production reduction is a single chunk accumulating in the same node order, and
/// `1.0 * v` is bitwise `v`, so this is the exact old arithmetic).
fn reference_counts(
    graph: &fg_graph::Graph,
    seeds: &fg_graph::SeedLabels,
    max_length: usize,
    non_backtracking: bool,
) -> Vec<Dense> {
    assert!(seeds.n() <= 4096, "single-chunk replay only");
    let w = graph.adjacency();
    let degrees = graph.degrees();
    let degrees_minus_one: Vec<f64> = degrees.iter().map(|&d| d - 1.0).collect();
    let x = seeds.to_matrix();
    let xt = x.transpose();

    let mut counts = Vec::new();
    let mut prev1 = w.spmm_dense_reference(&x).unwrap();
    counts.push(xt.matmul(&prev1).unwrap());
    let mut prev2: Option<Dense> = None;
    for ell in 2..=max_length {
        let product = w.spmm_dense_reference(&prev1).unwrap();
        let next = if non_backtracking {
            if ell == 2 {
                product.sub(&scale_rows(&x, &degrees)).unwrap()
            } else {
                let p2 = prev2.as_ref().unwrap();
                product.sub(&scale_rows(p2, &degrees_minus_one)).unwrap()
            }
        } else {
            product
        };
        counts.push(xt.matmul(&next).unwrap());
        prev2 = Some(prev1);
        prev1 = next;
    }
    counts
}

/// Property-style seeded sweep: `summarize_with` is bit-identical to the
/// pre-rewrite chain for both counting modes, several graph shapes (including a
/// hub-heavy skew), several `ℓmax`, and 1/2/4/auto threads.
#[test]
fn summarize_matches_pre_rewrite_chain_bit_for_bit() {
    let _guard = SUMMARIZE_LOCK.lock().unwrap();
    let cases = [
        (500usize, 6.0f64, 3usize, 3.0f64, 7u64),
        (800, 10.0, 4, 8.0, 11),
        (1200, 4.0, 2, 2.0, 13),
    ];
    for &(n, degree, k, skew, seed) in &cases {
        let cfg = GeneratorConfig::balanced(n, degree, k, skew).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        for non_backtracking in [false, true] {
            for max_length in [1usize, 2, 5] {
                let expected = reference_counts(&syn.graph, &seeds, max_length, non_backtracking);
                let config = SummaryConfig {
                    max_length,
                    non_backtracking,
                    variant: NormalizationVariant::RowStochastic,
                    ..SummaryConfig::default()
                };
                for threads in [
                    Threads::Serial,
                    Threads::Fixed(2),
                    Threads::Fixed(4),
                    Threads::Auto,
                ] {
                    let summary = summarize_with(&syn.graph, &seeds, &config, threads).unwrap();
                    assert_eq!(summary.counts.len(), expected.len());
                    for (ell, (got, want)) in summary.counts.iter().zip(expected.iter()).enumerate()
                    {
                        assert_eq!(
                            got.data(),
                            want.data(),
                            "n={n} k={k} nb={non_backtracking} lmax={max_length} \
                             {threads:?} length {}",
                            ell + 1
                        );
                    }
                }
            }
        }
    }
}

/// Acceptance gate: on the fig3b n = 50k graph, `summarize_with` allocates a
/// constant number of `N` recurrence buffers — three in non-backtracking mode, two
/// in plain mode — regardless of `ℓmax`. Zero per-length heap allocations.
#[test]
fn summarize_allocates_constant_n_buffers_on_fig3b_graph() {
    let _guard = SUMMARIZE_LOCK.lock().unwrap();
    let cfg = GeneratorConfig::balanced(50_000, 5.0, 3, 8.0).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);

    let allocs_for = |max_length: usize, non_backtracking: bool| -> usize {
        let config = SummaryConfig {
            max_length,
            non_backtracking,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        let before = n_buffer_allocations();
        summarize_with(&syn.graph, &seeds, &config, Threads::Serial).unwrap();
        n_buffer_allocations() - before
    };

    // Non-backtracking rotates three preallocated buffers; the count must not
    // grow with lmax (that would mean per-length allocations are back).
    assert_eq!(allocs_for(3, true), 3);
    assert_eq!(allocs_for(5, true), 3);
    assert_eq!(allocs_for(8, true), 3);
    // Plain counting ping-pongs two.
    assert_eq!(allocs_for(5, false), 2);
    // Degenerate lengths need even fewer.
    assert_eq!(allocs_for(1, true), 1);
    assert_eq!(allocs_for(2, true), 2);
}
