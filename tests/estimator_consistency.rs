//! Integration tests for the statistical behaviour of the estimators: consistency of the
//! non-backtracking statistics (Theorem 4.1), the L2-error ordering MCE ≥ DCE ≥ DCEr at
//! small label fractions (Fig. 6e), hyperparameter behaviour, and normalization variants.

use fg_core::prelude::*;
use fg_core::{summarize, DceConfig, NormalizationVariant, SummaryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn synthetic(n: usize, d: f64, h: f64, seed: u64) -> fg_graph::SyntheticGraph {
    let cfg = GeneratorConfig::balanced(n, d, 3, h).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).unwrap()
}

#[test]
fn nb_statistics_track_powers_of_h_example_4_2() {
    // Example 4.2 / Fig. 5a: on a 10k-node graph with d = 20, h = 3 and f = 0.1, the
    // NB statistics track Hℓ while the full-path statistics drift upward on the diagonal.
    let cfg = GeneratorConfig::balanced_uniform(10_000, 20.0, 3, 3.0).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);

    let nb = summarize(
        &syn.graph,
        &seeds,
        &SummaryConfig {
            max_length: 4,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        },
    )
    .unwrap();
    let full = summarize(
        &syn.graph,
        &seeds,
        &SummaryConfig {
            max_length: 4,
            non_backtracking: false,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        },
    )
    .unwrap();

    for ell in 2..=4 {
        let h_pow = syn.planted_h.pow(ell);
        let nb_err = h_pow
            .frobenius_distance(nb.statistic(ell).unwrap())
            .unwrap();
        let full_err = h_pow
            .frobenius_distance(full.statistic(ell).unwrap())
            .unwrap();
        assert!(
            nb_err < full_err,
            "length {ell}: NB error {nb_err} should beat full-path error {full_err}"
        );
        assert!(nb_err < 0.2, "length {ell}: NB error {nb_err} too large");
    }
}

#[test]
fn l2_error_ordering_mce_dce_dcer_at_sparse_labels() {
    // Fig. 6e: at small f the MCE estimate is poor, DCE improves on it, DCEr is best
    // (or ties DCE).
    let syn = synthetic(5000, 25.0, 8.0, 17);
    let mut rng = StdRng::seed_from_u64(18);
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let gold = syn.planted_h.as_dense();

    let mce_h = MyopicCompatibilityEstimation::default()
        .estimate(&syn.graph, &seeds)
        .unwrap();
    let dce_h = DistantCompatibilityEstimation::default()
        .estimate(&syn.graph, &seeds)
        .unwrap();
    let dcer_h = DceWithRestarts::default()
        .estimate(&syn.graph, &seeds)
        .unwrap();

    let mce_err = gold.frobenius_distance(&mce_h).unwrap();
    let dce_err = gold.frobenius_distance(&dce_h).unwrap();
    let dcer_err = gold.frobenius_distance(&dcer_h).unwrap();

    assert!(
        dcer_err <= dce_err + 1e-6,
        "DCEr error {dcer_err} should not exceed DCE error {dce_err}"
    );
    assert!(
        dcer_err < mce_err,
        "DCEr error {dcer_err} should beat MCE error {mce_err} at f = 1%"
    );
}

#[test]
fn with_plenty_of_labels_all_methods_converge_to_similar_estimates() {
    // At f = 50% the neighbor statistics alone suffice, so MCE, DCE and DCEr agree.
    let syn = synthetic(2000, 20.0, 3.0, 27);
    let mut rng = StdRng::seed_from_u64(28);
    let seeds = syn.labeling.stratified_sample(0.5, &mut rng);
    let gold = syn.planted_h.as_dense();

    for est in [
        Box::new(MyopicCompatibilityEstimation::default()) as Box<dyn CompatibilityEstimator>,
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
    ] {
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        let err = gold.frobenius_distance(&h).unwrap();
        // The reference here is the *planted* H; the generator itself introduces a small
        // gap between planted and realized compatibilities, so allow a modest margin.
        assert!(
            err < 0.35,
            "{}: error {err} too large at f = 0.5",
            est.name()
        );
    }
}

#[test]
fn longer_paths_help_at_sparse_labels() {
    // Fig. 6b: ℓmax = 5 beats ℓmax = 1 when labels are very sparse.
    let syn = synthetic(5000, 25.0, 8.0, 37);
    let mut rng = StdRng::seed_from_u64(38);
    let seeds = syn.labeling.stratified_sample(0.005, &mut rng);
    let gold = syn.planted_h.as_dense();

    let short = DceWithRestarts::new(DceConfig::new(1, 10.0), 10)
        .estimate(&syn.graph, &seeds)
        .unwrap();
    let long = DceWithRestarts::new(DceConfig::new(5, 10.0), 10)
        .estimate(&syn.graph, &seeds)
        .unwrap();
    let short_err = gold.frobenius_distance(&short).unwrap();
    let long_err = gold.frobenius_distance(&long).unwrap();
    assert!(
        long_err < short_err,
        "ℓmax=5 error {long_err} should beat ℓmax=1 error {short_err} at f = 0.5%"
    );
}

#[test]
fn normalization_variant_1_is_at_least_as_good_as_variant_3() {
    // Fig. 6a: variant 3 generally performs worse.
    let syn = synthetic(5000, 25.0, 8.0, 47);
    let mut rng = StdRng::seed_from_u64(48);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let gold = syn.planted_h.as_dense();

    let mut errors = Vec::new();
    for variant in [
        NormalizationVariant::RowStochastic,
        NormalizationVariant::MeanScaled,
    ] {
        let config = DceConfig {
            variant,
            ..DceConfig::default()
        };
        let h = DceWithRestarts::new(config, 10)
            .estimate(&syn.graph, &seeds)
            .unwrap();
        errors.push(gold.frobenius_distance(&h).unwrap());
    }
    assert!(
        errors[0] <= errors[1] + 0.05,
        "variant 1 error {} should not be much worse than variant 3 error {}",
        errors[0],
        errors[1]
    );
}

#[test]
fn restarts_monotonically_improve_energy() {
    // Section 4.8: more restarts can only lower the best energy found.
    let syn = synthetic(3000, 15.0, 8.0, 57);
    let mut rng = StdRng::seed_from_u64(58);
    let seeds = syn.labeling.stratified_sample(0.005, &mut rng);
    let summary = summarize(&syn.graph, &seeds, &DceConfig::default().summary_config()).unwrap();

    let mut previous_energy = f64::INFINITY;
    for restarts in [1, 2, 5, 10] {
        let est = DceWithRestarts::new(DceConfig::default(), restarts);
        let (_, energy) = est.estimate_from_summary(&summary).unwrap();
        assert!(
            energy <= previous_energy + 1e-12,
            "energy with {restarts} restarts ({energy}) should not exceed the previous best ({previous_energy})"
        );
        previous_energy = energy;
    }
}

#[test]
fn gold_standard_measurement_matches_planted_matrix() {
    let syn = synthetic(4000, 20.0, 3.0, 67);
    let gold = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
    let dist = syn.planted_h.l2_distance(&gold).unwrap();
    assert!(dist < 0.1, "measured GS differs from planted H by {dist}");
}
