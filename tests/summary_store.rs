//! Integration tests for the persistent summary store: fingerprint-keyed files must
//! round-trip **bit-identically** (`assert_eq!` on raw `f64` data, no tolerance),
//! serve second processes with zero summarizations, and reject corrupt or mismatched
//! files loudly — recomputing instead of returning damaged statistics.

use fg_core::prelude::*;
use fg_core::GraphSummary;
use std::sync::Arc;

fn seeded_instance(seed: u64) -> (Graph, Labeling, SeedLabels) {
    let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    (syn.graph, syn.labeling, seeds)
}

fn temp_store(name: &str) -> Arc<SummaryStore> {
    let dir = std::env::temp_dir().join(format!("fg_root_store_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    Arc::new(SummaryStore::open(dir).unwrap())
}

#[test]
fn concurrent_prefix_upgrades_by_two_sessions_leave_a_valid_store() {
    // Two "sessions" (independent contexts over independent caches, one shared
    // store directory) repeatedly extend the same stored summary to *different*
    // lmax. The unique-temp-file + atomic-rename write path must keep the store
    // file valid at every instant, and each session must keep producing summaries
    // bit-identical to a cold computation.
    let (graph, _, seeds) = seeded_instance(21);
    let store = temp_store("concurrent_upgrade");
    let reference_short = summarize(&graph, &seeds, &SummaryConfig::with_max_length(2)).unwrap();
    let reference_long = summarize(&graph, &seeds, &SummaryConfig::with_max_length(6)).unwrap();

    std::thread::scope(|scope| {
        let session = |max_length: usize, reference: &GraphSummary| {
            let store = Arc::clone(&store);
            let graph = &graph;
            let seeds = &seeds;
            let reference = reference.clone();
            scope.spawn(move || {
                for _ in 0..12 {
                    // A fresh cache each round simulates a new session that reads
                    // whatever prefix is on disk and writes back its own length.
                    let ctx = EstimationContext::new(graph, seeds).store(Arc::clone(&store));
                    let summary = ctx
                        .summary(&SummaryConfig::with_max_length(max_length))
                        .unwrap();
                    for l in 1..=max_length {
                        assert_eq!(
                            summary.count(l).unwrap().data(),
                            reference.count(l).unwrap().data(),
                            "session lmax={max_length} diverged at length {l}"
                        );
                    }
                }
            })
        };
        let a = session(2, &reference_short);
        let b = session(6, &reference_long);
        a.join().unwrap();
        b.join().unwrap();
    });

    // Whatever rename landed last, the surviving file parses and serves one of
    // the two lengths bit-identically, and no temp files are stranded.
    let entries = store.entries().unwrap();
    assert_eq!(entries.len(), 1, "{entries:?}");
    let meta = entries[0].meta.as_ref().expect("file is valid");
    assert!(meta.max_length == 2 || meta.max_length == 6, "{meta:?}");
    let loaded = store
        .load(graph.fingerprint(), seeds.fingerprint(), true)
        .unwrap()
        .unwrap();
    let reference = if loaded.counts.len() == 2 {
        &reference_short
    } else {
        &reference_long
    };
    for (l, counts) in loaded.counts.iter().enumerate() {
        assert_eq!(counts.data(), reference.count(l + 1).unwrap().data());
    }
    std::fs::remove_dir_all(store.dir()).ok();
}

#[test]
fn warm_path_round_trip_is_bit_identical_for_both_modes_and_all_variants() {
    let (graph, _, seeds) = seeded_instance(3);
    let store = temp_store("round_trip");
    for non_backtracking in [true, false] {
        let config = SummaryConfig {
            max_length: 5,
            non_backtracking,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        // Cold context computes and persists.
        let cold = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        let fresh = cold.summary(&config).unwrap();
        assert_eq!(cold.summary_computations(), 1, "nb={non_backtracking}");

        // A fresh cache (new process) is served from disk: zero computations, and
        // every length / variant combination is bit-identical to the fresh result.
        let warm = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        for variant in NormalizationVariant::all() {
            let served = warm
                .summary(&SummaryConfig {
                    max_length: 5,
                    non_backtracking,
                    variant,
                    ..SummaryConfig::default()
                })
                .unwrap();
            for l in 1..=5 {
                assert_eq!(
                    served.count(l).unwrap().data(),
                    fresh.count(l).unwrap().data(),
                    "stored counts diverge at length {l} (nb={non_backtracking})"
                );
                let expected = summarize(
                    &graph,
                    &seeds,
                    &SummaryConfig {
                        max_length: 5,
                        non_backtracking,
                        variant,
                        ..SummaryConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    served.statistic(l).unwrap().data(),
                    expected.statistic(l).unwrap().data(),
                    "stored statistics diverge at length {l} ({variant:?})"
                );
            }
        }
        assert_eq!(warm.summary_computations(), 0, "nb={non_backtracking}");
        assert_eq!(warm.store_hits(), 1, "nb={non_backtracking}");
    }
    std::fs::remove_dir_all(store.dir()).ok();
}

#[test]
fn estimators_are_bit_identical_through_the_warm_store() {
    // End-to-end warm-path proof at the estimator level: an H estimated from
    // disk-served statistics equals the directly computed one bit for bit.
    let (graph, _, seeds) = seeded_instance(5);
    let store = temp_store("estimators");
    let warmup = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
    warmup.warm(&SummaryConfig::with_max_length(5)).unwrap();

    let served_ctx = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
    let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
        Box::new(MyopicCompatibilityEstimation::default()),
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
    ];
    for estimator in &estimators {
        let direct = estimator.estimate(&graph, &seeds).unwrap();
        let via_store = estimator.estimate_with_context(&served_ctx).unwrap();
        assert_eq!(direct.data(), via_store.data(), "{}", estimator.name());
    }
    assert_eq!(served_ctx.summary_computations(), 0);
    std::fs::remove_dir_all(store.dir()).ok();
}

#[test]
fn corrupted_and_mismatched_files_are_rejected_and_recomputed() {
    let (graph, _, seeds) = seeded_instance(7);
    let store = temp_store("reject");
    let config = SummaryConfig::with_max_length(4);
    let writer = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
    let expected = writer.summary(&config).unwrap();
    let path = store.path_for(graph.fingerprint(), seeds.fingerprint(), true);

    // Corruption: flip a payload byte. load() must error, the context must fall back
    // to recomputation with correct results.
    let good = std::fs::read(&path).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x55;
    std::fs::write(&path, &bad).unwrap();
    assert!(store
        .load(graph.fingerprint(), seeds.fingerprint(), true)
        .is_err());
    let recovering = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
    let recovered = recovering.summary(&config).unwrap();
    assert_eq!(recovering.summary_computations(), 1);
    assert_eq!(recovering.store_hits(), 0);
    for l in 1..=4 {
        assert_eq!(
            recovered.count(l).unwrap().data(),
            expected.count(l).unwrap().data()
        );
    }

    // Mismatch: a valid file copied under another dataset's name must be rejected,
    // not served (its embedded fingerprints disagree with the request).
    let (other_graph, _, other_seeds) = seeded_instance(11);
    let foreign = store.path_for(other_graph.fingerprint(), other_seeds.fingerprint(), true);
    std::fs::write(&path, &good).unwrap();
    std::fs::copy(&path, &foreign).unwrap();
    let err = store
        .load(other_graph.fingerprint(), other_seeds.fingerprint(), true)
        .unwrap_err();
    assert!(err.to_string().contains("fingerprints"), "{err}");
    let foreign_ctx = EstimationContext::new(&other_graph, &other_seeds).store(Arc::clone(&store));
    let foreign_summary = foreign_ctx.summary(&config).unwrap();
    assert_eq!(foreign_ctx.summary_computations(), 1);
    let foreign_fresh = summarize(&other_graph, &other_seeds, &config).unwrap();
    for l in 1..=4 {
        assert_eq!(
            foreign_summary.count(l).unwrap().data(),
            foreign_fresh.count(l).unwrap().data()
        );
    }
    std::fs::remove_dir_all(store.dir()).ok();
}

#[test]
fn pipelines_share_summaries_across_processes_via_the_store() {
    // Two pipeline invocations (fresh caches each, as separate processes would have)
    // on the same dataset: the second performs zero summarizations and produces
    // byte-identical predictions.
    let (graph, labeling, seeds) = seeded_instance(13);
    let store = temp_store("pipelines");

    let run = || {
        Pipeline::on(&graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .summary_store(Arc::clone(&store))
            .run()
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first.summary_computations, 1);
    assert_eq!(first.summary_store_hits, 0);
    assert_eq!(second.summary_computations, 0);
    // The first run also persisted its optimized H, so the second run is served
    // at the H level and never consults the summary files.
    assert_eq!(second.summary_store_hits, 0);
    assert_eq!(second.optimize_store_hits, 1);
    assert_eq!(second.estimated_h.data(), first.estimated_h.data());
    assert_eq!(second.outcome.predictions, first.outcome.predictions);
    assert_eq!(second.outcome.beliefs.data(), first.outcome.beliefs.data());
    assert_eq!(
        second.accuracy(&labeling, &seeds),
        first.accuracy(&labeling, &seeds)
    );
    std::fs::remove_dir_all(store.dir()).ok();
}
