//! Integration tests: end-to-end estimation + propagation across crates.
//!
//! These reproduce, at test scale, the headline claims of the paper: DCEr estimated from
//! a sparsely labeled graph labels the remaining nodes about as well as the gold
//! standard, clearly better than uninformed baselines, and the estimation step is cheap
//! relative to propagation on large graphs.

use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn synthetic(n: usize, d: f64, k: usize, h: f64, seed: u64) -> fg_graph::SyntheticGraph {
    let cfg = GeneratorConfig::balanced(n, d, k, h).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).unwrap()
}

#[test]
fn dcer_is_close_to_gold_standard_at_one_percent_labels() {
    let syn = synthetic(5000, 20.0, 3, 8.0, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);

    let gold = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
    let gs = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .unwrap();
    let dcer = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap();

    let gs_acc = gs.accuracy(&syn.labeling, &seeds);
    let dcer_acc = dcer.accuracy(&syn.labeling, &seeds);
    assert!(gs_acc > 0.6, "GS accuracy {gs_acc} unexpectedly low");
    assert!(
        dcer_acc > gs_acc - 0.05,
        "DCEr ({dcer_acc}) should be within 0.05 of GS ({gs_acc})"
    );
}

#[test]
fn estimated_compatibilities_beat_uniform_and_random() {
    let syn = synthetic(3000, 15.0, 3, 8.0, 21);
    let mut rng = StdRng::seed_from_u64(22);
    let seeds = syn.labeling.stratified_sample(0.02, &mut rng);

    let dcer = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap();
    let uniform = DenseMatrix::filled(3, 3, 1.0 / 3.0);
    let blind = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("uniform", &uniform)
        .run()
        .unwrap();

    let dcer_acc = dcer.accuracy(&syn.labeling, &seeds);
    let blind_acc = blind.accuracy(&syn.labeling, &seeds);
    let random = fg_propagation::random_baseline(3);
    assert!(
        dcer_acc > blind_acc + 0.1,
        "DCEr {dcer_acc} vs uniform {blind_acc}"
    );
    assert!(dcer_acc > random + 0.2);
}

#[test]
fn heterophilous_graph_defeats_homophily_methods_but_not_dcer() {
    // The Fig. 6i comparison: homophily-based propagation collapses on a heterophilous
    // graph while estimation + LinBP stays accurate.
    let syn = synthetic(3000, 15.0, 3, 8.0, 31);
    let mut rng = StdRng::seed_from_u64(32);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);

    let harmonic_acc = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .propagator(Harmonic::default())
        .run()
        .unwrap()
        .accuracy(&syn.labeling, &seeds);

    let dcer_acc = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap()
        .accuracy(&syn.labeling, &seeds);

    assert!(
        dcer_acc > harmonic_acc + 0.15,
        "DCEr {dcer_acc} should clearly beat the homophily baseline {harmonic_acc}"
    );
}

#[test]
fn all_estimators_produce_valid_compatibility_matrices() {
    let syn = synthetic(1500, 12.0, 3, 3.0, 41);
    let mut rng = StdRng::seed_from_u64(42);
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);

    let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
        Box::new(MyopicCompatibilityEstimation::default()),
        Box::new(LinearCompatibilityEstimation::default()),
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
        Box::new(GoldStandard::new(syn.labeling.clone())),
    ];
    for est in &estimators {
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        assert_eq!(h.rows(), 3, "{}", est.name());
        assert!(h.is_symmetric(1e-6), "{} output not symmetric", est.name());
        for s in h.row_sums() {
            assert!((s - 1.0).abs() < 1e-6, "{} rows not stochastic", est.name());
        }
    }
}

#[test]
fn estimation_is_faster_than_propagation_on_larger_graphs() {
    // The paper's scalability claim (Fig. 3b): DCEr's estimation time is below the
    // LinBP propagation time once graphs get large, because both are O(mk) per pass but
    // propagation runs 10 iterations while the summarization runs ℓmax passes and the
    // optimization is graph-size independent.
    let syn = synthetic(20_000, 10.0, 3, 8.0, 51);
    let mut rng = StdRng::seed_from_u64(52);
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let result = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .propagator(LinBp::new(LinBpConfig {
            max_iterations: 10,
            tolerance: None,
            ..LinBpConfig::default()
        }))
        .run()
        .unwrap();
    // Allow generous slack: the point is the same order of magnitude, not 28x.
    assert!(
        result.estimation_time < result.propagation_time * 20,
        "estimation {:?} should not dwarf propagation {:?}",
        result.estimation_time,
        result.propagation_time
    );
}

#[test]
fn class_imbalance_and_general_h_are_handled() {
    // Fig. 6j: α = [1/6, 1/3, 1/2] with a general (non-h-parameterized) H.
    let h = CompatibilityMatrix::from_rows(&[
        vec![0.2, 0.6, 0.2],
        vec![0.6, 0.1, 0.3],
        vec![0.2, 0.3, 0.5],
    ])
    .unwrap();
    let cfg = GeneratorConfig {
        n: 4000,
        m: 50_000,
        alpha: vec![1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0],
        h,
        distribution: DegreeDistribution::paper_power_law(),
    };
    let mut rng = StdRng::seed_from_u64(61);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.02, &mut rng);

    let gold = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
    let gs = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .unwrap();
    let dcer = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap();
    let gs_acc = gs.accuracy(&syn.labeling, &seeds);
    let dcer_acc = dcer.accuracy(&syn.labeling, &seeds);
    assert!(dcer_acc > gs_acc - 0.1, "DCEr {dcer_acc} vs GS {gs_acc}");
    assert!(dcer_acc > fg_propagation::random_baseline(3));
}
