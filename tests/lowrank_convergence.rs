//! Rank-convergence property suite for the low-rank spectral counting backend.
//!
//! Over a seeded family of small graphs, the rank-`r` summaries must converge
//! to the exact oracle as `r → n`: the truncation error (max absolute deviation
//! of the normalized statistics from the exact backend's) is tiny at full rank
//! — the recurrence is algebraically exact there, only solver tolerance remains
//! — and no larger at full rank than at the smallest measured rank. Both
//! counting modes are exercised.
//!
//! The backend also carries the workspace-wide determinism contract: all
//! recurrence arithmetic is serial dense algebra and the eigensolve is
//! bit-identical at any thread count, so a low-rank summarize at 1/2/4/auto
//! threads must produce bit-identical statistics.

use fg_core::prelude::*;
use fg_graph::FactorConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Max absolute element-wise deviation between two summaries' statistics.
fn max_deviation(a: &fg_core::GraphSummary, b: &fg_core::GraphSummary, max_length: usize) -> f64 {
    (1..=max_length)
        .flat_map(|l| {
            let x = a.statistic(l).expect("length within summary");
            let y = b.statistic(l).expect("length within summary");
            x.data()
                .iter()
                .zip(y.data().iter())
                .map(|(p, q)| (p - q).abs())
                .collect::<Vec<f64>>()
        })
        .fold(0.0, f64::max)
}

#[test]
fn rank_r_summaries_converge_to_the_exact_oracle() {
    for (graph_seed, nodes) in [(1u64, 40usize), (2, 60), (3, 80)] {
        let cfg = GeneratorConfig::balanced(nodes, 6.0, 3, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.4, &mut rng);
        let n = syn.graph.num_nodes();
        for non_backtracking in [false, true] {
            let exact_config = SummaryConfig {
                max_length: 4,
                non_backtracking,
                ..SummaryConfig::default()
            };
            let exact = summarize_with(&syn.graph, &seeds, &exact_config, Threads::Serial).unwrap();
            let mut deviations = Vec::new();
            for rank in [4, n / 2, n] {
                let lowrank_config = SummaryConfig {
                    backend: CountingBackend::LowRank(FactorConfig::with_rank(rank)),
                    ..exact_config
                };
                let summary =
                    summarize_with(&syn.graph, &seeds, &lowrank_config, Threads::Serial).unwrap();
                deviations.push(max_deviation(&summary, &exact, 4));
            }
            let full_rank = *deviations.last().unwrap();
            assert!(
                full_rank < 1e-6,
                "full-rank statistics must match exact within solver tolerance \
                 (seed {graph_seed}, n {n}, nb {non_backtracking}): deviation {full_rank:e}"
            );
            assert!(
                full_rank <= deviations[0] + 1e-12,
                "truncation error must not grow from rank 4 ({:e}) to rank n ({:e}) \
                 (seed {graph_seed}, n {n}, nb {non_backtracking})",
                deviations[0],
                full_rank
            );
        }
    }
}

#[test]
fn lowrank_summaries_are_bit_identical_at_any_thread_count() {
    let cfg = GeneratorConfig::balanced(120, 8.0, 3, 6.0).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.3, &mut rng);
    for non_backtracking in [false, true] {
        let config = SummaryConfig {
            max_length: 5,
            non_backtracking,
            backend: CountingBackend::LowRank(FactorConfig::with_rank(16)),
            ..SummaryConfig::default()
        };
        let reference = summarize_with(&syn.graph, &seeds, &config, Threads::Serial).unwrap();
        for threads in [
            Threads::Fixed(1),
            Threads::Fixed(2),
            Threads::Fixed(4),
            Threads::Auto,
        ] {
            let summary = summarize_with(&syn.graph, &seeds, &config, threads).unwrap();
            for l in 1..=5 {
                let want = reference.statistic(l).unwrap();
                let got = summary.statistic(l).unwrap();
                assert!(
                    want.data()
                        .iter()
                        .zip(got.data().iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "low-rank statistics diverged bitwise at length {l} \
                     ({threads:?}, nb {non_backtracking})"
                );
            }
        }
    }
}
