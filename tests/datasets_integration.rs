//! Integration tests for the real-world dataset substitutes: every dataset synthesizes,
//! its measured gold standard resembles the published matrix, and the end-to-end
//! pipeline behaves as in Fig. 7 (DCEr close to GS, clearly above random).

use fg_core::prelude::*;
use fg_datasets::{parse_edge_list, parse_labels, synthesize, DatasetId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_dataset_substitute_synthesizes_and_measures() {
    for id in DatasetId::all() {
        // Tiny scale so the full sweep stays fast; Cora/Citeseer are small already.
        let scale = match id {
            DatasetId::Cora | DatasetId::Citeseer => 0.3,
            DatasetId::PokecGender | DatasetId::Flickr => 0.001,
            _ => 0.02,
        };
        let inst = synthesize(id, scale, 7).unwrap();
        assert_eq!(inst.labeling.k(), inst.spec.k, "{:?}", id);
        assert!(inst.graph.num_edges() > 0, "{:?}", id);
        let gs = inst.measured_gold_standard().unwrap();
        assert_eq!(gs.rows(), inst.spec.k);
        // Rows of the measured matrix are stochastic (every class has some edges).
        for s in gs.row_sums() {
            assert!((s - 1.0).abs() < 1e-6 || s.abs() < 1e-9, "{:?}", id);
        }
    }
}

#[test]
fn movielens_substitute_end_to_end_dcer_close_to_gs() {
    // Fig. 7d at reduced scale: heterophilous tripartite-ish structure.
    let inst = synthesize(DatasetId::MovieLens, 0.05, 17).unwrap();
    let mut rng = StdRng::seed_from_u64(18);
    let seeds = inst.labeling.stratified_sample(0.01, &mut rng);

    let gold = inst.measured_gold_standard().unwrap();
    let gs = Pipeline::on(&inst.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .unwrap();
    let dcer = Pipeline::on(&inst.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap();

    let gs_acc = gs.accuracy(&inst.labeling, &seeds);
    let dcer_acc = dcer.accuracy(&inst.labeling, &seeds);
    assert!(gs_acc > 0.5, "GS accuracy {gs_acc}");
    assert!(
        dcer_acc > gs_acc - 0.1,
        "DCEr {dcer_acc} should be close to GS {gs_acc} on the MovieLens substitute"
    );
}

#[test]
fn pokec_substitute_recovers_mild_heterophily() {
    let inst = synthesize(DatasetId::PokecGender, 0.005, 27).unwrap();
    let mut rng = StdRng::seed_from_u64(28);
    let seeds = inst.labeling.stratified_sample(0.05, &mut rng);
    let h = DceWithRestarts::default()
        .estimate(&inst.graph, &seeds)
        .unwrap();
    // The published Pokec matrix has off-diagonal 0.56 > diagonal 0.44.
    assert!(
        h.get(0, 1) > h.get(0, 0),
        "estimated Pokec compatibilities lost the heterophilous structure: {h:?}"
    );
}

#[test]
fn cora_substitute_is_homophilous_and_labelable() {
    let inst = synthesize(DatasetId::Cora, 1.0, 37).unwrap();
    let gs = inst.measured_gold_standard().unwrap();
    // Diagonal dominance survives synthesis.
    let k = inst.spec.k;
    let diag_mean: f64 = (0..k).map(|c| gs.get(c, c)).sum::<f64>() / k as f64;
    assert!(diag_mean > 1.5 / k as f64, "Cora substitute lost homophily");

    let mut rng = StdRng::seed_from_u64(38);
    let seeds = inst.labeling.stratified_sample(0.1, &mut rng);
    let result = Pipeline::on(&inst.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gs)
        .run()
        .unwrap();
    let acc = result.accuracy(&inst.labeling, &seeds);
    assert!(
        acc > fg_propagation::random_baseline(k) + 0.1,
        "accuracy {acc}"
    );
}

#[test]
fn io_roundtrip_preserves_estimation_results() {
    // Export a substitute to the text format, re-import it, and check the estimate is
    // identical — exercising the IO layer end to end.
    let inst = synthesize(DatasetId::Citeseer, 0.2, 47).unwrap();
    let mut rng = StdRng::seed_from_u64(48);
    let seeds = inst.labeling.stratified_sample(0.2, &mut rng);

    let edge_text = fg_datasets::format_edge_list(&inst.graph);
    let label_text = fg_datasets::format_labels(&inst.labeling);
    let graph2 = parse_edge_list(inst.graph.num_nodes(), &edge_text).unwrap();
    let full2 = parse_labels(inst.graph.num_nodes(), inst.spec.k, &label_text).unwrap();
    assert_eq!(graph2.num_edges(), inst.graph.num_edges());
    assert_eq!(full2.num_labeled(), inst.graph.num_nodes());

    let est = MyopicCompatibilityEstimation::default();
    let h1 = est.estimate(&inst.graph, &seeds).unwrap();
    let h2 = est.estimate(&graph2, &seeds).unwrap();
    assert!(h1.approx_eq(&h2, 1e-9));
}
