//! Integration tests for the graph-construction subsystem: feature matrices become
//! graphs deterministically (same fingerprint at any thread count and across
//! re-runs), the constructed graphs are structurally valid, the feature loader
//! rejects malformed input with line numbers, and constructed graphs flow through
//! the whole estimation stack — summary cache, persistent store, and pipeline —
//! exactly like generated or loaded ones.

use fg_core::prelude::*;
use fg_datasets::{
    construction_by_name, parse_features, synthesize_blobs, BlobConfig, GraphBuilder, KnnBuilder,
    SparseRegBuilder, Weighting,
};
use fg_graph::GraphError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn blob_features(nodes: usize, seed: u64) -> DenseMatrix {
    synthesize_blobs(&BlobConfig {
        nodes,
        spread: 0.9,
        seed,
        ..BlobConfig::default()
    })
    .unwrap()
    .0
}

type BuilderFactory = Box<dyn Fn(Threads) -> Box<dyn GraphBuilder>>;

#[test]
fn construction_is_deterministic_across_thread_counts_and_reruns() {
    let features = blob_features(80, 3);
    let builders: Vec<BuilderFactory> = vec![
        Box::new(|threads| {
            Box::new(KnnBuilder {
                weighting: Weighting::HeatKernel,
                threads,
                ..KnnBuilder::default()
            })
        }),
        Box::new(|threads| {
            Box::new(SparseRegBuilder {
                threads,
                ..SparseRegBuilder::default()
            })
        }),
    ];
    for make in &builders {
        let reference = make(Threads::Serial).build(&features).unwrap();
        // A second serial run reproduces the fingerprint exactly.
        let rerun = make(Threads::Serial).build(&features).unwrap();
        assert_eq!(reference.fingerprint(), rerun.fingerprint());
        for threads in [
            Threads::Fixed(1),
            Threads::Fixed(2),
            Threads::Fixed(4),
            Threads::Auto,
        ] {
            let parallel = make(threads).build(&features).unwrap();
            assert_eq!(
                reference.fingerprint(),
                parallel.fingerprint(),
                "{} under {threads:?}",
                parallel.num_edges()
            );
        }
    }
}

#[test]
fn constructed_graphs_are_structurally_valid() {
    let features = blob_features(70, 5);
    for spec in ["knn", "Knn(k=4,weighting=inverse,sym=mutual)", "sparsereg"] {
        let graph = construction_by_name(spec)
            .unwrap()
            .build(&features)
            .unwrap();
        let adjacency = graph.adjacency();
        assert!(adjacency.is_symmetric(0.0), "{spec}");
        for d in adjacency.diagonal() {
            assert_eq!(d, 0.0, "{spec}: self-loop");
        }
        for (_, _, w) in graph.edges() {
            assert!(w > 0.0, "{spec}: non-positive edge weight {w}");
        }
    }
}

#[test]
fn feature_loader_rejects_malformed_rows_with_line_numbers() {
    let ragged = "1.0,2.0,0\n1.0,0\n";
    match parse_features(ragged) {
        Err(GraphError::Parse { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("ragged"), "{message}");
        }
        other => panic!("expected a line-numbered parse error, got {other:?}"),
    }
    let non_finite = "# comment\n1.0,2.0,0\nNaN,1.0,1\n";
    match parse_features(non_finite) {
        Err(GraphError::Parse { line, message }) => {
            // Comments count toward line numbers, so the bad row is line 3.
            assert_eq!(line, 3);
            assert!(message.contains("non-finite"), "{message}");
        }
        other => panic!("expected a line-numbered parse error, got {other:?}"),
    }
}

#[test]
fn constructed_graphs_flow_through_the_summary_stack_end_to_end() {
    let (features, labeling) = synthesize_blobs(&BlobConfig {
        nodes: 120,
        spread: 0.8,
        seed: 21,
        ..BlobConfig::default()
    })
    .unwrap();
    let graph = KnnBuilder::default().build(&features).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let seeds = labeling.stratified_sample(0.1, &mut rng);

    let dir = std::env::temp_dir().join("fg_construction_stack");
    std::fs::remove_dir_all(&dir).ok();
    let store = Arc::new(SummaryStore::open(&dir).unwrap());

    let cold = Pipeline::on(&graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .summary_store(Arc::clone(&store))
        .run()
        .unwrap();
    assert_eq!(cold.summary_computations, 1);
    assert!(cold.accuracy(&labeling, &seeds) > 0.8);

    // Rebuilding the graph from the same features reproduces the fingerprint, so
    // a fresh pipeline over the reconstructed graph is served from disk.
    let rebuilt = KnnBuilder::default().build(&features).unwrap();
    assert_eq!(graph.fingerprint(), rebuilt.fingerprint());
    let warm = Pipeline::on(&rebuilt)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .summary_store(Arc::clone(&store))
        .run()
        .unwrap();
    assert_eq!(warm.summary_computations, 0);
    // The persisted optimized estimate short-circuits before the summary is
    // even consulted: the warm run is an H-level store hit.
    assert_eq!(warm.summary_store_hits, 0);
    assert_eq!(warm.optimize_store_hits, 1);
    assert_eq!(
        warm.outcome.predictions, cold.outcome.predictions,
        "store-served predictions must match the cold run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
