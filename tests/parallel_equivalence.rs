//! Exhaustive serial-vs-parallel equality: every propagation backend on several
//! seeded sweep graphs at 1, 2, and 4 threads must produce **bit-identical** belief
//! matrices (`assert_eq!` on the raw `f64` data, no tolerance). The parallel layer
//! assigns each worker a disjoint row range of the output, so no floating-point
//! accumulation is ever reordered — any mismatch here is a real bug in the
//! partitioning or stitching, never rounding noise.

use fg_core::prelude::*;
use fg_propagation::all_propagators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seeded graph family the sweeps run on (`GeneratorConfig::balanced`, varying
/// size / degree / classes / skew / seed).
fn sweep_graphs() -> Vec<fg_graph::SyntheticGraph> {
    [
        (400usize, 10.0f64, 3usize, 3.0f64, 1u64),
        (300, 8.0, 3, 3.0, 3),
        (250, 6.0, 2, 8.0, 5),
    ]
    .iter()
    .map(|&(n, d, k, h, seed)| {
        let cfg = GeneratorConfig::balanced(n, d, k, h).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&cfg, &mut rng).unwrap()
    })
    .collect()
}

#[test]
fn all_backends_are_bit_identical_at_1_2_and_4_threads() {
    for (gi, syn) in sweep_graphs().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(17 + gi as u64);
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let h = syn.planted_h.as_dense();
        for backend in all_propagators() {
            let name = backend.name();
            let serial = backend.propagate(&syn.graph, &seeds, h).unwrap();
            for workers in [1usize, 2, 4] {
                let threaded = backend
                    .with_threads(Threads::Fixed(workers))
                    .propagate(&syn.graph, &seeds, h)
                    .unwrap();
                assert_eq!(
                    serial.beliefs.data(),
                    threaded.beliefs.data(),
                    "graph {gi}, backend {name}, {workers} threads"
                );
                assert_eq!(
                    serial.predictions, threaded.predictions,
                    "graph {gi}, backend {name}, {workers} threads"
                );
                assert_eq!(
                    serial.iterations, threaded.iterations,
                    "graph {gi}, backend {name}, {workers} threads"
                );
                assert_eq!(serial.converged, threaded.converged);
            }
        }
    }
}

#[test]
fn pipeline_threads_policy_is_bit_identical_end_to_end() {
    let syn = &sweep_graphs()[0];
    let mut rng = StdRng::seed_from_u64(41);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let serial = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap();
    for workers in [2usize, 4] {
        let threaded = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .threads(Threads::Fixed(workers))
            .run()
            .unwrap();
        assert_eq!(
            serial.outcome.beliefs.data(),
            threaded.outcome.beliefs.data(),
            "{workers} threads"
        );
        assert_eq!(serial.estimated_h.data(), threaded.estimated_h.data());
    }
}

#[test]
fn auto_threads_matches_serial_too() {
    let syn = &sweep_graphs()[1];
    let mut rng = StdRng::seed_from_u64(43);
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    let h = syn.planted_h.as_dense();
    for backend in all_propagators() {
        let serial = backend.propagate(&syn.graph, &seeds, h).unwrap();
        let auto = backend
            .with_threads(Threads::Auto)
            .propagate(&syn.graph, &seeds, h)
            .unwrap();
        assert_eq!(
            serial.beliefs.data(),
            auto.beliefs.data(),
            "{}",
            backend.name()
        );
    }
}
