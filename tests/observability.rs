//! Acceptance tests for the observability layer: tracing is byte-invisible to
//! results, span trees nest the way the pipeline runs, Chrome trace export is
//! valid JSON, the serve `stats` command is byte-deterministic, the session
//! counters stay monotone across dataset reload, and the metrics endpoint
//! serves Prometheus text while the protocol port stays untouched.

use factorized_graphs::prelude::*;
use factorized_graphs::serve::{
    scrape_metrics, send_requests, Json, MetricsServer, ServeLimits, Session, TcpServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Trace captures are process-global, so every test that turns tracing on must
/// hold this lock for its full traced region.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn classify(graph: &Graph, seeds: &SeedLabels, trace: bool) -> PipelineReport {
    Pipeline::on(graph)
        .seeds(seeds)
        .estimator(DistantCompatibilityEstimation::default())
        .threads(Threads::Serial)
        .trace(trace)
        .run()
        .expect("pipeline run")
}

fn synthetic(seed: u64, nodes: usize) -> (Graph, SeedLabels) {
    let cfg = GeneratorConfig::balanced(nodes, 6.0, 3, 8.0).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    (syn.graph, seeds)
}

#[test]
fn tracing_is_byte_invisible_and_spans_nest() {
    let _guard = OBS_LOCK.lock().unwrap();
    let (graph, seeds) = synthetic(5, 800);
    let plain = classify(&graph, &seeds, false);
    let traced = classify(&graph, &seeds, true);

    // Byte-identity: tracing must not change anything a client can observe.
    assert!(plain.trace.is_none());
    assert_eq!(plain.outcome.predictions, traced.outcome.predictions);
    assert!(plain
        .outcome
        .beliefs
        .data()
        .iter()
        .zip(traced.outcome.beliefs.data().iter())
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(plain
        .estimated_h
        .data()
        .iter()
        .zip(traced.estimated_h.data().iter())
        .all(|(a, b)| a.to_bits() == b.to_bits()));

    // The span tree nests the way the pipeline runs.
    let trace = traced.trace.as_ref().expect("traced run carries a trace");
    assert!(!trace.is_empty());
    let paths: Vec<String> = trace.aggregate().into_iter().map(|s| s.path).collect();
    for expected in [
        "pipeline",
        "pipeline/estimate",
        "pipeline/estimate/summarize",
        "pipeline/propagate",
    ] {
        assert!(
            paths.iter().any(|p| p == expected),
            "span path {expected:?} missing from {paths:?}"
        );
    }
    assert!(
        paths.iter().any(|p| p.contains("spmm")),
        "no spmm kernel span in {paths:?}"
    );

    // The serialized report carries the same tree.
    let report_json = Json::parse(&traced.to_json()).expect("report JSON parses");
    let tree = report_json
        .get("span_tree")
        .and_then(Json::as_array)
        .expect("traced report embeds span_tree");
    assert_eq!(tree.len(), paths.len());

    // Chrome trace export is valid JSON with complete events.
    let chrome = Json::parse(&trace.chrome_json()).expect("chrome trace parses");
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(event.get("ts").is_some() && event.get("dur").is_some());
    }
}

/// Write a small synthetic dataset to `dir` and return the serve `load` line
/// plus a labeled/unlabeled node pair for seed mutations.
fn dataset_on_disk(dir: &Path, seed: u64) -> (String, usize, usize) {
    let cfg = GeneratorConfig::balanced(300, 8.0, 3, 8.0).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.08, &mut rng);
    let edges = dir.join(format!("obs{seed}_edges.tsv"));
    let labels = dir.join(format!("obs{seed}_labels.tsv"));
    fg_datasets::write_edge_list(&edges, &syn.graph).unwrap();
    let mut lines = String::new();
    for (node, label) in seeds.as_slice().iter().enumerate() {
        if let Some(c) = label {
            lines.push_str(&format!("{node}\t{c}\n"));
        }
    }
    std::fs::write(&labels, lines).unwrap();
    let node = seeds.unlabeled_nodes()[0];
    let line = format!(
        "{{\"cmd\":\"load\",\"dataset\":\"obs\",\"edges\":\"{}\",\"labels\":\"{}\",\"nodes\":300,\"classes\":3}}",
        edges.display(),
        labels.display()
    );
    (line, node, syn.labeling.class_of(node))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fg_obs_test_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn request_stream(dir: &Path) -> Vec<String> {
    let (load, node, label) = dataset_on_disk(dir, 11);
    vec![
        load,
        "{\"cmd\":\"classify\",\"dataset\":\"obs\",\"method\":\"dcer\"}".into(),
        "{\"cmd\":\"estimate\",\"dataset\":\"obs\",\"method\":\"dcer\"}".into(),
        format!("{{\"cmd\":\"seed\",\"dataset\":\"obs\",\"add\":[[{node},{label}]]}}"),
        "{\"cmd\":\"estimate\",\"dataset\":\"obs\",\"method\":\"dcer\"}".into(),
        "{\"cmd\":\"stats\"}".into(),
    ]
}

/// Regression for the timing-in-`stats` bug: two fresh sessions replaying the
/// same request stream must answer **every** request — including `stats` —
/// byte-identically. Wall-clock timings now live in the metrics registry only.
#[test]
fn serve_stats_are_byte_deterministic() {
    let dir = temp_dir("stats");
    let stream = request_stream(&dir);
    let replay = |_: ()| -> Vec<String> {
        let session = Session::new(Threads::Serial, None);
        stream
            .iter()
            .enumerate()
            .map(|(i, line)| session.handle_line(line, i + 1).0)
            .collect()
    };
    let first = replay(());
    let second = replay(());
    assert_eq!(first, second, "serve responses diverged across sessions");
    assert!(first.last().unwrap().contains("summary_computations"));
    std::fs::remove_dir_all(&dir).ok();
}

fn stats_counter(response: &str, field: &str) -> usize {
    Json::parse(response)
        .expect("stats response parses")
        .get("result")
        .and_then(|r| r.get(field))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats field {field} missing in {response}"))
}

/// Counter audit: the session-level totals (`summary_computations`,
/// `store_hits`, `optimize_store_hits`, `requests`) must be monotone across
/// seed mutations, unload, and reload — retiring a dataset may never make the
/// session forget work it did.
#[test]
fn session_counters_stay_monotone_across_reload() {
    let dir = temp_dir("audit");
    let (load, node, label) = dataset_on_disk(&dir, 23);
    let session = Session::new(Threads::Serial, None);
    let mut line_no = 0usize;
    let mut send = |line: &str| {
        line_no += 1;
        let (response, _) = session.handle_line(line, line_no);
        assert!(
            response.contains("\"ok\":true") || response.contains("\"ok\": true"),
            "request failed: {response}"
        );
        response
    };
    let stats_line = "{\"cmd\":\"stats\"}";
    let estimate_line = "{\"cmd\":\"estimate\",\"dataset\":\"obs\",\"method\":\"dcer\"}";

    send(&load);
    send(estimate_line);
    let s1 = send(stats_line);
    send(&format!(
        "{{\"cmd\":\"seed\",\"dataset\":\"obs\",\"add\":[[{node},{label}]]}}"
    ));
    send(estimate_line);
    let s2 = send(stats_line);
    send("{\"cmd\":\"unload\",\"dataset\":\"obs\"}");
    send(&load);
    send(estimate_line);
    let s3 = send(stats_line);

    for field in ["summary_computations", "store_hits", "optimize_store_hits"] {
        let (a, b, c) = (
            stats_counter(&s1, field),
            stats_counter(&s2, field),
            stats_counter(&s3, field),
        );
        assert!(a <= b && b <= c, "{field} regressed: {a} -> {b} -> {c}");
    }
    assert!(stats_counter(&s1, "summary_computations") >= 1);
    // Unload + reload retired the first engine's full summarization; the total
    // still must count it alongside the fresh one.
    assert!(stats_counter(&s3, "summary_computations") >= 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// End to end over TCP: the protocol port answers requests, the metrics port
/// serves Prometheus text with the expected families, and scraping never
/// perturbs the protocol responses.
#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let dir = temp_dir("metrics");
    let stream = request_stream(&dir);
    let session = Arc::new(Session::new(Threads::Serial, None));
    let addr = TcpServer::spawn(Arc::clone(&session), ("127.0.0.1", 0)).unwrap();
    let metrics_addr =
        MetricsServer::spawn(session.metrics(), ("127.0.0.1", 0), ServeLimits::default()).unwrap();

    let responses = send_requests(addr, &stream).unwrap();
    assert_eq!(responses.len(), stream.len());
    assert!(responses.iter().all(|r| r.contains("\"ok\":true")));

    let body = scrape_metrics(metrics_addr).unwrap();
    for family in [
        "# TYPE fg_requests_total counter",
        "# TYPE fg_request_seconds histogram",
        "# TYPE fg_connections_active gauge",
        "fg_dataset_loads_total{dataset=\"obs\"} 1",
        "fg_requests_total{cmd=\"classify\"} 1",
        "fg_requests_total{cmd=\"estimate\"} 2",
        "fg_summary_computations_total{dataset=\"obs\"}",
        "fg_lock_wait_seconds_count",
    ] {
        assert!(body.contains(family), "scrape missing {family:?}:\n{body}");
    }
    // The per-command latency histogram observed real requests.
    let count_line = body
        .lines()
        .find(|l| l.starts_with("fg_request_seconds_count{cmd=\"estimate\"}"))
        .expect("estimate latency count present");
    let count: f64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(count, 2.0);

    // A second scrape still works and the protocol session was not perturbed:
    // replaying `stats` yields the same deterministic counters as a fresh
    // replay of the same stream on a new session.
    let rescrape = scrape_metrics(metrics_addr).unwrap();
    assert!(rescrape.contains("fg_requests_total"));
    std::fs::remove_dir_all(&dir).ok();
}
