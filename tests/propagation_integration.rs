//! Integration tests for the propagation layer working against the generator and the
//! estimation layer: LinBP vs loopy BP, centering invariance at scale, convergence
//! behaviour, and the homophily sanity check of Fig. 6i.

use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn synthetic(n: usize, d: f64, k: usize, h: f64, seed: u64) -> fg_graph::SyntheticGraph {
    let cfg = GeneratorConfig::balanced(n, d, k, h).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).unwrap()
}

#[test]
fn linbp_and_loopy_bp_agree_on_moderate_graphs() {
    let syn = synthetic(500, 8.0, 3, 8.0, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    let h = syn.planted_h.as_dense();

    let lin = propagate(&syn.graph, &seeds, h, &LinBpConfig::default()).unwrap();
    let bp = fg_propagation::propagate_bp(
        &syn.graph,
        &seeds,
        h,
        &fg_propagation::BpConfig::default(),
    )
    .unwrap();

    let lin_acc = fg_propagation::unlabeled_accuracy(&lin.predictions, &syn.labeling, &seeds);
    let bp_acc = fg_propagation::unlabeled_accuracy(&bp.predictions, &syn.labeling, &seeds);
    // The linearization is an approximation; accuracies should be in the same ballpark.
    assert!(
        (lin_acc - bp_acc).abs() < 0.15,
        "LinBP accuracy {lin_acc} vs BP accuracy {bp_acc}"
    );
    assert!(lin_acc > 0.5);
}

#[test]
fn centering_invariance_holds_on_generated_graphs() {
    // Theorem 3.1 at integration scale.
    let syn = synthetic(2000, 12.0, 4, 5.0, 13);
    let mut rng = StdRng::seed_from_u64(14);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let h = syn.planted_h.as_dense();
    let base = LinBpConfig {
        tolerance: None,
        max_iterations: 8,
        ..LinBpConfig::default()
    };
    let centered = propagate(
        &syn.graph,
        &seeds,
        h,
        &LinBpConfig {
            centered: true,
            ..base.clone()
        },
    )
    .unwrap();
    let uncentered = propagate(
        &syn.graph,
        &seeds,
        h,
        &LinBpConfig {
            centered: false,
            ..base
        },
    )
    .unwrap();
    assert_eq!(centered.predictions, uncentered.predictions);
}

#[test]
fn convergent_scaling_reaches_fixed_point() {
    let syn = synthetic(1000, 10.0, 3, 3.0, 23);
    let mut rng = StdRng::seed_from_u64(24);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let result = propagate(
        &syn.graph,
        &seeds,
        syn.planted_h.as_dense(),
        &LinBpConfig {
            max_iterations: 300,
            tolerance: Some(1e-9),
            ..LinBpConfig::default()
        },
    )
    .unwrap();
    assert!(result.converged, "LinBP did not converge in 300 iterations");
    // The fixed point satisfies F = X + εWFH up to tolerance: check the residual energy.
    assert!(result.beliefs.max_abs().is_finite());
}

#[test]
fn homophily_baselines_work_on_homophilous_graphs_only() {
    // Fig. 6i in both directions: on a homophilous graph the harmonic-functions method
    // is competitive; on a heterophilous graph it collapses while GS-LinBP does not.
    let mut homophilous_cfg = GeneratorConfig::balanced(2000, 15.0, 3, 1.0).unwrap();
    homophilous_cfg.h = CompatibilityMatrix::homophily(3, 8.0).unwrap();
    let mut rng = StdRng::seed_from_u64(33);
    let homophilous = generate(&homophilous_cfg, &mut rng).unwrap();
    let seeds_h = homophilous.labeling.stratified_sample(0.05, &mut rng);

    let harmonic_h = harmonic_functions(&homophilous.graph, &seeds_h, &HarmonicConfig::default())
        .unwrap();
    let harmonic_h_acc = fg_propagation::unlabeled_accuracy(
        &harmonic_h.predictions,
        &homophilous.labeling,
        &seeds_h,
    );
    assert!(harmonic_h_acc > 0.6, "harmonic accuracy on homophily {harmonic_h_acc}");

    let heterophilous = synthetic(2000, 15.0, 3, 8.0, 43);
    let seeds_het = heterophilous.labeling.stratified_sample(0.05, &mut rng);
    let harmonic_het = harmonic_functions(
        &heterophilous.graph,
        &seeds_het,
        &HarmonicConfig::default(),
    )
    .unwrap();
    let harmonic_het_acc = fg_propagation::unlabeled_accuracy(
        &harmonic_het.predictions,
        &heterophilous.labeling,
        &seeds_het,
    );
    let gs = propagate_with(
        "GS",
        heterophilous.planted_h.as_dense(),
        &heterophilous.graph,
        &seeds_het,
        &LinBpConfig::default(),
    )
    .unwrap();
    let gs_acc = gs.accuracy(&heterophilous.labeling, &seeds_het);
    assert!(
        gs_acc > harmonic_het_acc + 0.2,
        "GS-LinBP {gs_acc} should dominate harmonic functions {harmonic_het_acc} under heterophily"
    );
}

#[test]
fn propagation_accuracy_increases_with_label_fraction() {
    let syn = synthetic(3000, 15.0, 3, 3.0, 53);
    let mut rng = StdRng::seed_from_u64(54);
    let mut last_acc = 0.0;
    let mut increases = 0;
    let fractions = [0.001, 0.01, 0.1, 0.5];
    for &f in &fractions {
        let seeds = syn.labeling.stratified_sample(f, &mut rng);
        let result = propagate(
            &syn.graph,
            &seeds,
            syn.planted_h.as_dense(),
            &LinBpConfig::default(),
        )
        .unwrap();
        let acc = fg_propagation::unlabeled_accuracy(&result.predictions, &syn.labeling, &seeds);
        if acc >= last_acc - 0.02 {
            increases += 1;
        }
        last_acc = acc;
    }
    // Accuracy should be (weakly) monotone in f for nearly every step.
    assert!(increases >= 3, "accuracy did not grow with label fraction");
    assert!(last_acc > 0.8, "accuracy at f = 0.5 is only {last_acc}");
}

#[test]
fn multi_rank_walk_handles_generated_homophilous_graph() {
    let mut cfg = GeneratorConfig::balanced(1500, 12.0, 3, 1.0).unwrap();
    cfg.h = CompatibilityMatrix::homophily(3, 10.0).unwrap();
    let mut rng = StdRng::seed_from_u64(63);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let walk = multi_rank_walk(&syn.graph, &seeds, &RandomWalkConfig::default()).unwrap();
    let acc = fg_propagation::unlabeled_accuracy(&walk.predictions, &syn.labeling, &seeds);
    assert!(acc > 0.6, "random walk accuracy {acc} on a homophilous graph");
}
