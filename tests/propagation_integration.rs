//! Integration tests for the unified propagation layer: every `Propagator` backend
//! running through `Pipeline` on one seeded synthetic graph, registry lookup,
//! LinBP-vs-BP agreement, centering invariance at scale, convergence behaviour, and
//! the homophily sanity check of Fig. 6i.

use fg_core::prelude::*;
use fg_propagation::registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn synthetic(n: usize, d: f64, k: usize, h: f64, seed: u64) -> fg_graph::SyntheticGraph {
    let cfg = GeneratorConfig::balanced(n, d, k, h).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).unwrap()
}

/// A homophilous synthetic graph, so the compatibility-free baselines (harmonic
/// functions, random walks) are also in their operating regime.
fn homophilous(n: usize, k: usize, skew: f64, seed: u64) -> fg_graph::SyntheticGraph {
    let mut cfg = GeneratorConfig::balanced(n, 12.0, k, 1.0).unwrap();
    cfg.h = CompatibilityMatrix::homophily(k, skew).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).unwrap()
}

#[test]
fn all_four_propagators_run_through_pipeline_and_beat_random() {
    // The satellite contract: one seeded graph, all four backends through `Pipeline`,
    // each clearly above the random baseline, with consistent outcome metadata.
    let syn = homophilous(1500, 3, 8.0, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let random = fg_propagation::random_baseline(3);

    let backends: Vec<Box<dyn Propagator>> = vec![
        Box::new(LinBp::default()),
        Box::new(LoopyBp::default()),
        Box::new(Harmonic::default()),
        Box::new(RandomWalk::default()),
    ];
    for backend in backends {
        let name = backend.name();
        let uses_h = backend.uses_compatibilities();
        let mut builder = Pipeline::on(&syn.graph).seeds(&seeds).propagator(backend);
        if uses_h {
            builder = builder.compatibilities("planted", syn.planted_h.as_dense());
        }
        let report = builder.run().unwrap();

        // Consistent PropagationOutcome metadata across backends.
        assert_eq!(report.propagator, name);
        assert_eq!(report.outcome.method, name);
        assert_eq!(report.outcome.predictions.len(), syn.graph.num_nodes());
        assert_eq!(report.outcome.beliefs.rows(), syn.graph.num_nodes());
        assert_eq!(report.outcome.beliefs.cols(), 3);
        assert!(report.outcome.iterations >= 1);
        assert_eq!(report.outcome.epsilon.is_some(), name == "LinBP");
        assert_eq!(report.estimator, if uses_h { "planted" } else { "none" });

        let acc = report.accuracy(&syn.labeling, &seeds);
        assert!(
            acc > random + 0.15,
            "{name}: accuracy {acc} not clearly above random baseline {random}"
        );
    }
}

#[test]
fn registry_backends_match_direct_construction() {
    let syn = homophilous(600, 2, 6.0, 17);
    let mut rng = StdRng::seed_from_u64(18);
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    for name in registry::propagator_names() {
        let via_registry = registry::by_name(name).unwrap();
        let uses_h = via_registry.uses_compatibilities();
        let mut builder = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .propagator(via_registry);
        if uses_h {
            builder = builder.compatibilities("planted", syn.planted_h.as_dense());
        }
        let report = builder.run().unwrap();
        assert_eq!(report.outcome.predictions.len(), 600, "{name}");
    }
}

#[test]
fn linbp_and_loopy_bp_agree_on_moderate_graphs() {
    let syn = synthetic(500, 8.0, 3, 8.0, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    let h = syn.planted_h.as_dense();

    let lin = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("planted", h)
        .propagator(LinBp::default())
        .run()
        .unwrap();
    let bp = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("planted", h)
        .propagator(LoopyBp::default())
        .run()
        .unwrap();

    let lin_acc = lin.accuracy(&syn.labeling, &seeds);
    let bp_acc = bp.accuracy(&syn.labeling, &seeds);
    // The linearization is an approximation; accuracies should be in the same ballpark.
    assert!(
        (lin_acc - bp_acc).abs() < 0.15,
        "LinBP accuracy {lin_acc} vs BP accuracy {bp_acc}"
    );
    assert!(lin_acc > 0.5);
}

#[test]
fn centering_invariance_holds_on_generated_graphs() {
    // Theorem 3.1 at integration scale.
    let syn = synthetic(2000, 12.0, 4, 5.0, 13);
    let mut rng = StdRng::seed_from_u64(14);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let h = syn.planted_h.as_dense();
    let base = LinBpConfig {
        tolerance: None,
        max_iterations: 8,
        ..LinBpConfig::default()
    };
    let centered = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("planted", h)
        .propagator(LinBp::new(LinBpConfig {
            centered: true,
            ..base.clone()
        }))
        .run()
        .unwrap();
    let uncentered = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("planted", h)
        .propagator(LinBp::new(LinBpConfig {
            centered: false,
            ..base
        }))
        .run()
        .unwrap();
    assert_eq!(centered.outcome.predictions, uncentered.outcome.predictions);
}

#[test]
fn convergent_scaling_reaches_fixed_point() {
    let syn = synthetic(1000, 10.0, 3, 3.0, 23);
    let mut rng = StdRng::seed_from_u64(24);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let report = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("planted", syn.planted_h.as_dense())
        .propagator(LinBp::new(LinBpConfig {
            max_iterations: 300,
            tolerance: Some(1e-9),
            ..LinBpConfig::default()
        }))
        .run()
        .unwrap();
    assert!(
        report.outcome.converged,
        "LinBP did not converge in 300 iterations"
    );
    // The fixed point satisfies F = X + εWFH up to tolerance: check the residual energy.
    assert!(report.outcome.beliefs.max_abs().is_finite());
}

#[test]
fn homophily_baselines_work_on_homophilous_graphs_only() {
    // Fig. 6i in both directions: on a homophilous graph the harmonic-functions method
    // is competitive; on a heterophilous graph it collapses while GS-LinBP does not.
    let homophilous_syn = homophilous(2000, 3, 8.0, 33);
    let mut rng = StdRng::seed_from_u64(34);
    let seeds_h = homophilous_syn.labeling.stratified_sample(0.05, &mut rng);

    let harmonic_h_acc = Pipeline::on(&homophilous_syn.graph)
        .seeds(&seeds_h)
        .propagator(Harmonic::default())
        .run()
        .unwrap()
        .accuracy(&homophilous_syn.labeling, &seeds_h);
    assert!(
        harmonic_h_acc > 0.6,
        "harmonic accuracy on homophily {harmonic_h_acc}"
    );

    let heterophilous = synthetic(2000, 15.0, 3, 8.0, 43);
    let seeds_het = heterophilous.labeling.stratified_sample(0.05, &mut rng);
    let harmonic_het_acc = Pipeline::on(&heterophilous.graph)
        .seeds(&seeds_het)
        .propagator(Harmonic::default())
        .run()
        .unwrap()
        .accuracy(&heterophilous.labeling, &seeds_het);
    let gs_acc = Pipeline::on(&heterophilous.graph)
        .seeds(&seeds_het)
        .compatibilities("GS", heterophilous.planted_h.as_dense())
        .run()
        .unwrap()
        .accuracy(&heterophilous.labeling, &seeds_het);
    assert!(
        gs_acc > harmonic_het_acc + 0.2,
        "GS-LinBP {gs_acc} should dominate harmonic functions {harmonic_het_acc} under heterophily"
    );
}

#[test]
fn propagation_accuracy_increases_with_label_fraction() {
    let syn = synthetic(3000, 15.0, 3, 3.0, 53);
    let mut rng = StdRng::seed_from_u64(54);
    let mut last_acc = 0.0;
    let mut increases = 0;
    let fractions = [0.001, 0.01, 0.1, 0.5];
    for &f in &fractions {
        let seeds = syn.labeling.stratified_sample(f, &mut rng);
        let acc = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .compatibilities("planted", syn.planted_h.as_dense())
            .run()
            .unwrap()
            .accuracy(&syn.labeling, &seeds);
        if acc >= last_acc - 0.02 {
            increases += 1;
        }
        last_acc = acc;
    }
    // Accuracy should be (weakly) monotone in f for nearly every step.
    assert!(increases >= 3, "accuracy did not grow with label fraction");
    assert!(last_acc > 0.8, "accuracy at f = 0.5 is only {last_acc}");
}

#[test]
fn multi_rank_walk_handles_generated_homophilous_graph() {
    let syn = homophilous(1500, 3, 10.0, 63);
    let mut rng = StdRng::seed_from_u64(64);
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let acc = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .propagator(RandomWalk::default())
        .run()
        .unwrap()
        .accuracy(&syn.labeling, &seeds);
    assert!(
        acc > 0.6,
        "random walk accuracy {acc} on a homophilous graph"
    );
}
