//! Integration tests for the summary-centric estimation layer: the thread-parallel
//! `summarize_with` must be **bit-identical** to the serial `summarize` at any thread
//! count (`assert_eq!` on raw `f64` data, no tolerance), the `EstimationContext`
//! cache must answer prefix requests exactly as a fresh summarization would, and the
//! factorized path must agree with the explicit (unfactorized) evaluation order for
//! both counting modes (the Fig. 5b consistency check), run through the context.

use fg_core::prelude::*;
use fg_core::{
    explicit_adjacency_power, explicit_nb_power, statistics_from_explicit, summarize_with,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The seeded graph family the sweeps run on (`GeneratorConfig::balanced`, varying
/// size / degree / classes / skew / seed), with a stratified 10% seed set each.
fn sweep_graphs() -> Vec<(Graph, SeedLabels)> {
    [
        (400usize, 10.0f64, 3usize, 3.0f64, 1u64),
        (300, 8.0, 3, 3.0, 3),
        (250, 6.0, 2, 8.0, 5),
    ]
    .iter()
    .map(|&(n, d, k, h, seed)| {
        let cfg = GeneratorConfig::balanced(n, d, k, h).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        (syn.graph, seeds)
    })
    .collect()
}

fn summary_configs() -> Vec<SummaryConfig> {
    let mut configs = Vec::new();
    for non_backtracking in [true, false] {
        for variant in NormalizationVariant::all() {
            configs.push(SummaryConfig {
                max_length: 5,
                non_backtracking,
                variant,
                ..SummaryConfig::default()
            });
        }
    }
    configs
}

#[test]
fn parallel_summarize_is_bit_identical_at_every_thread_count() {
    for (graph, seeds) in sweep_graphs() {
        for config in summary_configs() {
            let serial = summarize(&graph, &seeds, &config).unwrap();
            for threads in [
                Threads::Serial,
                Threads::Fixed(2),
                Threads::Fixed(4),
                Threads::Auto,
            ] {
                let parallel = summarize_with(&graph, &seeds, &config, threads).unwrap();
                for l in 1..=config.max_length {
                    assert_eq!(
                        serial.count(l).unwrap().data(),
                        parallel.count(l).unwrap().data(),
                        "counts diverge at length {l} with {threads:?} ({config:?})"
                    );
                    assert_eq!(
                        serial.statistic(l).unwrap().data(),
                        parallel.statistic(l).unwrap().data(),
                        "statistics diverge at length {l} with {threads:?} ({config:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn cached_lmax5_context_answers_lmax3_requests_identically() {
    for (graph, seeds) in sweep_graphs() {
        let ctx = EstimationContext::new(&graph, &seeds);
        ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 1);
        // A shorter request — and any normalization variant — is a pure cache hit
        // and must be bit-identical to a fresh summarize call.
        for variant in NormalizationVariant::all() {
            let config = SummaryConfig {
                max_length: 3,
                non_backtracking: true,
                variant,
                ..SummaryConfig::default()
            };
            let cached = ctx.summary(&config).unwrap();
            let fresh = summarize(&graph, &seeds, &config).unwrap();
            assert_eq!(cached.max_length(), 3);
            for l in 1..=3 {
                assert_eq!(
                    cached.count(l).unwrap().data(),
                    fresh.count(l).unwrap().data(),
                    "cached counts diverge at length {l}"
                );
                assert_eq!(
                    cached.statistic(l).unwrap().data(),
                    fresh.statistic(l).unwrap().data(),
                    "cached statistics diverge at length {l} ({variant:?})"
                );
            }
        }
        assert_eq!(ctx.summary_computations(), 1);
    }
}

#[test]
fn context_summaries_match_explicit_computation_for_both_modes() {
    // Fig. 5b consistency: the factorized summaries served by the context agree with
    // the explicit (materialized W^l / W^l_NB) evaluation order at every l <= 5.
    let (graph, seeds) = sweep_graphs().remove(0);
    let ctx = EstimationContext::new(&graph, &seeds).threads(Threads::Fixed(4));
    for non_backtracking in [true, false] {
        let config = SummaryConfig {
            max_length: 5,
            non_backtracking,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        let summary = ctx.summary(&config).unwrap();
        for l in 1..=5 {
            let power = if non_backtracking {
                explicit_nb_power(&graph, l).unwrap()
            } else {
                explicit_adjacency_power(&graph, l).unwrap()
            };
            let expected = statistics_from_explicit(&power, &seeds, config.variant).unwrap();
            assert!(
                summary.statistic(l).unwrap().approx_eq(&expected, 1e-9),
                "factorized vs explicit mismatch at length {l} (nb = {non_backtracking})"
            );
        }
    }
    // One computation per counting mode, regardless of how many lengths were read.
    assert_eq!(ctx.summary_computations(), 2);
}

#[test]
fn estimators_are_bit_identical_through_the_context() {
    // The refactor's core guarantee: every estimator produces the same H whether it
    // summarizes the graph itself or pulls statistics from a shared cached context —
    // serial or parallel.
    let (graph, seeds) = sweep_graphs().remove(1);
    let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
        Box::new(MyopicCompatibilityEstimation::default()),
        Box::new(LinearCompatibilityEstimation::default()),
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
    ];
    for threads in [Threads::Serial, Threads::Fixed(4)] {
        let ctx = EstimationContext::new(&graph, &seeds).threads(threads);
        for estimator in &estimators {
            let direct = estimator.estimate(&graph, &seeds).unwrap();
            let via_context = estimator.estimate_with_context(&ctx).unwrap();
            assert_eq!(
                direct.data(),
                via_context.data(),
                "{} diverges through the context at {threads:?}",
                estimator.name()
            );
        }
    }
}

/// Write a seeded graph + stratified seed labels to disk and load them back twice,
/// producing two fully independent allocations of identical content.
fn write_and_load_twice(dir: &std::path::Path) -> ((Graph, SeedLabels), (Graph, SeedLabels)) {
    std::fs::create_dir_all(dir).unwrap();
    let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    let edges_path = dir.join("edges.tsv");
    let labels_path = dir.join("seeds.tsv");
    fg_datasets::write_edge_list(&edges_path, &syn.graph).unwrap();
    let mut label_lines = String::new();
    for (node, observed) in seeds.as_slice().iter().enumerate() {
        if let Some(class) = observed {
            label_lines.push_str(&format!("{node}\t{class}\n"));
        }
    }
    std::fs::write(&labels_path, label_lines).unwrap();
    let n = syn.graph.num_nodes();
    let load = || {
        (
            fg_datasets::read_edge_list(&edges_path, n).unwrap(),
            fg_datasets::read_labels(&labels_path, n, 3).unwrap(),
        )
    };
    (load(), load())
}

#[test]
fn independently_loaded_copies_share_one_summary_via_fingerprints() {
    // The PR's acceptance criterion: two copies of the same dataset loaded from disk
    // into different allocations share one cached summary because the cache is keyed
    // by content fingerprint, not pointer identity.
    let dir = std::env::temp_dir().join("fg_fp_share_test");
    let ((g1, s1), (g2, s2)) = write_and_load_twice(&dir);
    assert!(!std::ptr::eq(&g1, &g2));
    assert_eq!(g1.fingerprint(), g2.fingerprint());
    assert_eq!(s1.fingerprint(), s2.fingerprint());

    let cache = SummaryCache::shared();
    let ctx1 = EstimationContext::with_cache(&g1, &s1, Arc::clone(&cache));
    let ctx2 = EstimationContext::with_cache(&g2, &s2, Arc::clone(&cache));
    let config = SummaryConfig::with_max_length(5);
    let first = ctx1.summary(&config).unwrap();
    let second = ctx2.summary(&config).unwrap();
    // One computation serves both copies, bit-identically.
    assert_eq!(cache.computations(), 1);
    for l in 1..=5 {
        assert_eq!(
            first.count(l).unwrap().data(),
            second.count(l).unwrap().data(),
            "copies diverge at length {l}"
        );
    }

    // A Pipeline on copy 2 accepts the context built on copy 1 (no pointer-identity
    // rejection) and is served from the shared cache without recomputing.
    let report = Pipeline::on(&g2)
        .seeds(&s2)
        .context(&ctx1)
        .estimator(DceWithRestarts::default())
        .run()
        .unwrap();
    assert_eq!(report.summary_computations, 0);
    assert_eq!(cache.computations(), 1);
    let fresh = DceWithRestarts::default().estimate(&g2, &s2).unwrap();
    assert_eq!(report.estimated_h.data(), fresh.data());

    // Content addressing is strict: a context over a *different* seed set is still
    // rejected even though the graph matches.
    let mut rng = StdRng::seed_from_u64(31);
    let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
    let other = generate(&cfg, &mut rng).unwrap();
    let other_seeds = other.labeling.stratified_sample(0.1, &mut rng);
    let mismatched = EstimationContext::new(&g1, &other_seeds);
    assert!(Pipeline::on(&g1)
        .seeds(&s1)
        .context(&mismatched)
        .estimator(DceWithRestarts::default())
        .run()
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fingerprints_are_stable_across_reloads_and_sensitive_to_content() {
    let dir = std::env::temp_dir().join("fg_fp_stability_test");
    let ((g1, s1), (g2, s2)) = write_and_load_twice(&dir);
    // Stability: re-loading produces the same fingerprints every time.
    assert_eq!(g1.fingerprint(), g2.fingerprint());
    assert_eq!(s1.fingerprint(), s2.fingerprint());
    assert_eq!(g1.fingerprint(), g1.clone().fingerprint());

    // Sensitivity: perturbing the content changes the fingerprint.
    let mut perturbed_edges: Vec<(usize, usize, f64)> =
        g1.adjacency().iter().filter(|&(u, v, _)| u < v).collect();
    perturbed_edges.pop().unwrap();
    let smaller = Graph::from_weighted_edges(g1.num_nodes(), &perturbed_edges).unwrap();
    assert_ne!(smaller.fingerprint(), g1.fingerprint());

    let mut relabeled = s1.as_slice().to_vec();
    let flip = relabeled
        .iter()
        .position(|o| o.is_some())
        .expect("has seeds");
    relabeled[flip] = Some((relabeled[flip].unwrap() + 1) % 3);
    let relabeled = SeedLabels::new(relabeled, 3).unwrap();
    assert_ne!(relabeled.fingerprint(), s1.fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn with_threads_preserves_every_estimator_output() {
    let (graph, seeds) = sweep_graphs().remove(2);
    let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
        Box::new(MyopicCompatibilityEstimation::default()),
        Box::new(LinearCompatibilityEstimation::default()),
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
        Box::new(HoldoutEstimation::default()),
    ];
    for estimator in &estimators {
        let serial = estimator.estimate(&graph, &seeds).unwrap();
        let threaded = estimator
            .with_threads(Threads::Fixed(4))
            .estimate(&graph, &seeds)
            .unwrap();
        assert_eq!(
            serial.data(),
            threaded.data(),
            "{} changes under with_threads",
            estimator.name()
        );
        assert_eq!(
            estimator.name(),
            estimator.with_threads(Threads::Auto).name()
        );
    }
}
