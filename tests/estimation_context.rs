//! Integration tests for the summary-centric estimation layer: the thread-parallel
//! `summarize_with` must be **bit-identical** to the serial `summarize` at any thread
//! count (`assert_eq!` on raw `f64` data, no tolerance), the `EstimationContext`
//! cache must answer prefix requests exactly as a fresh summarization would, and the
//! factorized path must agree with the explicit (unfactorized) evaluation order for
//! both counting modes (the Fig. 5b consistency check), run through the context.

use fg_core::prelude::*;
use fg_core::{
    explicit_adjacency_power, explicit_nb_power, statistics_from_explicit, summarize_with,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seeded graph family the sweeps run on (`GeneratorConfig::balanced`, varying
/// size / degree / classes / skew / seed), with a stratified 10% seed set each.
fn sweep_graphs() -> Vec<(Graph, SeedLabels)> {
    [
        (400usize, 10.0f64, 3usize, 3.0f64, 1u64),
        (300, 8.0, 3, 3.0, 3),
        (250, 6.0, 2, 8.0, 5),
    ]
    .iter()
    .map(|&(n, d, k, h, seed)| {
        let cfg = GeneratorConfig::balanced(n, d, k, h).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        (syn.graph, seeds)
    })
    .collect()
}

fn summary_configs() -> Vec<SummaryConfig> {
    let mut configs = Vec::new();
    for non_backtracking in [true, false] {
        for variant in NormalizationVariant::all() {
            configs.push(SummaryConfig {
                max_length: 5,
                non_backtracking,
                variant,
            });
        }
    }
    configs
}

#[test]
fn parallel_summarize_is_bit_identical_at_every_thread_count() {
    for (graph, seeds) in sweep_graphs() {
        for config in summary_configs() {
            let serial = summarize(&graph, &seeds, &config).unwrap();
            for threads in [
                Threads::Serial,
                Threads::Fixed(2),
                Threads::Fixed(4),
                Threads::Auto,
            ] {
                let parallel = summarize_with(&graph, &seeds, &config, threads).unwrap();
                for l in 1..=config.max_length {
                    assert_eq!(
                        serial.count(l).unwrap().data(),
                        parallel.count(l).unwrap().data(),
                        "counts diverge at length {l} with {threads:?} ({config:?})"
                    );
                    assert_eq!(
                        serial.statistic(l).unwrap().data(),
                        parallel.statistic(l).unwrap().data(),
                        "statistics diverge at length {l} with {threads:?} ({config:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn cached_lmax5_context_answers_lmax3_requests_identically() {
    for (graph, seeds) in sweep_graphs() {
        let ctx = EstimationContext::new(&graph, &seeds);
        ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 1);
        // A shorter request — and any normalization variant — is a pure cache hit
        // and must be bit-identical to a fresh summarize call.
        for variant in NormalizationVariant::all() {
            let config = SummaryConfig {
                max_length: 3,
                non_backtracking: true,
                variant,
            };
            let cached = ctx.summary(&config).unwrap();
            let fresh = summarize(&graph, &seeds, &config).unwrap();
            assert_eq!(cached.max_length(), 3);
            for l in 1..=3 {
                assert_eq!(
                    cached.count(l).unwrap().data(),
                    fresh.count(l).unwrap().data(),
                    "cached counts diverge at length {l}"
                );
                assert_eq!(
                    cached.statistic(l).unwrap().data(),
                    fresh.statistic(l).unwrap().data(),
                    "cached statistics diverge at length {l} ({variant:?})"
                );
            }
        }
        assert_eq!(ctx.summary_computations(), 1);
    }
}

#[test]
fn context_summaries_match_explicit_computation_for_both_modes() {
    // Fig. 5b consistency: the factorized summaries served by the context agree with
    // the explicit (materialized W^l / W^l_NB) evaluation order at every l <= 5.
    let (graph, seeds) = sweep_graphs().remove(0);
    let ctx = EstimationContext::new(&graph, &seeds).threads(Threads::Fixed(4));
    for non_backtracking in [true, false] {
        let config = SummaryConfig {
            max_length: 5,
            non_backtracking,
            variant: NormalizationVariant::RowStochastic,
        };
        let summary = ctx.summary(&config).unwrap();
        for l in 1..=5 {
            let power = if non_backtracking {
                explicit_nb_power(&graph, l).unwrap()
            } else {
                explicit_adjacency_power(&graph, l).unwrap()
            };
            let expected = statistics_from_explicit(&power, &seeds, config.variant).unwrap();
            assert!(
                summary.statistic(l).unwrap().approx_eq(&expected, 1e-9),
                "factorized vs explicit mismatch at length {l} (nb = {non_backtracking})"
            );
        }
    }
    // One computation per counting mode, regardless of how many lengths were read.
    assert_eq!(ctx.summary_computations(), 2);
}

#[test]
fn estimators_are_bit_identical_through_the_context() {
    // The refactor's core guarantee: every estimator produces the same H whether it
    // summarizes the graph itself or pulls statistics from a shared cached context —
    // serial or parallel.
    let (graph, seeds) = sweep_graphs().remove(1);
    let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
        Box::new(MyopicCompatibilityEstimation::default()),
        Box::new(LinearCompatibilityEstimation::default()),
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
    ];
    for threads in [Threads::Serial, Threads::Fixed(4)] {
        let ctx = EstimationContext::new(&graph, &seeds).threads(threads);
        for estimator in &estimators {
            let direct = estimator.estimate(&graph, &seeds).unwrap();
            let via_context = estimator.estimate_with_context(&ctx).unwrap();
            assert_eq!(
                direct.data(),
                via_context.data(),
                "{} diverges through the context at {threads:?}",
                estimator.name()
            );
        }
    }
}

#[test]
fn with_threads_preserves_every_estimator_output() {
    let (graph, seeds) = sweep_graphs().remove(2);
    let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
        Box::new(MyopicCompatibilityEstimation::default()),
        Box::new(LinearCompatibilityEstimation::default()),
        Box::new(DistantCompatibilityEstimation::default()),
        Box::new(DceWithRestarts::default()),
        Box::new(HoldoutEstimation::default()),
    ];
    for estimator in &estimators {
        let serial = estimator.estimate(&graph, &seeds).unwrap();
        let threaded = estimator
            .with_threads(Threads::Fixed(4))
            .estimate(&graph, &seeds)
            .unwrap();
        assert_eq!(
            serial.data(),
            threaded.data(),
            "{} changes under with_threads",
            estimator.name()
        );
        assert_eq!(
            estimator.name(),
            estimator.with_threads(Threads::Auto).name()
        );
    }
}
