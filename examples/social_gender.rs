//! Gender prediction on a Pokec-like social network (Section 5.3, Fig. 7g).
//!
//! The Pokec social network is mildly *heterophilous*: users interact slightly more
//! with the opposite gender than with their own (gold-standard compatibilities
//! [[0.44, 0.56], [0.56, 0.44]]). This example uses the scaled dataset substitute from
//! `fg-datasets` and shows that the weak heterophilous signal is still recoverable from
//! very few labels — and that a homophily-based random walk cannot exploit it.
//!
//! Run with: `cargo run --release --example social_gender`

use fg_core::prelude::*;
use fg_datasets::{synthesize, DatasetId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 1% scale substitute of Pokec-Gender (~16k nodes) keeps the example fast; raise
    // the scale to approach the published 1.6M-node graph.
    let instance = synthesize(DatasetId::PokecGender, 0.01, 99).expect("synthesis succeeds");
    println!(
        "{}: {} users, {} friendships (substitute at {:.0}% scale)",
        instance.spec.id.name(),
        instance.graph.num_nodes(),
        instance.graph.num_edges(),
        instance.scale * 100.0
    );

    let mut rng = StdRng::seed_from_u64(1);
    let seeds = instance.labeling.stratified_sample(0.002, &mut rng);
    println!(
        "users who disclosed their gender: {} ({:.2}%)",
        seeds.num_labeled(),
        100.0 * seeds.label_fraction()
    );

    // DCEr end-to-end.
    let pipeline = Pipeline::on(&instance.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .propagator(LinBp::default())
        .run()
        .expect("pipeline succeeds");
    let dcer_acc = pipeline.accuracy(&instance.labeling, &seeds);

    // Gold standard (measured on the fully labeled substitute).
    let gold = instance.measured_gold_standard().expect("gold standard");
    let gs = Pipeline::on(&instance.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .expect("GS propagation");
    let gs_acc = gs.accuracy(&instance.labeling, &seeds);

    // Homophily-based random walk baseline — same builder, no estimator needed.
    let walk_acc = Pipeline::on(&instance.graph)
        .seeds(&seeds)
        .propagator(RandomWalk::default())
        .run()
        .expect("random walk")
        .accuracy(&instance.labeling, &seeds);

    println!("\ngender-prediction accuracy (macro-averaged over undisclosed users):");
    println!("  random-walk baseline (assumes homophily): {walk_acc:.3}");
    println!("  DCEr + LinBP (estimated compatibilities) : {dcer_acc:.3}");
    println!("  gold-standard compatibilities + LinBP    : {gs_acc:.3}");

    println!("\nestimated gender compatibilities:");
    for i in 0..2 {
        let row: Vec<String> = pipeline
            .estimated_h
            .row(i)
            .iter()
            .map(|v| format!("{v:5.2}"))
            .collect();
        println!("  [{}]", row.join(", "));
    }
    println!("(the off-diagonal entries dominate: opposites attract, as in the real Pokec graph)");
}
