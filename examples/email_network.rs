//! The corporate e-mail scenario from Example 1.1 of the paper.
//!
//! Three classes of users: marketing (class 0), engineering (class 1), and C-level
//! executives (class 2). Marketing and engineering e-mail each other heavily, while
//! executives mostly e-mail amongst themselves — a mix of heterophily and homophily
//! that defeats standard homophily-based label propagation. Only a handful of users
//! have known roles; we recover everyone else's role.
//!
//! Run with: `cargo run --release --example email_network`

use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The compatibility structure of Example 1.1 / Fig. 1b: classes 0 and 1 attract
    // each other, class 2 attracts itself.
    let h = CompatibilityMatrix::from_rows(&[
        vec![0.2, 0.6, 0.2],
        vec![0.6, 0.2, 0.2],
        vec![0.2, 0.2, 0.6],
    ])
    .expect("valid compatibility matrix");

    let config = GeneratorConfig {
        n: 5_000,
        m: 50_000,
        alpha: vec![0.4, 0.4, 0.2], // fewer executives than staff
        h,
        distribution: DegreeDistribution::paper_power_law(),
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let company = generate(&config, &mut rng).expect("generation succeeds");
    println!(
        "e-mail network: {} employees, {} e-mail relationships",
        company.graph.num_nodes(),
        company.graph.num_edges()
    );

    // HR only knows the roles of 1% of employees.
    let seeds = company.labeling.stratified_sample(0.01, &mut rng);
    println!("known roles: {}", seeds.num_labeled());

    // A homophily-only baseline (harmonic functions, no estimator needed) vs the full
    // pipeline — both through the same builder.
    let harmonic_acc = Pipeline::on(&company.graph)
        .seeds(&seeds)
        .propagator(Harmonic::default())
        .run()
        .expect("harmonic functions run")
        .accuracy(&company.labeling, &seeds);

    let pipeline = Pipeline::on(&company.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .propagator(LinBp::default())
        .run()
        .expect("estimation succeeds");
    let dcer_acc = pipeline.accuracy(&company.labeling, &seeds);

    let gold = measure_compatibilities(&company.graph, &company.labeling).expect("measure GS");
    let gs = Pipeline::on(&company.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .expect("GS propagation");
    let gs_acc = gs.accuracy(&company.labeling, &seeds);

    println!("\nrole-recovery accuracy (macro-averaged over unlabeled employees):");
    println!("  homophily baseline (harmonic functions): {harmonic_acc:.3}");
    println!("  DCEr + LinBP (this paper)              : {dcer_acc:.3}");
    println!("  gold-standard compatibilities + LinBP  : {gs_acc:.3}");

    println!("\nestimated role compatibilities (rows/cols: marketing, engineering, executive):");
    for i in 0..3 {
        let row: Vec<String> = pipeline
            .estimated_h
            .row(i)
            .iter()
            .map(|v| format!("{v:5.2}"))
            .collect();
        println!("  [{}]", row.join(", "));
    }
}
