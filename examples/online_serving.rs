//! Online serving walkthrough: drive a long-lived `fg-serve` [`Session`] with the
//! JSON-lines protocol — load a graph once, stream seed mutations, and watch the
//! incremental engine answer classification requests with zero full
//! summarizations after warm-up.
//!
//! Run with `cargo run --release --example online_serving`.

use factorized_graphs::prelude::*;
use fg_serve::{Json, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn send(session: &Session, line_no: usize, request: &str) -> Json {
    println!(">> {request}");
    let (response, _) = session.handle_line(request, line_no);
    let rendered = if response.len() > 120 {
        format!("{}…", &response[..120])
    } else {
        response.clone()
    };
    println!("<< {rendered}");
    Json::parse(&response).expect("responses are valid JSON")
}

fn main() {
    // A synthetic heterophilous graph, written to disk the way a deployment would
    // hand files to `fg serve`.
    let dir = std::env::temp_dir().join("fg_online_serving_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config = GeneratorConfig::balanced(2000, 10.0, 3, 8.0).expect("config");
    let mut rng = StdRng::seed_from_u64(7);
    let synthetic = generate(&config, &mut rng).expect("generate");
    let seeds = synthetic.labeling.stratified_sample(0.03, &mut rng);
    let edges = dir.join("edges.tsv");
    let seeds_path = dir.join("seeds.tsv");
    fg_datasets::write_edge_list(&edges, &synthetic.graph).expect("write edges");
    let mut lines = String::new();
    for (node, label) in seeds.as_slice().iter().enumerate() {
        if let Some(c) = label {
            lines.push_str(&format!("{node}\t{c}\n"));
        }
    }
    std::fs::write(&seeds_path, lines).expect("write seeds");

    let session = Session::new(Threads::Serial, None);

    // 1. Load once — this is the state every later request amortizes.
    send(
        &session,
        1,
        &format!(
            "{{\"cmd\":\"load\",\"edges\":\"{}\",\"labels\":\"{}\",\"nodes\":2000,\"classes\":3}}",
            edges.display(),
            seeds_path.display()
        ),
    );

    // 2. Warm-up estimate: the one-and-only full summarization.
    let warm = send(&session, 2, "{\"cmd\":\"estimate\",\"method\":\"dcer\"}");
    let computations = warm
        .get("result")
        .and_then(|r| r.get("summary_computations"))
        .and_then(Json::as_usize)
        .unwrap();
    println!("   warm-up summarizations: {computations}");

    // 3. Stream seed mutations: each is folded in as a neighborhood-sized delta.
    let unlabeled = seeds.unlabeled_nodes();
    for (step, &node) in unlabeled.iter().take(3).enumerate() {
        let label = synthetic.labeling.class_of(node);
        let response = send(
            &session,
            3 + step,
            &format!("{{\"cmd\":\"seed\",\"add\":[[{node},{label}]]}}"),
        );
        let rows = response
            .get("result")
            .and_then(|r| r.get("rows_touched"))
            .and_then(Json::as_usize)
            .unwrap();
        println!(
            "   delta update touched {rows} rows (full recompute: {})",
            2000 * 5
        );
    }

    // 4. Classify after the mutations: zero full summarizations, bit-identical to
    //    a cold batch run on the final seed set.
    let classify = send(
        &session,
        6,
        "{\"cmd\":\"classify\",\"method\":\"dcer\",\"nodes\":[0,1,2,3,4],\"abstain\":true}",
    );
    let computations = classify
        .get("result")
        .and_then(|r| r.get("summary_computations"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(computations, 0, "warm path must not summarize");
    println!("   post-mutation classify summarizations: {computations}");

    // 5. Aggregate stats for the whole session.
    send(&session, 7, "{\"cmd\":\"stats\"}");
    std::fs::remove_dir_all(&dir).ok();
}
