//! Feature classification: start from a raw feature matrix (no graph anywhere),
//! build a graph with the construction subsystem, and classify the unlabeled
//! points through the standard estimation + propagation pipeline.
//!
//! Run with: `cargo run --release --example feature_classification`

use fg_core::prelude::*;
use fg_datasets::{construction_by_name, synthesize_blobs, BlobConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A labeled point cloud: three Gaussian blobs in four dimensions, the last
    //    class three times noisier than the first (spread_skew) so the clusters
    //    overlap and the construction choice actually matters.
    let config = BlobConfig {
        nodes: 1_500,
        classes: 3,
        dims: 4,
        spread: 1.0,
        spread_skew: 3.0,
        seed: 42,
    };
    let (features, labeling) = synthesize_blobs(&config).expect("blob synthesis succeeds");
    println!(
        "feature matrix: {} points x {} dims, {} classes",
        features.rows(),
        features.cols(),
        labeling.k()
    );

    // 2. Observe labels on 5% of the points.
    let mut rng = StdRng::seed_from_u64(7);
    let seeds = labeling.stratified_sample(0.05, &mut rng);
    println!(
        "observed labels: {} of {} points",
        seeds.num_labeled(),
        seeds.n()
    );

    // 3. Compare construction backends: the default union-kNN, mutual-kNN (prunes
    //    the asymmetric neighbor links the diffuse cluster creates), and the
    //    sparse-regularized reconstruction builder. Specs resolve through the
    //    same registry `fg construct --builder ...` uses; builders can also be
    //    configured directly as structs (`KnnBuilder` / `SparseRegBuilder`).
    for spec in ["knn", "Knn(k=10,sym=mutual)", "SparseReg(k=10,alpha=0.05)"] {
        let builder = construction_by_name(spec).expect("registered builder");
        let graph = builder.build(&features).expect("construction succeeds");

        // 4. The constructed graph is a first-class citizen: fingerprinted,
        //    cacheable, and classified by the standard pipeline.
        let report = Pipeline::on(&graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .propagator(LinBp::default())
            .run()
            .expect("estimation and propagation succeed");
        println!(
            "\n{}:\n  {} edges (mean degree {:.1}), accuracy {:.3}, fingerprint {}",
            builder.name(),
            graph.num_edges(),
            graph.average_degree(),
            report.accuracy(&labeling, &seeds),
            graph.fingerprint(),
        );
    }
}
