//! Quickstart: estimate compatibilities from a sparsely labeled graph, then label the
//! remaining nodes through the `Pipeline` builder.
//!
//! Run with: `cargo run --release --example quickstart`

use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic graph with 10,000 nodes, average degree 25 and a planted
    //    heterophilous compatibility matrix (the paper's h = 3 setting, Fig. 3a).
    let config = GeneratorConfig::balanced(10_000, 25.0, 3, 3.0).expect("valid configuration");
    let mut rng = StdRng::seed_from_u64(42);
    let synthetic = generate(&config, &mut rng).expect("graph generation succeeds");
    println!(
        "generated graph: n = {}, m = {}, k = {}",
        synthetic.graph.num_nodes(),
        synthetic.graph.num_edges(),
        synthetic.planted_h.k()
    );

    // 2. Observe labels on only 0.1% of the nodes.
    let seeds = synthetic.labeling.stratified_sample(0.001, &mut rng);
    println!(
        "observed labels: {} of {} nodes ({:.3}%)",
        seeds.num_labeled(),
        seeds.n(),
        100.0 * seeds.label_fraction()
    );

    // 3. Estimate the compatibility matrix with DCEr and label the rest with LinBP.
    //    Any estimator × propagator combination plugs into the same builder.
    let report = Pipeline::on(&synthetic.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .propagator(LinBp::default())
        .run()
        .expect("estimation and propagation succeed");

    println!("\nestimated H ({}):", report.estimator);
    print_matrix(&report.estimated_h);
    println!("\nplanted H:");
    print_matrix(synthetic.planted_h.as_dense());

    // 4. Compare against the gold standard (propagating with the measured true H).
    let gold = measure_compatibilities(&synthetic.graph, &synthetic.labeling)
        .expect("gold standard measurement");
    let gs_report = Pipeline::on(&synthetic.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .expect("gold standard propagation");

    let dcer_acc = report.accuracy(&synthetic.labeling, &seeds);
    let gs_acc = gs_report.accuracy(&synthetic.labeling, &seeds);
    println!("\naccuracy on unlabeled nodes:");
    println!("  DCEr (estimated H): {dcer_acc:.3}");
    println!("  GS   (true H)     : {gs_acc:.3}");
    println!(
        "\nestimation took {:?}, propagation took {:?} ({} iterations, converged = {})",
        report.estimation_time,
        report.propagation_time,
        report.outcome.iterations,
        report.outcome.converged
    );
    println!("\nreport JSON: {}", report.to_json());
}

fn print_matrix(m: &DenseMatrix) {
    for i in 0..m.rows() {
        let row: Vec<String> = m.row(i).iter().map(|v| format!("{v:6.3}")).collect();
        println!("  [{}]", row.join(", "));
    }
}
