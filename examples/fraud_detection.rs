//! Auction-fraud detection: a mix of homophily and heterophily (Section 1 of the paper,
//! citing the NetProbe fraud scenario).
//!
//! Three classes of accounts: fraudsters (0), accomplices (1), and honest users (2).
//! Fraudsters rarely transact with each other; they transact heavily with accomplices,
//! who in turn also trade with honest users to build reputation. Honest users mostly
//! trade among themselves. With compatibilities unknown and only a few confirmed
//! accounts, we estimate the compatibilities and rank the remaining accounts.
//!
//! Run with: `cargo run --release --example fraud_detection`

use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Fraudsters avoid each other, bind to accomplices; accomplices also mix with honest
    // users; honest users are homophilous.
    let h = CompatibilityMatrix::from_rows(&[
        vec![0.05, 0.80, 0.15],
        vec![0.80, 0.05, 0.15],
        vec![0.15, 0.15, 0.70],
    ])
    .expect("valid compatibility matrix");

    let config = GeneratorConfig {
        n: 20_000,
        m: 150_000,
        alpha: vec![0.05, 0.10, 0.85], // fraud is rare
        h,
        distribution: DegreeDistribution::paper_power_law(),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let marketplace = generate(&config, &mut rng).expect("generation succeeds");
    println!(
        "marketplace: {} accounts, {} transactions",
        marketplace.graph.num_nodes(),
        marketplace.graph.num_edges()
    );

    // Investigators have manually confirmed 0.5% of accounts.
    let seeds = marketplace.labeling.stratified_sample(0.005, &mut rng);
    println!("confirmed accounts: {}", seeds.num_labeled());

    // Estimate compatibilities with DCEr and label all remaining accounts.
    let result = Pipeline::on(&marketplace.graph)
        .seeds(&seeds)
        .estimator(DceWithRestarts::default())
        .run()
        .expect("pipeline succeeds");

    let accuracy = result.accuracy(&marketplace.labeling, &seeds);
    println!("\nmacro-averaged accuracy over unlabeled accounts: {accuracy:.3}");

    // Confusion between fraudsters and honest users is the expensive mistake; report a
    // small confusion matrix over the unlabeled nodes.
    let eval_nodes = seeds.unlabeled_nodes();
    let confusion = fg_propagation::confusion_matrix(
        &result.outcome.predictions,
        &marketplace.labeling,
        &eval_nodes,
    );
    println!("\nconfusion matrix (rows = true class, cols = predicted):");
    println!("              fraud  accomplice  honest");
    let names = ["fraudster ", "accomplice", "honest    "];
    for (name, row) in names.iter().zip(confusion.iter()) {
        println!("  {name}  {:>6}  {:>10}  {:>6}", row[0], row[1], row[2]);
    }
    println!(
        "\nestimation: {:?}, propagation: {:?}",
        result.estimation_time, result.propagation_time
    );
}
