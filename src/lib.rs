//! # factorized-graphs
//!
//! Umbrella crate for the workspace reproducing *"Factorized Graph Representations for
//! Semi-Supervised Learning from Sparse Data"* (SIGMOD 2020). It re-exports the member
//! crates so downstream users can depend on a single package, and hosts the
//! workspace-level examples (`examples/`) and integration tests (`tests/`).
//!
//! See the [`fg_core`] crate (re-exported as [`core`](mod@core)) for the main entry
//! point: the [`fg_core::Pipeline`] builder combining any compatibility estimator with
//! any propagation backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fg_core as core;
pub use fg_datasets as datasets;
pub use fg_graph as graph;
pub use fg_obs as obs;
pub use fg_propagation as propagation;
pub use fg_serve as serve;
pub use fg_sparse as sparse;

pub use fg_core::prelude;
