//! Experiment manifests: `fg run manifest.toml`.
//!
//! A manifest declares a list of end-to-end classification experiments — dataset,
//! estimator spec, propagation backend, thread policy, summary-cache directory — in a
//! config file, and `fg run` drives each entry through the same
//! [`Pipeline`] the `classify` command uses, emitting one
//! [`PipelineReport`] JSON object per entry. Sweeping
//! parameters by editing a file (and re-running reproducibly, with warm summary
//! caches) replaces ad-hoc shell loops around the CLI.
//!
//! # Format
//!
//! A small TOML subset, parsed without external dependencies: top-level `key = value`
//! pairs are defaults applied to every entry (every key except the per-run-only
//! `name` / `out` / `report`; entry keys always win, and an entry's own dataset keys
//! pick its dataset mode before defaults-level ones do), each `[[run]]` table is one
//! experiment, and values may be strings, integers, floats, or booleans (`#` starts
//! a comment). Relative paths are resolved against the manifest's directory.
//!
//! ```toml
//! # defaults for every run
//! summary-cache = "target/experiments/summaries"
//! threads = "auto"
//! estimator = "DCEr(r=10,l=5,lambda=10)"
//! propagator = "linbp"
//!
//! [[run]]                       # file-based dataset
//! name = "cora"
//! edges = "cora_edges.tsv"
//! labels = "cora_seeds.tsv"
//! nodes = 2708
//! classes = 7
//! truth = "cora_labels.tsv"     # optional: evaluate accuracy
//! out = "cora_pred.tsv"         # optional: write predictions
//! report = "cora_report.json"   # optional: write the report JSON
//!
//! [[run]]                       # synthetic planted-compatibility graph
//! name = "synthetic-h8"
//! nodes = 2000
//! degree = 12.0
//! classes = 3
//! skew = 8.0
//! seed = 1
//! fraction = 0.05               # stratified seed-label fraction
//! estimator = "mce"
//!
//! [[run]]                       # real-world dataset substitute
//! name = "pokec"
//! dataset = "Pokec-Gender"
//! scale = 0.02
//! fraction = 0.1
//!
//! [construct]                   # graph construction defaults (feature mode)
//! features = "digits.csv"
//! builder = "Knn(k=10,weighting=heat)"
//!
//! [[run]]                       # built from the raw feature matrix above
//! name = "digits-knn"
//! ```
//!
//! Entry keys: `name`, dataset selection (`edges`+`labels`+`nodes`+`classes`, or
//! `dataset` plus `scale`, or `nodes` plus `degree`/`classes`/`skew` for the generator,
//! or `features` plus `builder` to construct a graph from a raw feature matrix;
//! `seed` and `fraction` apply to the synthetic and feature modes), `estimator`,
//! `rank` (selects the low-rank counting backend at that factor rank),
//! `propagator`, `iterations`, `tolerance`, `damping`, `threads`, `summary-cache`,
//! `truth`, `out`, `report`. A `[construct]` section supplies feature-mode defaults
//! (`features`, `builder`, `classes`) that apply when neither the entry nor the
//! top-level defaults pick another dataset mode. Unknown keys, unknown sections, and
//! malformed values are rejected with the offending line number.

use fg_core::prelude::*;
use fg_core::{estimator_by_name_with, EstimatorOptions};
use fg_datasets::{synthesize, DatasetId};
use fg_propagation::{registry, PropagatorOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A parsed manifest value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

/// One `key = value` table with source line numbers for error messages.
#[derive(Debug, Clone, Default)]
struct Table {
    values: HashMap<String, (Value, usize)>,
}

impl Table {
    fn insert(&mut self, key: String, value: Value, line: usize) -> Result<(), String> {
        if self.values.contains_key(&key) {
            return Err(format!("line {line}: duplicate key '{key}'"));
        }
        self.values.insert(key, (value, line));
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&(Value, usize)> {
        self.values.get(key)
    }

    fn string(&self, key: &str) -> Result<Option<String>, String> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Str(s), _)) => Ok(Some(s.clone())),
            Some((other, line)) => Err(format!(
                "line {line}: key '{key}' must be a string, got {}",
                other.type_name()
            )),
        }
    }

    fn usize_value(&self, key: &str) -> Result<Option<usize>, String> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Int(i), line)) => usize::try_from(*i)
                .map(Some)
                .map_err(|_| format!("line {line}: key '{key}' must be non-negative")),
            Some((other, line)) => Err(format!(
                "line {line}: key '{key}' must be an integer, got {}",
                other.type_name()
            )),
        }
    }

    fn u64_value(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Int(i), line)) => u64::try_from(*i)
                .map(Some)
                .map_err(|_| format!("line {line}: key '{key}' must be non-negative")),
            Some((other, line)) => Err(format!(
                "line {line}: key '{key}' must be an integer, got {}",
                other.type_name()
            )),
        }
    }

    fn f64_value(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Float(v), _)) => Ok(Some(*v)),
            Some((Value::Int(i), _)) => Ok(Some(*i as f64)),
            Some((other, line)) => Err(format!(
                "line {line}: key '{key}' must be a number, got {}",
                other.type_name()
            )),
        }
    }
}

/// A manifest: global defaults, optional `[construct]` feature-mode defaults, and
/// one table per `[[run]]` entry.
#[derive(Debug, Default)]
struct Manifest {
    defaults: Table,
    construct: Table,
    runs: Vec<Table>,
}

/// Strip a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line}: unterminated string"))?;
        if inner.contains('"') {
            return Err(format!(
                "line {line}: embedded quotes are not supported in strings"
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return Err(format!("line {line}: missing value")),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!(
        "line {line}: cannot parse value '{raw}' (expected a quoted string, number, or boolean)"
    ))
}

/// Which table subsequent `key = value` lines land in while parsing.
enum Section {
    Defaults,
    Construct,
    Run(usize),
}

/// Parse manifest text into defaults + `[construct]` defaults + run tables.
fn parse_manifest(content: &str) -> Result<Manifest, String> {
    let mut manifest = Manifest::default();
    let mut current = Section::Defaults;
    for (idx, raw_line) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[run]]" {
            manifest.runs.push(Table::default());
            current = Section::Run(manifest.runs.len() - 1);
            continue;
        }
        if line == "[construct]" {
            current = Section::Construct;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {line_no}: unknown section '{line}' (only [[run]] tables and one \
                 [construct] section are supported)"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected 'key = value', got '{line}'"))?;
        // Normalize `summary-cache` / `summary_cache` style spellings.
        let key = key.trim().to_ascii_lowercase().replace('-', "_");
        let value = parse_value(value, line_no)?;
        let table = match current {
            Section::Defaults => &mut manifest.defaults,
            Section::Construct => &mut manifest.construct,
            Section::Run(i) => &mut manifest.runs[i],
        };
        table.insert(key, value, line_no)?;
    }
    if manifest.runs.is_empty() {
        return Err("manifest declares no [[run]] entries".into());
    }
    Ok(manifest)
}

/// Keys understood in a `[[run]]` table (defaults accept the same set minus the
/// per-dataset ones, but validating against one list keeps the error friendly).
const KNOWN_KEYS: &[&str] = &[
    "name",
    "edges",
    "labels",
    "nodes",
    "classes",
    "degree",
    "skew",
    "dataset",
    "scale",
    "features",
    "builder",
    "seed",
    "fraction",
    "estimator",
    "rank",
    "propagator",
    "iterations",
    "tolerance",
    "damping",
    "threads",
    "summary_cache",
    "truth",
    "out",
    "report",
];

/// Keys that only make sense on an individual run: applying them as defaults would
/// make every entry write the same output file (or share one name), so they are
/// rejected at the top level instead of silently misbehaving.
const RUN_ONLY_KEYS: &[&str] = &["name", "out", "report"];

/// Keys a `[construct]` section may set: the feature-mode dataset selection only.
/// Pipeline-level knobs (estimator, threads, ...) belong in the top-level defaults.
const CONSTRUCT_KEYS: &[&str] = &["features", "builder", "classes"];

fn validate_keys(table: &Table, what: &str) -> Result<(), String> {
    for (key, (_, line)) in &table.values {
        if what == "[construct]" {
            if !CONSTRUCT_KEYS.contains(&key.as_str()) {
                return Err(format!(
                    "line {line}: unknown {what} key '{key}' (expected one of {})",
                    CONSTRUCT_KEYS.join(", ")
                ));
            }
            continue;
        }
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "line {line}: unknown {what} key '{key}' (expected one of {})",
                KNOWN_KEYS.join(", ")
            ));
        }
        if what == "default" && RUN_ONLY_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "line {line}: key '{key}' is per-run only and cannot be a top-level default"
            ));
        }
    }
    Ok(())
}

/// Look a key up in the run table first, then the defaults.
macro_rules! entry_or_default {
    ($run:expr, $defaults:expr, $method:ident, $key:expr) => {
        match $run.$method($key)? {
            Some(v) => Some(v),
            None => $defaults.$method($key)?,
        }
    };
}

/// The materialized inputs of one run: graph, observed seed labels, and (when the
/// dataset mode implies it) the full ground truth.
struct RunData {
    graph: Graph,
    seeds: SeedLabels,
    truth: Option<Labeling>,
    classes: usize,
    dataset_label: String,
}

fn resolve_path(base: &Path, raw: &str) -> PathBuf {
    let p = Path::new(raw);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        base.join(p)
    }
}

fn load_run_data(
    run: &Table,
    defaults: &Table,
    construct: &Table,
    base: &Path,
) -> Result<RunData, String> {
    let seed = entry_or_default!(run, defaults, u64_value, "seed").unwrap_or(0);
    let fraction = entry_or_default!(run, defaults, f64_value, "fraction").unwrap_or(0.05);
    // Dataset-mode selection: keys set on the run itself pick the mode first (so one
    // run can override, say, a defaults-level edge file with its own generator spec);
    // only then do defaults-level keys select a mode shared by every run, and finally
    // a `[construct]` section's feature file catches entries that named no dataset at
    // all. Within a mode, every parameter falls back to the defaults table (and, for
    // feature-mode keys, the `[construct]` section) as documented.
    let mode_of = |table: &Table| -> Result<Option<&'static str>, String> {
        Ok(if table.string("features")?.is_some() {
            Some("features")
        } else if table.string("edges")?.is_some() {
            Some("edges")
        } else if table.string("dataset")?.is_some() {
            Some("dataset")
        } else if table.usize_value("nodes")?.is_some() {
            Some("nodes")
        } else {
            None
        })
    };
    let mode = match mode_of(run)? {
        Some(mode) => Some(mode),
        None => match mode_of(defaults)? {
            Some(mode) => Some(mode),
            None if construct.string("features")?.is_some() => Some("features"),
            None => None,
        },
    };
    if mode == Some("features") {
        return load_feature_run(run, defaults, construct, base, seed, fraction);
    }
    if mode == Some("edges") {
        // File mode: explicit edge list + observed labels.
        let edges = entry_or_default!(run, defaults, string, "edges").expect("mode key present");
        let nodes = entry_or_default!(run, defaults, usize_value, "nodes")
            .ok_or("file-based runs need 'nodes'")?;
        let classes = entry_or_default!(run, defaults, usize_value, "classes")
            .ok_or("file-based runs need 'classes'")?;
        let labels = entry_or_default!(run, defaults, string, "labels")
            .ok_or("file-based runs need 'labels'")?;
        let graph = fg_datasets::read_edge_list(&resolve_path(base, &edges), nodes).map_err(err)?;
        let seeds =
            fg_datasets::read_labels(&resolve_path(base, &labels), nodes, classes).map_err(err)?;
        let truth = match entry_or_default!(run, defaults, string, "truth") {
            Some(path) => {
                let full = fg_datasets::read_labels(&resolve_path(base, &path), nodes, classes)
                    .map_err(err)?;
                let labels: Option<Vec<usize>> = full.as_slice().iter().copied().collect();
                match labels {
                    Some(all) => Some(Labeling::new(all, classes).map_err(err)?),
                    None => return Err(format!("truth file '{path}' does not label every node")),
                }
            }
            None => None,
        };
        Ok(RunData {
            graph,
            seeds,
            truth,
            classes,
            dataset_label: edges,
        })
    } else if mode == Some("dataset") {
        // Real-world dataset substitute.
        let dataset =
            entry_or_default!(run, defaults, string, "dataset").expect("mode key present");
        let id =
            DatasetId::parse(&dataset).ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
        let scale = entry_or_default!(run, defaults, f64_value, "scale").unwrap_or(0.05);
        let instance = synthesize(id, scale, seed).map_err(err)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = instance.labeling.stratified_sample(fraction, &mut rng);
        Ok(RunData {
            graph: instance.graph,
            classes: instance.spec.k,
            seeds,
            truth: Some(instance.labeling),
            dataset_label: id.name().to_string(),
        })
    } else if mode == Some("nodes") {
        // Synthetic planted-compatibility generator.
        let nodes = entry_or_default!(run, defaults, usize_value, "nodes").expect("mode key");
        let degree = entry_or_default!(run, defaults, f64_value, "degree").unwrap_or(10.0);
        let classes = entry_or_default!(run, defaults, usize_value, "classes").unwrap_or(3);
        let skew = entry_or_default!(run, defaults, f64_value, "skew").unwrap_or(3.0);
        let config = GeneratorConfig::balanced(nodes, degree, classes, skew).map_err(err)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let synthetic = generate(&config, &mut rng).map_err(err)?;
        let seeds = synthetic.labeling.stratified_sample(fraction, &mut rng);
        Ok(RunData {
            graph: synthetic.graph,
            seeds,
            truth: Some(synthetic.labeling),
            classes,
            dataset_label: format!("synthetic(n={nodes},k={classes},h={skew},seed={seed})"),
        })
    } else {
        Err(
            "each [[run]] needs a dataset: 'edges' + 'labels' files, a 'dataset' \
             substitute name, 'nodes' for the synthetic generator, or 'features' \
             (directly or via a [construct] section) to build a graph from a \
             feature matrix"
                .into(),
        )
    }
}

/// Materialize a feature-mode run: load the raw feature matrix, build a graph with
/// the configured construction backend, and derive seeds/truth from the label column.
///
/// Feature-mode keys (`features`, `builder`, `classes`) resolve run → defaults →
/// `[construct]` section, so a single `[construct]` block can feed every entry while
/// individual runs swap in a different builder or feature file.
///
/// When the run configures a `summary-cache` directory, constructed graphs are
/// content-addressed there by `(feature-matrix fingerprint, builder spec)`: warm
/// runs load the persisted edge set instead of repeating the O(n²·d) build, and a
/// corrupt entry is reported and rebuilt rather than trusted.
fn load_feature_run(
    run: &Table,
    defaults: &Table,
    construct: &Table,
    base: &Path,
    seed: u64,
    fraction: f64,
) -> Result<RunData, String> {
    let lookup = |key: &str| -> Result<Option<String>, String> {
        Ok(match entry_or_default!(run, defaults, string, key) {
            Some(v) => Some(v),
            None => construct.string(key)?,
        })
    };
    let features_path = lookup("features")?.expect("mode key present");
    let builder_spec = lookup("builder")?.unwrap_or_else(|| "knn".into());
    let threads = match entry_or_default!(run, defaults, string, "threads") {
        Some(spec) => Some(spec.parse::<Threads>().map_err(err)?),
        None => None,
    };
    let data = fg_datasets::read_features(&resolve_path(base, &features_path)).map_err(err)?;
    let builder = fg_datasets::construction_by_name_with(
        &builder_spec,
        &fg_datasets::ConstructionOptions {
            threads,
            ..Default::default()
        },
    )?;
    let store = match entry_or_default!(run, defaults, string, "summary_cache") {
        Some(cache_dir) => Some(SummaryStore::open(resolve_path(base, &cache_dir)).map_err(err)?),
        None => None,
    };
    let features_fp = fg_datasets::features_fingerprint(&data.features);
    let spec_name = builder.name();
    let cached = store.as_ref().and_then(|s| {
        match s.load_graph(features_fp, &spec_name) {
            Ok(found) => found,
            // A corrupt or foreign cache entry is loud but non-fatal: rebuild.
            Err(e) => {
                eprintln!("warning: {e}; reconstructing");
                None
            }
        }
    });
    let graph = match cached {
        Some(graph) => graph,
        None => {
            let graph = builder.build(&data.features).map_err(err)?;
            if let Some(s) = &store {
                if let Err(e) = s.save_graph(features_fp, &spec_name, &graph) {
                    eprintln!("warning: cannot persist the constructed graph: {e}");
                }
            }
            graph
        }
    };
    let classes = match entry_or_default!(run, defaults, usize_value, "classes") {
        Some(k) => Some(k),
        None => construct.usize_value("classes")?,
    }
    .unwrap_or(data.num_classes);
    if classes == 0 {
        return Err(format!(
            "feature file '{features_path}' has no labeled rows; feature-mode runs \
             need at least one label or an explicit 'classes'"
        ));
    }
    // A fully labeled feature file is ground truth: sample a stratified seed set
    // from it (like the synthetic modes) and evaluate accuracy against the rest.
    // Partially labeled files contribute their labeled rows as the seed set.
    let truth: Option<Labeling> = if data.labels.iter().all(Option::is_some) {
        let all: Vec<usize> = data.labels.iter().map(|l| l.expect("checked")).collect();
        Some(Labeling::new(all, classes).map_err(err)?)
    } else {
        None
    };
    let seeds = match &truth {
        Some(truth) => {
            let mut rng = StdRng::seed_from_u64(seed);
            truth.stratified_sample(fraction, &mut rng)
        }
        None => data.seed_labels(Some(classes)).map_err(err)?,
    };
    Ok(RunData {
        graph,
        seeds,
        truth,
        classes,
        dataset_label: format!("construct({features_path},{})", builder.name()),
    })
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Execute every `[[run]]` entry of a manifest file serially. Returns one JSON
/// object per line: `{"name":...,"dataset":...,"report":{<PipelineReport>}}`.
#[cfg(test)]
pub fn run_manifest(path: &Path) -> Result<String, String> {
    run_manifest_with(path, Threads::Serial)
}

/// Execute every `[[run]]` entry of a manifest file, distributing independent
/// entries across worker threads through the shared-atomic work queue
/// (`fg_sparse::run_ordered_cells`, the same queue `fg_bench`'s parallel sweeps
/// use) when `--threads N|auto` resolves to more than one worker;
/// `Threads::Serial` streams entries one at a time (load → run → drop, so peak
/// memory stays one dataset). Returns one JSON object per line:
/// `{"name":...,"dataset":...,"report":{<PipelineReport>}}`.
///
/// All entries share one in-memory [`SummaryCache`] (plus whatever persistent
/// stores they configure), so entries on the same dataset summarize once no matter
/// which worker runs them. Output is **byte-identical to the serial order**: result
/// lines are reassembled in manifest order, per-run counters are key-scoped, and
/// entries whose datasets collide on the same `(graph, seeds)` fingerprints are
/// serialized in manifest order (a condvar turnstile per duplicated key), so the
/// first entry always does the computing exactly as it would serially. Entries on
/// distinct datasets run fully in parallel — the per-key cache locking means even
/// their summarizations overlap. The parallel path pre-loads every dataset to
/// derive the collision keys (peak memory is the sum of datasets, each dropped as
/// its entry finishes) — the price of `--threads`; the serial default keeps the
/// old one-at-a-time footprint.
pub fn run_manifest_with(path: &Path, threads: Threads) -> Result<String, String> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
    let manifest = parse_manifest(&content)?;
    validate_keys(&manifest.defaults, "default")?;
    validate_keys(&manifest.construct, "[construct]")?;
    for run in &manifest.runs {
        validate_keys(run, "run")?;
    }
    let base = path.parent().unwrap_or(Path::new(".")).to_path_buf();
    let mut names = Vec::with_capacity(manifest.runs.len());
    for (index, run) in manifest.runs.iter().enumerate() {
        // A non-string `name` is a manifest error, not an anonymous run.
        names.push(
            run.string("name")?
                .unwrap_or_else(|| format!("run{}", index + 1)),
        );
    }
    let cache = SummaryCache::shared();

    if threads.count_for(manifest.runs.len()) <= 1 {
        // Serial: stream entries so only one dataset is resident at a time. The
        // shared cache still deduplicates repeated datasets across entries.
        let mut lines = Vec::with_capacity(manifest.runs.len());
        for (index, run) in manifest.runs.iter().enumerate() {
            let data = load_run_data(run, &manifest.defaults, &manifest.construct, &base)
                .map_err(|e| format!("run '{}': {e}", names[index]))?;
            lines.push(execute_run(
                run,
                &manifest.defaults,
                &base,
                &names[index],
                &data,
                &cache,
            )?);
        }
        return Ok(lines.join("\n"));
    }

    // Phase 1: materialize every entry's dataset (parallel across entries; each
    // cell is independent, so the loaded data is identical to serial loading).
    // Datasets sit in per-entry slots so each can be dropped when its run ends.
    let loaded: Vec<Result<RunData, String>> =
        fg_sparse::run_ordered_cells(manifest.runs.len(), threads, |index| {
            Ok::<_, String>(
                load_run_data(
                    &manifest.runs[index],
                    &manifest.defaults,
                    &manifest.construct,
                    &base,
                )
                .map_err(|e| format!("run '{}': {e}", names[index])),
            )
        })?;
    let mut data: Vec<std::sync::Mutex<Option<RunData>>> = Vec::with_capacity(loaded.len());
    for entry in loaded {
        data.push(std::sync::Mutex::new(Some(entry?)));
    }

    // Phase 2: for datasets that recur (same graph & seed fingerprints), build a
    // turnstile so colliding entries execute in manifest order — that pins the
    // "who computes, who hits the cache" counters to the serial outcome.
    let keys: Vec<(fg_graph::Fingerprint, fg_graph::Fingerprint)> = data
        .iter()
        .map(|slot| {
            let guard = slot.lock().expect("dataset slot poisoned");
            let d = guard.as_ref().expect("loaded above");
            (d.graph.fingerprint(), d.seeds.fingerprint())
        })
        .collect();
    let mut key_count: HashMap<_, usize> = HashMap::new();
    for key in &keys {
        *key_count.entry(*key).or_insert(0) += 1;
    }
    type Turnstile = Arc<(std::sync::Mutex<usize>, std::sync::Condvar)>;
    let mut turnstiles: HashMap<_, Turnstile> = HashMap::new();
    let mut positions: HashMap<_, usize> = HashMap::new();
    let gates: Vec<Option<(Turnstile, usize)>> = keys
        .iter()
        .map(|key| {
            if key_count[key] < 2 {
                return None;
            }
            let gate = Arc::clone(turnstiles.entry(*key).or_default());
            let pos = positions.entry(*key).or_insert(0);
            let this = *pos;
            *pos += 1;
            Some((gate, this))
        })
        .collect();

    // Phase 3: run the pipelines. One shared cache deduplicates summaries across
    // entries; report counters are per-key, so concurrent other-key work never
    // leaks into a run's own numbers.
    let outcomes: Vec<Result<String, String>> =
        fg_sparse::run_ordered_cells(manifest.runs.len(), threads, |index| {
            let gate = gates[index].clone();
            if let Some((gate, pos)) = &gate {
                let (lock, cvar) = &**gate;
                let mut turn = lock.lock().expect("manifest turnstile poisoned");
                while *turn < *pos {
                    turn = cvar.wait(turn).expect("manifest turnstile poisoned");
                }
            }
            // Take the dataset out of its slot so it is freed when this cell ends.
            let run_data = data[index]
                .lock()
                .expect("dataset slot poisoned")
                .take()
                .expect("each cell runs exactly once");
            let outcome = execute_run(
                &manifest.runs[index],
                &manifest.defaults,
                &base,
                &names[index],
                &run_data,
                &cache,
            );
            drop(run_data);
            if let Some((gate, _)) = &gate {
                // Advance the turnstile even on error, or waiters would hang.
                let (lock, cvar) = &**gate;
                *lock.lock().expect("manifest turnstile poisoned") += 1;
                cvar.notify_all();
            }
            Ok::<_, String>(outcome)
        })?;

    let mut lines = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        lines.push(outcome?);
    }
    Ok(lines.join("\n"))
}

/// Execute one prepared `[[run]]` entry against the shared summary cache,
/// returning its output line.
fn execute_run(
    run: &Table,
    defaults: &Table,
    base: &Path,
    name: &str,
    data: &RunData,
    cache: &Arc<SummaryCache>,
) -> Result<String, String> {
    let context = |e: String| format!("run '{name}': {e}");

    // Estimator through the PR 3 registry (parameterized specs supported).
    let estimator_spec =
        entry_or_default!(run, defaults, string, "estimator").unwrap_or_else(|| "dcer".into());
    let threads = match entry_or_default!(run, defaults, string, "threads") {
        Some(spec) => Some(spec.parse::<Threads>().map_err(err).map_err(context)?),
        None => None,
    };
    let estimator = estimator_by_name_with(
        &estimator_spec,
        &EstimatorOptions {
            threads,
            // A `rank =` key selects the low-rank counting backend for every
            // estimator in the entry (spec-string keys still win).
            rank: entry_or_default!(run, defaults, usize_value, "rank"),
            ..EstimatorOptions::default()
        },
    )
    .map_err(context)?;
    let estimator_label = estimator.name();

    // Propagator through the propagation registry.
    let propagator_name =
        entry_or_default!(run, defaults, string, "propagator").unwrap_or_else(|| "linbp".into());
    let opts = PropagatorOptions {
        max_iterations: entry_or_default!(run, defaults, usize_value, "iterations"),
        tolerance: entry_or_default!(run, defaults, f64_value, "tolerance"),
        damping: entry_or_default!(run, defaults, f64_value, "damping"),
        threads,
    };
    let propagator = registry::by_name_with(&propagator_name, &opts).ok_or_else(|| {
        context(format!(
            "unknown propagation method '{propagator_name}' (expected one of {})",
            registry::propagator_names().join(", ")
        ))
    })?;

    let mut pipeline = Pipeline::on(&data.graph)
        .seeds(&data.seeds)
        .estimator(estimator)
        .estimator_label(estimator_label)
        .propagator(propagator)
        .summary_cache(Arc::clone(cache));
    if let Some(threads) = threads {
        pipeline = pipeline.estimation_threads(threads);
    }
    if let Some(cache_dir) = entry_or_default!(run, defaults, string, "summary_cache") {
        let store = SummaryStore::open(resolve_path(base, &cache_dir))
            .map_err(err)
            .map_err(context)?;
        pipeline = pipeline.summary_store(Arc::new(store));
    }
    let mut report = pipeline.run().map_err(err).map_err(context)?;
    if let Some(truth) = &data.truth {
        if truth.k() == data.classes {
            report.evaluate(truth, &data.seeds);
        }
    }
    if let Some(out) = run.string("out")? {
        crate::matrix_io::write_predictions(&resolve_path(base, &out), &report.outcome.predictions)
            .map_err(err)
            .map_err(context)?;
    }
    let line = format!(
        "{{\"name\":\"{}\",\"dataset\":\"{}\",\"report\":{}}}",
        json_escape(name),
        json_escape(&data.dataset_label),
        report.to_json()
    );
    if let Some(report_path) = run.string("report")? {
        std::fs::write(resolve_path(base, &report_path), format!("{line}\n"))
            .map_err(err)
            .map_err(context)?;
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fg_manifest_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parser_handles_defaults_runs_comments_and_types() {
        let manifest = parse_manifest(
            "# header comment\n\
             threads = \"auto\"   # inline comment\n\
             fraction = 0.1\n\
             \n\
             [[run]]\n\
             name = \"a\"\n\
             nodes = 500\n\
             skew = 8.0\n\
             [[run]]\n\
             name = \"b # not a comment\"\n\
             dataset = \"Cora\"\n",
        )
        .unwrap();
        assert_eq!(manifest.runs.len(), 2);
        assert_eq!(
            manifest.defaults.string("threads").unwrap(),
            Some("auto".to_string())
        );
        assert_eq!(manifest.defaults.f64_value("fraction").unwrap(), Some(0.1));
        assert_eq!(manifest.runs[0].usize_value("nodes").unwrap(), Some(500));
        assert_eq!(manifest.runs[0].f64_value("skew").unwrap(), Some(8.0));
        assert_eq!(
            manifest.runs[1].string("name").unwrap(),
            Some("b # not a comment".to_string())
        );
    }

    #[test]
    fn parser_rejects_malformed_input_with_line_numbers() {
        let assert_err = |content: &str, needle: &str| {
            let e = parse_manifest(content).unwrap_err();
            assert!(e.contains(needle), "'{e}' should mention '{needle}'");
        };
        assert_err("[[run]]\nkey value\n", "line 2");
        assert_err("[[run]]\nx = \"unterminated\n", "unterminated");
        assert_err("[[run]]\nx = maybe\n", "cannot parse");
        assert_err("[section]\n[[run]]\n", "unknown section");
        assert_err("[[run]]\na = 1\na = 2\n", "duplicate");
        assert_err("threads = \"auto\"\n", "no [[run]]");
        // Unknown keys are rejected during execution-side validation.
        let manifest = parse_manifest("[[run]]\nbogus = 1\n").unwrap();
        assert!(validate_keys(&manifest.runs[0], "run")
            .unwrap_err()
            .contains("bogus"));
    }

    #[test]
    fn type_mismatches_are_reported() {
        let manifest = parse_manifest("[[run]]\nnodes = \"many\"\nname = 7\n").unwrap();
        assert!(manifest.runs[0].usize_value("nodes").is_err());
        assert!(manifest.runs[0].string("name").is_err());
        let negative = parse_manifest("[[run]]\nnodes = -4\n").unwrap();
        assert!(negative.runs[0].usize_value("nodes").is_err());
    }

    #[test]
    fn synthetic_manifest_runs_end_to_end() {
        let dir = temp_dir("synthetic");
        let manifest_path = dir.join("exp.toml");
        std::fs::write(
            &manifest_path,
            "estimator = \"mce\"\n\
             fraction = 0.1\n\
             [[run]]\n\
             name = \"small\"\n\
             nodes = 300\n\
             degree = 8.0\n\
             classes = 3\n\
             skew = 8.0\n\
             seed = 3\n\
             out = \"pred.tsv\"\n\
             report = \"report.json\"\n\
             [[run]]\n\
             name = \"rw-baseline\"\n\
             nodes = 200\n\
             propagator = \"rw\"\n",
        )
        .unwrap();
        let output = run_manifest(&manifest_path).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"small\""));
        assert!(lines[0].contains("\"estimator\":\"MCE\""));
        assert!(lines[0].contains("\"accuracy\":"));
        assert!(lines[1].contains("\"propagator\":\"RandomWalk\""));
        assert!(dir.join("pred.tsv").exists());
        let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(report.contains("\"name\":\"small\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rank_key_selects_the_lowrank_backend() {
        let dir = temp_dir("rank_key");
        let manifest_path = dir.join("exp.toml");
        std::fs::write(
            &manifest_path,
            "fraction = 0.1\n\
             [[run]]\n\
             name = \"lowrank\"\n\
             nodes = 300\n\
             seed = 3\n\
             estimator = \"dce\"\n\
             rank = 8\n",
        )
        .unwrap();
        let output = run_manifest(&manifest_path).unwrap();
        assert!(
            output.contains("\"estimator\":\"DCE(l=5,lambda=10,mode=lowrank,rank=8)\""),
            "{output}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_summary_cache_is_warm_on_second_execution() {
        let dir = temp_dir("cache");
        let manifest_path = dir.join("exp.toml");
        std::fs::write(
            &manifest_path,
            "summary-cache = \"summaries\"\n\
             [[run]]\n\
             name = \"cached\"\n\
             nodes = 300\n\
             seed = 5\n\
             fraction = 0.1\n",
        )
        .unwrap();
        let cold = run_manifest(&manifest_path).unwrap();
        assert!(cold.contains("\"summary_computations\":1"), "{cold}");
        // The warm run hits the persisted H estimate, which answers before the
        // summaries are even consulted — no computation, no store reads.
        let warm = run_manifest(&manifest_path).unwrap();
        assert!(warm.contains("\"summary_computations\":0"), "{warm}");
        assert!(warm.contains("\"optimize_store_hits\":1"), "{warm}");
        assert!(dir.join("summaries").is_dir());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn defaults_supply_dataset_keys_and_reject_per_run_only_ones() {
        let dir = temp_dir("defaults");
        let manifest_path = dir.join("exp.toml");
        // The dataset (generator mode) lives entirely in the defaults; entries only
        // override what differs.
        std::fs::write(
            &manifest_path,
            "nodes = 300\n\
             classes = 3\n\
             skew = 8.0\n\
             seed = 9\n\
             fraction = 0.1\n\
             estimator = \"mce\"\n\
             [[run]]\n\
             name = \"default-dataset\"\n\
             [[run]]\n\
             name = \"smaller\"\n\
             nodes = 200\n",
        )
        .unwrap();
        let output = run_manifest(&manifest_path).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("synthetic(n=300,k=3,h=8,seed=9)"),
            "{output}"
        );
        assert!(
            lines[1].contains("synthetic(n=200,k=3,h=8,seed=9)"),
            "{output}"
        );
        // Per-run-only keys cannot be defaults.
        std::fs::write(&manifest_path, "out = \"pred.tsv\"\n[[run]]\nnodes = 100\n").unwrap();
        let e = run_manifest(&manifest_path).unwrap_err();
        assert!(e.contains("per-run only"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Strip the wall-clock fields (the only run-to-run nondeterminism a report
    /// carries) so two executions can be compared byte for byte on everything else:
    /// names, datasets, counters, accuracies, iterations, epsilons.
    fn normalize_timings(output: &str) -> String {
        output
            .lines()
            .map(|line| {
                line.split(',')
                    .filter(|field| !field.contains("_seconds\":"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn parallel_manifest_output_is_byte_identical_to_serial() {
        let dir = temp_dir("parallel");
        let manifest_path = dir.join("exp.toml");
        // Four entries: two share one dataset+seed set (cache collision — the
        // first computes, the second hits, in manifest order even under threads),
        // two are distinct; one writes predictions. A summary store is in play too.
        std::fs::write(
            &manifest_path,
            "summary-cache = \"summaries\"\n\
             estimator = \"mce\"\n\
             fraction = 0.1\n\
             [[run]]\n\
             name = \"a\"\n\
             nodes = 300\n\
             seed = 5\n\
             out = \"pred_a.tsv\"\n\
             [[run]]\n\
             name = \"a-again\"\n\
             nodes = 300\n\
             seed = 5\n\
             out = \"pred_a_again.tsv\"\n\
             [[run]]\n\
             name = \"b\"\n\
             nodes = 250\n\
             seed = 6\n\
             [[run]]\n\
             name = \"c\"\n\
             nodes = 200\n\
             seed = 7\n\
             propagator = \"rw\"\n",
        )
        .unwrap();
        let run_with = |threads: Threads, fresh_store: bool| {
            if fresh_store {
                std::fs::remove_dir_all(dir.join("summaries")).ok();
            }
            run_manifest_with(&manifest_path, threads).unwrap()
        };
        let serial = run_with(Threads::Serial, true);
        let serial_preds = std::fs::read(dir.join("pred_a.tsv")).unwrap();
        // The collision entries report computing exactly once, in manifest order.
        let lines: Vec<&str> = serial.lines().collect();
        assert!(lines[0].contains("\"summary_computations\":1"), "{serial}");
        assert!(lines[1].contains("\"summary_computations\":0"), "{serial}");
        assert_eq!(
            serial_preds,
            std::fs::read(dir.join("pred_a_again.tsv")).unwrap()
        );

        // Cold parallel run: identical output (modulo wall-clock), identical files.
        let parallel = run_with(Threads::Fixed(4), true);
        assert_eq!(normalize_timings(&serial), normalize_timings(&parallel));
        assert_eq!(serial_preds, std::fs::read(dir.join("pred_a.tsv")).unwrap());

        // Warm-store runs agree too (counters shift to the persisted H estimate,
        // deterministically — it answers before the summaries are consulted).
        let serial_warm = run_with(Threads::Serial, false);
        let parallel_warm = run_with(Threads::Fixed(4), false);
        assert!(serial_warm
            .lines()
            .next()
            .unwrap()
            .contains("\"optimize_store_hits\":1"));
        assert_eq!(
            normalize_timings(&serial_warm),
            normalize_timings(&parallel_warm)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn construct_section_parses_and_rejects_unknown_keys() {
        let manifest = parse_manifest(
            "[construct]\n\
             features = \"blobs.csv\"\n\
             builder = \"knn\"\n\
             [[run]]\n\
             name = \"a\"\n",
        )
        .unwrap();
        assert_eq!(
            manifest.construct.string("features").unwrap(),
            Some("blobs.csv".to_string())
        );
        let bad =
            parse_manifest("[construct]\nestimator = \"mce\"\n[[run]]\nnodes = 10\n").unwrap();
        let e = validate_keys(&bad.construct, "[construct]").unwrap_err();
        assert!(e.contains("unknown [construct] key 'estimator'"), "{e}");
    }

    #[test]
    fn construct_manifest_classifies_features_end_to_end_with_warm_cache() {
        let dir = temp_dir("construct");
        let config = fg_datasets::BlobConfig {
            nodes: 120,
            classes: 3,
            dims: 4,
            spread: 0.8,
            spread_skew: 1.0,
            seed: 11,
        };
        let (features, truth) = fg_datasets::synthesize_blobs(&config).unwrap();
        let labels: Vec<Option<usize>> = truth.as_slice().iter().map(|&c| Some(c)).collect();
        fg_datasets::write_features(&dir.join("blobs.csv"), &features, &labels).unwrap();
        let manifest_path = dir.join("exp.toml");
        std::fs::write(
            &manifest_path,
            "summary-cache = \"summaries\"\n\
             estimator = \"mce\"\n\
             fraction = 0.1\n\
             seed = 4\n\
             [construct]\n\
             features = \"blobs.csv\"\n\
             builder = \"Knn(k=8,weighting=heat)\"\n\
             [[run]]\n\
             name = \"blobs-heat\"\n\
             [[run]]\n\
             name = \"blobs-sparse\"\n\
             builder = \"SparseReg(k=8,alpha=0.05)\"\n",
        )
        .unwrap();
        // Cold run: the feature matrix is the only input on disk — no edge list
        // anywhere — and both entries classify it through the standard pipeline.
        let cold = run_manifest(&manifest_path).unwrap();
        let lines: Vec<&str> = cold.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("construct(blobs.csv,Knn(k=8,metric=euclidean,weighting=heat,"),
            "{cold}"
        );
        assert!(
            lines[1].contains("construct(blobs.csv,SparseReg(k=8,alpha=0.05,"),
            "{cold}"
        );
        for line in &lines {
            assert!(line.contains("\"summary_computations\":1"), "{cold}");
            assert!(line.contains("\"accuracy\":"), "{cold}");
        }
        // The cold run also persisted both constructed graphs, content-addressed
        // by (feature fingerprint, builder spec).
        let fgg_files: Vec<_> = std::fs::read_dir(dir.join("summaries"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "fgg"))
            .collect();
        assert_eq!(fgg_files.len(), 2, "{cold}");
        // Warm run: constructed graphs fingerprint deterministically, so the
        // persistent store answers both entries — the cached edge sets replace
        // the O(n²·d) builds and the persisted H estimates skip summarization
        // and optimization entirely.
        let warm = run_manifest(&manifest_path).unwrap();
        for line in warm.lines() {
            assert!(line.contains("\"summary_computations\":0"), "{warm}");
            assert!(line.contains("\"optimize_store_hits\":1"), "{warm}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partially_labeled_feature_runs_seed_from_the_labeled_rows() {
        let dir = temp_dir("construct_partial");
        let config = fg_datasets::BlobConfig {
            nodes: 90,
            classes: 3,
            dims: 4,
            spread: 0.6,
            spread_skew: 1.0,
            seed: 2,
        };
        let (features, truth) = fg_datasets::synthesize_blobs(&config).unwrap();
        // Keep one row in five labeled; the rest become '?' rows.
        let labels: Vec<Option<usize>> = truth
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &c)| (i % 5 == 0).then_some(c))
            .collect();
        fg_datasets::write_features(&dir.join("part.csv"), &features, &labels).unwrap();
        let manifest_path = dir.join("exp.toml");
        std::fs::write(
            &manifest_path,
            "estimator = \"mce\"\n\
             [[run]]\n\
             name = \"partial\"\n\
             features = \"part.csv\"\n\
             builder = \"knn\"\n",
        )
        .unwrap();
        let output = run_manifest(&manifest_path).unwrap();
        // No ground truth => no accuracy field, but the run still classifies.
        assert!(!output.contains("\"accuracy\":"), "{output}");
        assert!(output.contains("\"summary_computations\":1"), "{output}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dataset_and_bad_specs_error_with_run_name() {
        let dir = temp_dir("errors");
        let path = dir.join("bad.toml");
        std::fs::write(&path, "[[run]]\nname = \"x\"\nestimator = \"mce\"\n").unwrap();
        let e = run_manifest(&path).unwrap_err();
        assert!(e.contains("run 'x'"), "{e}");
        assert!(e.contains("needs a dataset"), "{e}");
        std::fs::write(&path, "[[run]]\nnodes = 100\nestimator = \"nope\"\n").unwrap();
        assert!(run_manifest(&path).unwrap_err().contains("unknown"));
        std::fs::write(&path, "[[run]]\nnodes = 100\npropagator = \"nope\"\n").unwrap();
        assert!(run_manifest(&path)
            .unwrap_err()
            .contains("unknown propagation method"));
        assert!(run_manifest(&dir.join("absent.toml"))
            .unwrap_err()
            .contains("cannot read"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
