//! Minimal command-line argument parsing.
//!
//! The CLI intentionally avoids external argument-parsing dependencies; options follow
//! the conventional `--name value` / `--flag` style and are collected into an
//! [`ArgMap`] that the individual commands query with typed accessors.

use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing or querying command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Build the error for an unparsable option value, keeping the underlying parser's
/// message (e.g. `Threads`' "expected serial, auto, or N") visible to the user.
fn parse_error(name: &str, raw: &str, cause: impl fmt::Display) -> ArgError {
    ArgError(format!(
        "option --{name} has invalid value '{raw}': {cause}"
    ))
}

/// Parsed `--key value` options and boolean `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct ArgMap {
    values: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

impl ArgMap {
    /// Parse a raw argument list (excluding the program name and subcommand).
    ///
    /// A token starting with `--` introduces either a flag (if the next token also
    /// starts with `--` or is absent) or a key/value option. Remaining tokens are
    /// positional.
    pub fn parse(args: &[String]) -> Result<ArgMap, ArgError> {
        let mut map = ArgMap::default();
        let mut i = 0;
        while i < args.len() {
            let token = &args[i];
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError("empty option name '--'".into()));
                }
                let next_is_value = args
                    .get(i + 1)
                    .map(|n| !n.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    map.values.insert(name.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    map.flags.push(name.to_string());
                    i += 1;
                }
            } else {
                map.positional.push(token.clone());
                i += 1;
            }
        }
        Ok(map)
    }

    /// Whether a boolean flag was supplied.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string value of an option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))
    }

    /// Optional typed option with a default.
    pub fn get_parsed_or<T>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|e| parse_error(name, raw, e)),
        }
    }

    /// Optional typed option without a default: `Ok(None)` when absent, an error when
    /// present but unparsable.
    pub fn get_parsed<T>(&self, name: &str) -> Result<Option<T>, ArgError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| parse_error(name, raw, e)),
        }
    }

    /// Required typed option.
    pub fn require_parsed<T>(&self, name: &str) -> Result<T, ArgError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        let raw = self.require(name)?;
        raw.parse::<T>().map_err(|e| parse_error(name, raw, e))
    }

    /// Comma-separated list of floats (e.g. `--alpha 0.2,0.3,0.5`).
    pub fn get_float_list(&self, name: &str) -> Result<Option<Vec<f64>>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => {
                let parsed: Result<Vec<f64>, _> = raw
                    .split(',')
                    .map(|tok| tok.trim().parse::<f64>())
                    .collect();
                parsed
                    .map(Some)
                    .map_err(|_| ArgError(format!("option --{name} has invalid list '{raw}'")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ArgMap {
        ArgMap::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_options() {
        let args = parse(&["--nodes", "100", "--degree", "7.5"]);
        assert_eq!(args.get("nodes"), Some("100"));
        assert_eq!(args.require_parsed::<usize>("nodes").unwrap(), 100);
        assert_eq!(args.require_parsed::<f64>("degree").unwrap(), 7.5);
        assert!(args.require("missing").is_err());
    }

    #[test]
    fn flags_and_positional() {
        // A `--flag` is recognized when followed by another option or the end of the
        // argument list; a bare token is positional.
        let args = parse(&["cora", "--seed", "3", "--uniform-degrees"]);
        assert!(args.has_flag("uniform-degrees"));
        assert!(!args.has_flag("other"));
        assert_eq!(args.positional(), &["cora".to_string()]);
        assert_eq!(args.get_parsed_or("seed", 0u64).unwrap(), 3);
        assert_eq!(args.get_parsed_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn float_lists() {
        let args = parse(&["--alpha", "0.2, 0.3,0.5"]);
        assert_eq!(
            args.get_float_list("alpha").unwrap(),
            Some(vec![0.2, 0.3, 0.5])
        );
        assert_eq!(args.get_float_list("absent").unwrap(), None);
        let bad = parse(&["--alpha", "0.2,x"]);
        assert!(bad.get_float_list("alpha").is_err());
    }

    #[test]
    fn optional_typed_options() {
        let args = parse(&["--iterations", "7"]);
        assert_eq!(args.get_parsed::<usize>("iterations").unwrap(), Some(7));
        assert_eq!(args.get_parsed::<usize>("absent").unwrap(), None);
        let bad = parse(&["--iterations", "x"]);
        assert!(bad.get_parsed::<usize>("iterations").is_err());
    }

    #[test]
    fn invalid_values_are_reported() {
        let args = parse(&["--nodes", "abc"]);
        let err = args.require_parsed::<usize>("nodes").unwrap_err();
        assert!(err.to_string().contains("nodes"));
    }

    #[test]
    fn empty_option_name_rejected() {
        let tokens: Vec<String> = vec!["--".to_string()];
        assert!(ArgMap::parse(&tokens).is_err());
    }

    #[test]
    fn trailing_flag_without_value() {
        let args = parse(&["--verbose"]);
        assert!(args.has_flag("verbose"));
    }
}
