//! Reading and writing compatibility matrices and prediction files as plain text.

use fg_sparse::DenseMatrix;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Error type for matrix / prediction file handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixIoError(pub String);

impl std::fmt::Display for MatrixIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for MatrixIoError {}

/// Parse a `k x k` matrix from text: one row per line, whitespace-separated floats,
/// `#` comments and blank lines ignored.
pub fn parse_matrix(content: &str) -> Result<DenseMatrix, MatrixIoError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (line_no, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f64>, _> = trimmed
            .split_whitespace()
            .map(|tok| tok.parse::<f64>())
            .collect();
        let row =
            row.map_err(|_| MatrixIoError(format!("line {}: invalid matrix entry", line_no + 1)))?;
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(MatrixIoError("matrix file contains no rows".into()));
    }
    let cols = rows[0].len();
    if rows.iter().any(|r| r.len() != cols) {
        return Err(MatrixIoError(
            "matrix rows have inconsistent lengths".into(),
        ));
    }
    DenseMatrix::from_rows(&rows).map_err(|e| MatrixIoError(e.to_string()))
}

/// Render a matrix as text (one row per line).
pub fn format_matrix(matrix: &DenseMatrix) -> String {
    let mut out = String::new();
    for i in 0..matrix.rows() {
        let row: Vec<String> = matrix.row(i).iter().map(|v| format!("{v:.6}")).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Read a matrix from a file.
pub fn read_matrix(path: &Path) -> Result<DenseMatrix, MatrixIoError> {
    let content = fs::read_to_string(path)
        .map_err(|e| MatrixIoError(format!("cannot read {}: {e}", path.display())))?;
    parse_matrix(&content)
}

/// Write a matrix to a file.
pub fn write_matrix(path: &Path, matrix: &DenseMatrix) -> Result<(), MatrixIoError> {
    fs::write(path, format_matrix(matrix))
        .map_err(|e| MatrixIoError(format!("cannot write {}: {e}", path.display())))
}

/// Render per-node predictions as `node<TAB>class` lines.
pub fn format_predictions(predictions: &[usize]) -> String {
    let mut out = String::with_capacity(predictions.len() * 8);
    out.push_str("# node\tpredicted_class\n");
    for (node, class) in predictions.iter().enumerate() {
        let _ = writeln!(out, "{node}\t{class}");
    }
    out
}

/// Write predictions to a file.
pub fn write_predictions(path: &Path, predictions: &[usize]) -> Result<(), MatrixIoError> {
    fs::write(path, format_predictions(predictions))
        .map_err(|e| MatrixIoError(format!("cannot write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = DenseMatrix::from_rows(&[vec![0.2, 0.8], vec![0.8, 0.2]]).unwrap();
        let text = format_matrix(&m);
        let back = parse_matrix(&text).unwrap();
        assert!(back.approx_eq(&m, 1e-9));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m = parse_matrix("# comment\n\n0.5 0.5\n0.5 0.5\n").unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn malformed_matrices_rejected() {
        assert!(parse_matrix("").is_err());
        assert!(parse_matrix("0.1 x\n").is_err());
        assert!(parse_matrix("0.1 0.9\n0.5\n").is_err());
    }

    #[test]
    fn predictions_format() {
        let text = format_predictions(&[2, 0, 1]);
        assert!(text.contains("0\t2"));
        assert!(text.contains("2\t1"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fg_cli_matrix_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.txt");
        let m = DenseMatrix::from_rows(&[vec![0.3, 0.7], vec![0.7, 0.3]]).unwrap();
        write_matrix(&path, &m).unwrap();
        let back = read_matrix(&path).unwrap();
        assert!(back.approx_eq(&m, 1e-6));
        assert!(read_matrix(Path::new("/nonexistent/h.txt")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
