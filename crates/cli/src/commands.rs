//! Implementation of the CLI subcommands.
//!
//! Each command is a plain function over an [`ArgMap`] so the logic is unit-testable
//! without spawning the binary. Errors are strings suitable for printing to stderr.
//!
//! Estimation (`--method`) and propagation (`--propagator` / `propagate --method`)
//! backends are resolved by name through their registries (`fg_core`'s estimator
//! registry and `fg_propagation::registry`), so every estimator and `Propagator` in
//! the workspace is reachable from the command line — including fully parameterized
//! estimator specs like `--method "DCEr(r=10,l=5,lambda=0.1)"`.

use crate::args::ArgMap;
use crate::matrix_io;
use fg_core::estimator_by_name_with;
use fg_core::estimators::registry as estimator_registry;
use fg_core::prelude::*;
use fg_datasets::{synthesize, DatasetId};
use fg_propagation::{registry, PropagatorOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

type CommandResult = Result<String, String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Load the graph (`--edges`, `--nodes`) and seed labels (`--labels`, `--classes`) shared
/// by the estimation / propagation / classification commands.
fn load_graph_and_labels(args: &ArgMap) -> Result<(Graph, SeedLabels, usize), String> {
    let n: usize = args.require_parsed("nodes").map_err(err)?;
    let k: usize = args.require_parsed("classes").map_err(err)?;
    let edges_path: String = args.require("edges").map_err(err)?.to_string();
    let labels_path: String = args.require("labels").map_err(err)?.to_string();
    let graph = fg_datasets::read_edge_list(Path::new(&edges_path), n).map_err(err)?;
    let seeds = fg_datasets::read_labels(Path::new(&labels_path), n, k).map_err(err)?;
    Ok((graph, seeds, k))
}

/// Build the estimator selected by `--method` (default `dcer`) through the fg-core
/// estimator registry, together with its display label (the estimator's own
/// parameterized name, e.g. `"DCEr(r=10,l=5,lambda=10)"`).
///
/// `--method` accepts a plain registry name (`dcer`) or a fully parameterized spec
/// (`"DCEr(r=10,l=5,lambda=0.1)"`); the `--lmax` / `--lambda` / `--restarts` /
/// `--splits` / `--variant` / `--mode` / `--rank` / `--threads` options supply
/// defaults that spec parameters override. `--mode lowrank` (or a bare `--rank N`)
/// selects the low-rank counting backend for DCE/DCEr. `--threads` covers the
/// estimation stage: the summarization kernels run in parallel with bit-identical
/// output.
fn build_estimator(args: &ArgMap) -> Result<(Box<dyn CompatibilityEstimator>, String), String> {
    let method = args.get("method").unwrap_or("dcer");
    let variant = match args.get_parsed::<usize>("variant").map_err(err)? {
        Some(index) => Some(NormalizationVariant::from_index(index).ok_or_else(|| {
            format!("option --variant has invalid value '{index}' (expected 1, 2, or 3)")
        })?),
        None => None,
    };
    let lowrank = match args.get("mode") {
        Some("lowrank") => Some(true),
        Some("exact") => Some(false),
        Some(other) => {
            return Err(format!(
                "option --mode has invalid value '{other}' (expected exact or lowrank)"
            ))
        }
        None => None,
    };
    let defaults = EstimatorOptions {
        max_length: args.get_parsed("lmax").map_err(err)?,
        lambda: args.get_parsed("lambda").map_err(err)?,
        restarts: args.get_parsed("restarts").map_err(err)?,
        splits: args.get_parsed("splits").map_err(err)?,
        variant,
        non_backtracking: None,
        lowrank,
        rank: args.get_parsed("rank").map_err(err)?,
        threads: args.get_parsed("threads").map_err(err)?,
    };
    let estimator = estimator_by_name_with(method, &defaults)?;
    let label = estimator.name();
    Ok((estimator, label))
}

/// Build the propagation backend selected by `option_name` (default `linbp`) through
/// the propagation registry, applying the generic `--iterations` / `--tolerance` /
/// `--damping` / `--threads` overrides. `--threads` accepts a worker count, `auto`
/// (one worker per hardware thread), or `serial`; the parallel kernels are
/// bit-identical to the serial ones, so it never changes the predictions.
fn build_propagator(args: &ArgMap, option_name: &str) -> Result<Box<dyn Propagator>, String> {
    let method = args.get(option_name).unwrap_or("linbp").to_string();
    let opts = PropagatorOptions {
        max_iterations: args.get_parsed("iterations").map_err(err)?,
        tolerance: args.get_parsed("tolerance").map_err(err)?,
        damping: args.get_parsed("damping").map_err(err)?,
        threads: args.get_parsed("threads").map_err(err)?,
    };
    registry::by_name_with(&method, &opts).ok_or_else(|| {
        format!(
            "unknown propagation method '{method}' (expected one of {})",
            registry::propagator_names().join(", ")
        )
    })
}

/// `fg generate`: create a synthetic planted-compatibility graph and write it as an edge
/// list plus a full label file.
pub fn cmd_generate(args: &ArgMap) -> CommandResult {
    let n: usize = args.require_parsed("nodes").map_err(err)?;
    let degree: f64 = args.get_parsed_or("degree", 10.0).map_err(err)?;
    let k: usize = args.get_parsed_or("classes", 3).map_err(err)?;
    let skew: f64 = args.get_parsed_or("skew", 3.0).map_err(err)?;
    let seed: u64 = args.get_parsed_or("seed", 0).map_err(err)?;
    let out_edges: String = args.require("out-edges").map_err(err)?.to_string();
    let out_labels: String = args.require("out-labels").map_err(err)?.to_string();

    let mut config = if args.has_flag("uniform-degrees") {
        GeneratorConfig::balanced_uniform(n, degree, k, skew).map_err(err)?
    } else {
        GeneratorConfig::balanced(n, degree, k, skew).map_err(err)?
    };
    if let Some(alpha) = args.get_float_list("alpha").map_err(err)? {
        config.alpha = alpha;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let synthetic = generate(&config, &mut rng).map_err(err)?;

    fg_datasets::write_edge_list(Path::new(&out_edges), &synthetic.graph).map_err(err)?;
    std::fs::write(
        Path::new(&out_labels),
        fg_datasets::format_labels(&synthetic.labeling),
    )
    .map_err(err)?;
    Ok(format!(
        "generated graph with {} nodes and {} edges (planted skew {skew}); wrote {out_edges} and {out_labels}",
        synthetic.graph.num_nodes(),
        synthetic.graph.num_edges()
    ))
}

/// `fg dataset`: write one of the real-world dataset substitutes to disk. The dataset
/// can be named positionally (`fg dataset Cora ...`) or with `--name`.
pub fn cmd_dataset(args: &ArgMap) -> CommandResult {
    let name: String = match args.positional().first() {
        Some(positional) => positional.clone(),
        None => args.require("name").map_err(err)?.to_string(),
    };
    let id = DatasetId::parse(&name).ok_or_else(|| {
        format!(
            "unknown dataset '{name}' (expected one of {:?})",
            DatasetId::all().map(|d| d.name())
        )
    })?;
    let scale: f64 = args.get_parsed_or("scale", 0.05).map_err(err)?;
    let seed: u64 = args.get_parsed_or("seed", 0).map_err(err)?;
    let out_edges: String = args.require("out-edges").map_err(err)?.to_string();
    let out_labels: String = args.require("out-labels").map_err(err)?.to_string();

    let instance = synthesize(id, scale, seed).map_err(err)?;
    fg_datasets::write_edge_list(Path::new(&out_edges), &instance.graph).map_err(err)?;
    std::fs::write(
        Path::new(&out_labels),
        fg_datasets::format_labels(&instance.labeling),
    )
    .map_err(err)?;
    Ok(format!(
        "wrote {} substitute ({} nodes, {} edges, k = {}) to {out_edges} / {out_labels}",
        id.name(),
        instance.graph.num_nodes(),
        instance.graph.num_edges(),
        instance.spec.k
    ))
}

/// `fg construct`: build a graph from a dense feature matrix — read from a file
/// (`--features`, one row per node, labels column last, `?` = unlabeled) or
/// synthesized as Gaussian blobs (`--blobs N`) — and write it as an edge list.
/// The builder is selected by name or parameterized spec (`--builder
/// 'Knn(k=10,metric=cosine)'`) through the construction registry; `--threads`
/// parallelizes the per-node work with bit-identical output at any count.
pub fn cmd_construct(args: &ArgMap) -> CommandResult {
    let builder_spec = args.get("builder").unwrap_or("knn").to_string();
    let threads = args
        .get_parsed_or("threads", Threads::Serial)
        .map_err(err)?;
    let out_edges: String = args.require("out-edges").map_err(err)?.to_string();

    let (features, labels) = match args.get("features") {
        Some(path) => {
            let data = fg_datasets::read_features(Path::new(path)).map_err(err)?;
            (data.features, data.labels)
        }
        None => {
            let nodes: usize = args.require_parsed("blobs").map_err(|_| {
                "fg construct needs an input: --features FILE or --blobs N".to_string()
            })?;
            let config = fg_datasets::BlobConfig {
                nodes,
                classes: args.get_parsed_or("classes", 3).map_err(err)?,
                dims: args.get_parsed_or("dims", 4).map_err(err)?,
                spread: args.get_parsed_or("spread", 1.0).map_err(err)?,
                spread_skew: args.get_parsed_or("spread-skew", 1.0).map_err(err)?,
                seed: args.get_parsed_or("seed", 0).map_err(err)?,
            };
            let (features, truth) = fg_datasets::synthesize_blobs(&config).map_err(err)?;
            let labels = truth.as_slice().iter().map(|&c| Some(c)).collect();
            (features, labels)
        }
    };
    let builder = fg_datasets::construction_by_name_with(
        &builder_spec,
        &fg_datasets::ConstructionOptions {
            threads: Some(threads),
            ..Default::default()
        },
    )?;
    // With --summary-cache, constructed graphs are content-addressed by the
    // feature matrix's fingerprint plus the parameterized builder spec: a warm
    // run loads the finished edge list instead of repeating the O(n^2 d) build.
    let store = open_summary_store(args)?;
    let features_fp = fg_datasets::features_fingerprint(&features);
    let spec_name = builder.name();
    let cached = store
        .as_ref()
        .and_then(|s| match s.load_graph(features_fp, &spec_name) {
            Ok(found) => found,
            Err(e) => {
                eprintln!("warning: {e}; reconstructing");
                None
            }
        });
    let from_cache = cached.is_some();
    let graph = match cached {
        Some(graph) => graph,
        None => {
            let graph = builder.build(&features).map_err(err)?;
            if let Some(s) = &store {
                if let Err(e) = s.save_graph(features_fp, &spec_name, &graph) {
                    eprintln!("warning: cannot persist the constructed graph: {e}");
                }
            }
            graph
        }
    };
    fg_datasets::write_edge_list(Path::new(&out_edges), &graph).map_err(err)?;
    if let Some(out) = args.get("out-features") {
        fg_datasets::write_features(Path::new(out), &features, &labels).map_err(err)?;
    }
    if let Some(out) = args.get("out-labels") {
        let mut text = String::from("# node\tclass\n");
        for (i, label) in labels.iter().enumerate() {
            if let Some(c) = label {
                text.push_str(&format!("{i}\t{c}\n"));
            }
        }
        std::fs::write(Path::new(out), text).map_err(err)?;
    }
    Ok(format!(
        "constructed graph with {}{} ({} nodes, {} edges, mean degree {:.2}); wrote {out_edges}",
        spec_name,
        if from_cache { " [cached]" } else { "" },
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    ))
}

/// Open the persistent summary store selected by `--summary-cache DIR` (absent =
/// caching disabled; the flag form `--summary-cache` uses the default directory
/// `target/experiments/summaries`).
fn open_summary_store(args: &ArgMap) -> Result<Option<Arc<SummaryStore>>, String> {
    let dir = match args.get("summary-cache") {
        Some(dir) => std::path::PathBuf::from(dir),
        None if args.has_flag("summary-cache") => SummaryStore::default_dir(),
        None => return Ok(None),
    };
    Ok(Some(Arc::new(SummaryStore::open(dir).map_err(err)?)))
}

/// Render both registries for `fg estimate --list-methods`: estimators with their
/// aliases and fully parameterized default names, then propagation backends.
fn list_methods() -> String {
    let mut out = vec!["ESTIMATORS (fg estimate/classify --method):".to_string()];
    let defaults = EstimatorOptions::default();
    for spec in estimator_registry::estimator_registry() {
        let built = (spec.build)(&defaults);
        let aliases = if spec.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", spec.aliases.join(", "))
        };
        out.push(format!("  {:<8} {}{aliases}", spec.name, spec.description));
        out.push(format!("           defaults: {}", built.name()));
    }
    out.push(String::new());
    out.push("PROPAGATORS (fg propagate --method / classify --propagator):".to_string());
    for spec in registry::registry() {
        let aliases = if spec.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", spec.aliases.join(", "))
        };
        out.push(format!("  {:<8} {}{aliases}", spec.name, spec.description));
    }
    out.push(String::new());
    out.push(
        "Parameterized estimator specs are accepted anywhere a name is, e.g. \
         --method 'DCEr(r=10,l=5,lambda=10)'."
            .to_string(),
    );
    out.join("\n")
}

/// `fg estimate`: estimate the compatibility matrix from a partially labeled graph.
/// With `--summary-cache DIR` the factorized path counts are persisted and reused
/// across invocations (bit-identical results, zero summarizations when warm); with
/// `--list-methods` the estimator and propagator registries are printed instead.
pub fn cmd_estimate(args: &ArgMap) -> CommandResult {
    if args.has_flag("list-methods") {
        return Ok(list_methods());
    }
    let (graph, seeds, _) = load_graph_and_labels(args)?;
    let (estimator, label) = build_estimator(args)?;
    let store = open_summary_store(args)?;
    let (h, cache_note) = match &store {
        None => (estimator.estimate(&graph, &seeds).map_err(err)?, None),
        Some(store) => {
            let threads = args
                .get_parsed::<Threads>("threads")
                .map_err(err)?
                .unwrap_or(Threads::Serial);
            let ctx = EstimationContext::new(&graph, &seeds)
                .threads(threads)
                .store(Arc::clone(store));
            let h = estimator.estimate_with_context(&ctx).map_err(err)?;
            let mut note = format!(
                "summary computations: {} (store hits: {}, cache dir {})",
                ctx.summary_computations(),
                ctx.store_hits(),
                store.dir().display()
            );
            let cache = ctx.cache();
            if cache.factor_computations() + cache.factor_store_hits() > 0 {
                note.push_str(&format!(
                    "\nlow-rank eigensolves: {} (factor store hits: {})",
                    cache.factor_computations(),
                    cache.factor_store_hits()
                ));
            }
            (h, Some(note))
        }
    };
    let rendered = matrix_io::format_matrix(&h);
    if let Some(out) = args.get("out") {
        matrix_io::write_matrix(Path::new(out), &h).map_err(err)?;
    }
    let mut report = format!(
        "estimated compatibilities with {label} from {} labeled nodes:\n{rendered}",
        seeds.num_labeled()
    );
    if let Some(note) = cache_note {
        report.push_str(&note);
    }
    Ok(report)
}

/// `fg propagate`: label the remaining nodes with any propagation backend
/// (`--method linbp|bp|harmonic|rw`). LinBP and loopy BP consume an explicit
/// compatibility matrix file (`--compat`); the homophily baselines need none.
pub fn cmd_propagate(args: &ArgMap) -> CommandResult {
    let (graph, seeds, k) = load_graph_and_labels(args)?;
    let propagator = build_propagator(args, "method")?;

    let explicit_h;
    let mut pipeline = Pipeline::on(&graph).seeds(&seeds);
    if propagator.uses_compatibilities() {
        let compat_path: String = args
            .require("compat")
            .map_err(|_| {
                format!(
                    "propagation method '{}' requires --compat H_FILE",
                    propagator.name()
                )
            })?
            .to_string();
        explicit_h = matrix_io::read_matrix(Path::new(&compat_path)).map_err(err)?;
        if explicit_h.rows() != k {
            return Err(format!(
                "compatibility matrix is {}x{} but --classes is {k}",
                explicit_h.rows(),
                explicit_h.cols()
            ));
        }
        pipeline = pipeline.compatibilities(compat_path, &explicit_h);
    }
    let report = pipeline.propagator(propagator).run().map_err(err)?;

    if let Some(out) = args.get("out") {
        matrix_io::write_predictions(Path::new(out), &report.outcome.predictions).map_err(err)?;
    }
    let epsilon = match report.outcome.epsilon {
        Some(e) => format!("epsilon = {e:.4}, "),
        None => String::new(),
    };
    Ok(format!(
        "propagated labels to {} nodes with {} in {} iterations ({epsilon}converged = {})",
        graph.num_nodes(),
        report.propagator,
        report.outcome.iterations,
        report.outcome.converged
    ))
}

/// `fg classify`: end-to-end estimation + propagation with any estimator × propagator
/// combination; optionally evaluate against a ground-truth label file.
pub fn cmd_classify(args: &ArgMap) -> CommandResult {
    let (graph, seeds, k) = load_graph_and_labels(args)?;
    let (estimator, label) = build_estimator(args)?;
    let propagator = build_propagator(args, "propagator")?;
    let mut pipeline = Pipeline::on(&graph)
        .seeds(&seeds)
        .estimator(estimator)
        .estimator_label(label)
        .propagator(propagator);
    // --threads covers both stages: the propagator got it via build_propagator, and
    // the estimation stage (summarize + optimize) takes it here. Bit-identical output
    // at any thread count.
    if let Some(threads) = args.get_parsed::<Threads>("threads").map_err(err)? {
        pipeline = pipeline.estimation_threads(threads);
    }
    // --summary-cache persists the factorized path counts; repeated invocations on
    // the same dataset then skip summarization with bit-identical predictions.
    let store = open_summary_store(args)?;
    if let Some(store) = &store {
        pipeline = pipeline.summary_store(Arc::clone(store));
    }
    // --trace-out captures the span hierarchy (pipeline → estimate → summarize →
    // spmm) as Chrome trace-event JSON. Tracing only observes wall-clock time:
    // predictions are byte-identical with and without it.
    let trace_out = args.get("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        pipeline = pipeline.trace(true);
    }
    let mut report = pipeline.run().map_err(err)?;
    if let Some(out) = args.get("out") {
        matrix_io::write_predictions(Path::new(out), &report.outcome.predictions).map_err(err)?;
    }
    let mut rendered = format!(
        "classified {} nodes with {} + {} (estimation {:?}, propagation {:?})",
        graph.num_nodes(),
        report.estimator,
        report.propagator,
        report.estimation_time,
        report.propagation_time
    );
    if let Some(store) = &store {
        rendered.push_str(&format!(
            "\nsummary computations: {} (store hits: {}, estimate hits: {}, cache dir {})",
            report.summary_computations,
            report.summary_store_hits,
            report.optimize_store_hits,
            store.dir().display()
        ));
    }
    if let Some(path) = &trace_out {
        let trace = report.trace.as_ref().expect("tracing was enabled");
        std::fs::write(path, trace.chrome_json()).map_err(err)?;
        rendered.push_str(&format!(
            "\nwrote Chrome trace ({} spans) to {}",
            trace.len(),
            path.display()
        ));
    }
    let mut truth_labeling = None;
    if let Some(truth_path) = args.get("truth") {
        let truth_seeds =
            fg_datasets::read_labels(Path::new(truth_path), graph.num_nodes(), k).map_err(err)?;
        let labels: Option<Vec<usize>> = truth_seeds.as_slice().iter().copied().collect();
        match labels {
            Some(full) => {
                let truth = Labeling::new(full, k).map_err(err)?;
                let accuracy = report.evaluate(&truth, &seeds);
                let micro = report.micro_accuracy.unwrap_or(accuracy);
                rendered.push_str(&format!(
                    "\nmacro accuracy on unlabeled nodes: {accuracy:.4}\
                     \nmicro accuracy on unlabeled nodes: {micro:.4}"
                ));
                truth_labeling = Some(truth);
            }
            None => {
                rendered.push_str("\n(truth file does not label every node; skipping accuracy)")
            }
        }
    }
    // --abstain surfaces the PR 4 abstain-aware metrics: the abstention rate is
    // always computable, the abstaining macro accuracy needs ground truth.
    if args.has_flag("abstain") {
        let rate = report.evaluate_abstain(&seeds, truth_labeling.as_ref());
        rendered.push_str(&format!("\nabstention rate on unlabeled nodes: {rate:.4}"));
        if let Some(acc) = report.abstaining_macro_accuracy {
            rendered.push_str(&format!("\nabstaining macro accuracy: {acc:.4}"));
        }
    }
    if args.has_flag("json") {
        rendered.push('\n');
        rendered.push_str(&report.to_json());
    }
    Ok(rendered)
}

/// `fg cache`: inspect (`ls`) or empty (`clear`) a persistent summary-cache
/// directory (`--dir DIR`, default `target/experiments/summaries`).
pub fn cmd_cache(args: &ArgMap) -> CommandResult {
    let action = args
        .positional()
        .first()
        .map(|s| s.as_str())
        .ok_or("usage: fg cache <ls|clear> [--dir DIR]")?;
    let dir = args
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(SummaryStore::default_dir);
    let store = SummaryStore::open(&dir).map_err(err)?;
    match action {
        "ls" => {
            let entries = store.entries().map_err(err)?;
            if args.has_flag("json") {
                return Ok(cache_entries_json(&store, entries));
            }
            if entries.is_empty() {
                return Ok(format!("summary cache {} is empty", dir.display()));
            }
            let mut out = vec![format!(
                "summary cache {} ({} file{}):",
                dir.display(),
                entries.len(),
                if entries.len() == 1 { "" } else { "s" }
            )];
            for entry in entries {
                if let Some(meta) = entry.meta {
                    out.push(format!(
                        "  {}  k={} lmax={} mode={} graph={}.. seeds={}.. ({} bytes)",
                        entry.file,
                        meta.k,
                        meta.max_length,
                        if meta.non_backtracking { "nb" } else { "all" },
                        &meta.graph_fp.to_hex()[..12],
                        &meta.seed_fp.to_hex()[..12],
                        entry.bytes
                    ));
                } else if let Some(meta) = entry.h_meta {
                    out.push(format!(
                        "  {}  H estimate k={} estimator={} graph={}.. seeds={}.. ({} bytes)",
                        entry.file,
                        meta.k,
                        meta.estimator,
                        &meta.graph_fp.to_hex()[..12],
                        &meta.seed_fp.to_hex()[..12],
                        entry.bytes
                    ));
                } else if let Some(meta) = entry.graph_meta {
                    out.push(format!(
                        "  {}  constructed graph nodes={} edges={} builder={} features={}.. ({} bytes)",
                        entry.file,
                        meta.nodes,
                        meta.edges,
                        meta.builder,
                        &meta.features_fp.to_hex()[..12],
                        entry.bytes
                    ));
                } else if let Some(meta) = entry.factor_meta {
                    out.push(format!(
                        "  {}  low-rank factor rank={} nodes={} graph={}.. ({} bytes)",
                        entry.file,
                        meta.rank,
                        meta.nodes,
                        &meta.graph_fp.to_hex()[..12],
                        entry.bytes
                    ));
                } else {
                    out.push(format!(
                        "  {}  CORRUPT or unreadable ({} bytes)",
                        entry.file, entry.bytes
                    ));
                }
            }
            Ok(out.join("\n"))
        }
        "clear" => {
            let removed = store.clear().map_err(err)?;
            Ok(format!(
                "removed {removed} summary file{} from {}",
                if removed == 1 { "" } else { "s" },
                dir.display()
            ))
        }
        "gc" => {
            let max_bytes = match args.get("max-bytes") {
                Some(raw) => Some(parse_bytes(raw)?),
                None => None,
            };
            let max_age = match args.get("max-age") {
                Some(raw) => Some(parse_age(raw)?),
                None => None,
            };
            if max_bytes.is_none() && max_age.is_none() {
                return Err(
                    "fg cache gc needs at least one bound: --max-bytes N[K|M|G] and/or \
                     --max-age SECS[m|h|d]"
                        .into(),
                );
            }
            let outcome = store.gc(max_bytes, max_age).map_err(err)?;
            Ok(format!(
                "gc {}: removed {} file{} ({} bytes), kept {} ({} bytes)",
                dir.display(),
                outcome.removed,
                if outcome.removed == 1 { "" } else { "s" },
                outcome.bytes_removed,
                outcome.kept,
                outcome.bytes_kept
            ))
        }
        other => Err(format!(
            "unknown cache action '{other}' (expected ls, clear, or gc)"
        )),
    }
}

/// Render `fg cache ls --json`: one JSON object per store entry (kind,
/// fingerprints, bytes, mtime) so operators can script against the store.
fn cache_entries_json(store: &SummaryStore, entries: Vec<fg_core::StoreEntry>) -> String {
    use fg_serve::Json;
    let items: Vec<Json> = entries
        .into_iter()
        .map(|entry| {
            let mtime_unix = std::fs::metadata(store.dir().join(&entry.file))
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| d.as_secs());
            let mut fields = vec![
                ("file", Json::str(entry.file.clone())),
                ("bytes", Json::num(entry.bytes as usize)),
                (
                    "mtime_unix",
                    match mtime_unix {
                        Some(secs) => Json::num(secs as usize),
                        None => Json::Null,
                    },
                ),
            ];
            if let Some(meta) = entry.meta {
                fields.push(("kind", Json::str("summary")));
                fields.push(("k", Json::num(meta.k)));
                fields.push(("lmax", Json::num(meta.max_length)));
                fields.push((
                    "mode",
                    Json::str(if meta.non_backtracking { "nb" } else { "all" }),
                ));
                fields.push(("graph_fingerprint", Json::str(meta.graph_fp.to_hex())));
                fields.push(("seed_fingerprint", Json::str(meta.seed_fp.to_hex())));
            } else if let Some(meta) = entry.h_meta {
                fields.push(("kind", Json::str("h")));
                fields.push(("k", Json::num(meta.k)));
                fields.push(("estimator", Json::str(meta.estimator)));
                fields.push(("graph_fingerprint", Json::str(meta.graph_fp.to_hex())));
                fields.push(("seed_fingerprint", Json::str(meta.seed_fp.to_hex())));
            } else if let Some(meta) = entry.graph_meta {
                fields.push(("kind", Json::str("graph")));
                fields.push(("nodes", Json::num(meta.nodes)));
                fields.push(("edges", Json::num(meta.edges)));
                fields.push(("builder", Json::str(meta.builder)));
                fields.push(("features_fingerprint", Json::str(meta.features_fp.to_hex())));
            } else if let Some(meta) = entry.factor_meta {
                fields.push(("kind", Json::str("factor")));
                fields.push(("rank", Json::num(meta.rank)));
                fields.push(("nodes", Json::num(meta.nodes)));
                fields.push(("graph_fingerprint", Json::str(meta.graph_fp.to_hex())));
            } else {
                fields.push(("kind", Json::str("corrupt")));
            }
            Json::obj(fields)
        })
        .collect();
    Json::Arr(items).to_string()
}

/// Parse a byte count with an optional `K`/`M`/`G` suffix (powers of 1024).
fn parse_bytes(raw: &str) -> Result<u64, String> {
    let trimmed = raw.trim();
    let (digits, factor) = match trimmed.chars().last() {
        Some('k') | Some('K') => (&trimmed[..trimmed.len() - 1], 1024u64),
        Some('m') | Some('M') => (&trimmed[..trimmed.len() - 1], 1024 * 1024),
        Some('g') | Some('G') => (&trimmed[..trimmed.len() - 1], 1024 * 1024 * 1024),
        _ => (trimmed, 1),
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid byte count '{raw}' (expected N, NK, NM, or NG)"))?;
    value
        .checked_mul(factor)
        .ok_or_else(|| format!("byte count '{raw}' overflows"))
}

/// Parse an age with an optional `s`/`m`/`h`/`d` suffix (seconds by default).
fn parse_age(raw: &str) -> Result<std::time::Duration, String> {
    let trimmed = raw.trim();
    let (digits, factor) = match trimmed.chars().last() {
        Some('s') => (&trimmed[..trimmed.len() - 1], 1u64),
        Some('m') => (&trimmed[..trimmed.len() - 1], 60),
        Some('h') => (&trimmed[..trimmed.len() - 1], 3600),
        Some('d') => (&trimmed[..trimmed.len() - 1], 86_400),
        _ => (trimmed, 1),
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid age '{raw}' (expected SECS, Nm, Nh, or Nd)"))?;
    Ok(std::time::Duration::from_secs(value.saturating_mul(factor)))
}

/// `fg run`: execute every experiment declared in a manifest file (see
/// `crate::manifest` for the format), printing one report JSON per entry.
/// `--threads N|auto` distributes independent entries across workers through the
/// `fg_bench` work queue with one shared summary cache — output is byte-identical
/// to the serial order.
pub fn cmd_run(args: &ArgMap) -> CommandResult {
    let path = match args.positional().first() {
        Some(positional) => positional.clone(),
        None => args
            .require("manifest")
            .map_err(|_| "usage: fg run MANIFEST.toml [--threads N|auto]".to_string())?
            .to_string(),
    };
    let threads = args
        .get_parsed_or("threads", Threads::Serial)
        .map_err(err)?;
    crate::manifest::run_manifest_with(Path::new(&path), threads)
}

/// `fg serve`: host a long-lived serving session over stdin/stdout (default) or a
/// TCP listener (`--port P`, port 0 picks an ephemeral port). `--summary-cache
/// [DIR]` attaches the persistent store; `--threads` sets the kernel thread policy;
/// `--engine-states N` sizes each dataset's warm engine LRU. Transport limits are
/// `--max-connections`, `--max-request-bytes`, and `--max-requests` (per
/// connection; 0 = unlimited). `--metrics-port P` starts the Prometheus-style
/// scrape listener on a second socket; `--slow-request-ms N` logs requests at or
/// above the threshold to stderr. The TCP banner (`fg serve listening on ADDR`)
/// goes to stdout; in stdio mode the protocol owns stdout, so diagnostics (and
/// the `fg serve metrics on ADDR` banner) go to stderr.
pub fn cmd_serve(args: &ArgMap) -> CommandResult {
    let threads = args
        .get_parsed_or("threads", Threads::Serial)
        .map_err(err)?;
    let store = open_summary_store(args)?;
    let mut session = fg_serve::Session::new(threads, store);
    if let Some(capacity) = args.get_parsed::<usize>("engine-states").map_err(err)? {
        session = session.with_engine_states(capacity);
    }
    // --slow-request-ms logs one stderr line per request at or above the
    // threshold (0 logs every request — the CI smoke mode).
    if let Some(millis) = args.get_parsed::<u64>("slow-request-ms").map_err(err)? {
        session = session.with_slow_request_millis(millis);
    }
    let session = std::sync::Arc::new(session);
    let defaults = fg_serve::ServeLimits::default();
    let limits = fg_serve::ServeLimits {
        max_connections: args
            .get_parsed_or("max-connections", defaults.max_connections)
            .map_err(err)?,
        max_line_bytes: args
            .get_parsed_or("max-request-bytes", defaults.max_line_bytes)
            .map_err(err)?,
        max_requests_per_connection: args
            .get_parsed_or("max-requests", defaults.max_requests_per_connection)
            .map_err(err)?,
    };
    // --metrics-port starts the Prometheus-style scrape listener on a second
    // socket. It shares the session's registry but never touches session state,
    // so the protocol port stays byte-deterministic while being scraped.
    if let Some(metrics_port) = args.get_parsed::<u16>("metrics-port").map_err(err)? {
        let host = args.get("host").unwrap_or("127.0.0.1");
        let addr = fg_serve::MetricsServer::spawn(session.metrics(), (host, metrics_port), limits)
            .map_err(|e| format!("cannot bind metrics listener {host}:{metrics_port}: {e}"))?;
        eprintln!("fg serve metrics on {addr}");
    }
    match args.get_parsed::<u16>("port").map_err(err)? {
        Some(port) => {
            let host = args.get("host").unwrap_or("127.0.0.1");
            let server = fg_serve::TcpServer::bind_with(session, (host, port), limits)
                .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?;
            let addr = server.local_addr().map_err(err)?;
            println!("fg serve listening on {addr}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            server.run().map_err(err)?;
            Ok(String::new())
        }
        None => {
            eprintln!("fg serve: reading JSON-lines requests from stdin");
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            fg_serve::serve_lines_with(&session, stdin.lock(), stdout.lock(), &limits)
                .map_err(err)?;
            Ok("fg serve: session closed".to_string())
        }
    }
}

/// `fg client`: one-shot JSON-lines request sender for a running `fg serve` TCP
/// session. Requests come from positional arguments (one JSON object each) or, when
/// none are given, stdin. Responses are printed one per line;
/// `--predictions-out FILE` additionally writes the last response that carries
/// predictions in the same `node<TAB>class` format as `fg classify --out`.
pub fn cmd_client(args: &ArgMap) -> CommandResult {
    let port: u16 = args.require_parsed("port").map_err(err)?;
    let host = args.get("host").unwrap_or("127.0.0.1");
    let requests: Vec<String> = if args.positional().is_empty() {
        use std::io::Read as _;
        let mut buffer = String::new();
        std::io::stdin().read_to_string(&mut buffer).map_err(err)?;
        buffer
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect()
    } else {
        args.positional().to_vec()
    };
    if requests.is_empty() {
        return Err("no requests: pass JSON objects as arguments or on stdin".into());
    }
    let responses = fg_serve::send_requests((host, port), &requests)
        .map_err(|e| format!("cannot reach fg serve at {host}:{port}: {e}"))?;
    if let Some(out) = args.get("predictions-out") {
        let rendered = responses
            .iter()
            .rev()
            .find_map(|r| fg_serve::predictions_to_file_format(r))
            .ok_or("no response carried predictions; nothing to write")?;
        std::fs::write(Path::new(out), rendered).map_err(err)?;
    }
    Ok(responses.join("\n"))
}

/// Top-level usage string.
pub fn usage() -> String {
    [
        "fg — factorized graph representations for SSL from sparse data",
        "",
        "USAGE: fg <command> [options]",
        "",
        "COMMANDS:",
        "  generate   --nodes N [--degree D] [--classes K] [--skew H] [--alpha a,b,..]",
        "             [--uniform-degrees] [--seed S] --out-edges FILE --out-labels FILE",
        "  dataset    [NAME | --name NAME]  (Cora|Citeseer|Hep-Th|MovieLens|Enron|",
        "             Prop-37|Pokec-Gender|Flickr)",
        "             [--scale X] [--seed S] --out-edges FILE --out-labels FILE",
        "  construct  [--features FILE | --blobs N [--classes K] [--dims D]",
        "             [--spread S] [--seed S]] [--builder knn|sparsereg |",
        "             'Knn(k=10,metric=cosine,weighting=heat,sym=union)']",
        "             [--threads N|auto] [--summary-cache [DIR]] --out-edges FILE",
        "             [--out-labels FILE] [--out-features FILE]",
        "             build a graph from a dense feature matrix (file rows:",
        "             f_1,..,f_d,label with '?' = unlabeled) or synthesized Gaussian",
        "             blobs; output is bit-identical at any thread count;",
        "             --summary-cache reuses constructed graphs keyed by the",
        "             feature-matrix fingerprint + builder spec",
        "  estimate   --edges FILE --nodes N --classes K --labels FILE",
        "             [--method dcer|dce|mce|lce|holdout | 'DCEr(r=10,l=5,lambda=10)']",
        "             [--lmax L] [--lambda X] [--restarts R] [--splits B]",
        "             [--variant 1|2|3] [--mode exact|lowrank] [--rank R]",
        "             [--threads N|auto] [--summary-cache [DIR]]",
        "             [--out H_FILE] [--list-methods]",
        "             (--mode lowrank, or a bare --rank R, counts paths through a",
        "              rank-R spectral factor: edge-count-independent per length,",
        "              persisted as .fgv entries by --summary-cache)",
        "  propagate  --edges FILE --nodes N --classes K --labels FILE",
        "             [--method linbp|bp|harmonic|rw] [--compat H_FILE]",
        "             [--iterations I] [--tolerance T] [--damping A] [--threads N|auto]",
        "             [--out PREDICTIONS]",
        "             (--compat is required for linbp and bp, ignored by harmonic and rw)",
        "  classify   --edges FILE --nodes N --classes K --labels FILE",
        "             [--method ...] [--propagator linbp|bp|harmonic|rw] [--threads N|auto]",
        "             [--summary-cache [DIR]] [--truth FULL_LABELS] [--out PREDICTIONS]",
        "             [--json] [--trace-out TRACE.json]",
        "             (--threads parallelizes estimation and propagation alike;",
        "              output is bit-identical at any thread count; --trace-out",
        "              writes the nested span capture — pipeline, estimate,",
        "              summarize, spmm, per-worker chunks — as Chrome trace-event",
        "              JSON for chrome://tracing or Perfetto, and adds a span_tree",
        "              to --json; predictions are byte-identical with it on or off)",
        "  run        MANIFEST.toml [--threads N|auto]   execute a config-file",
        "             experiment manifest (datasets, estimators, propagators, threads,",
        "             cache dir; one report JSON per [[run]] entry; --threads runs",
        "             independent entries in parallel, byte-identical to serial)",
        "  serve      [--port P [--host H]] [--summary-cache [DIR]] [--threads N|auto]",
        "             [--engine-states N] [--max-connections N] [--max-request-bytes N]",
        "             [--max-requests N] [--metrics-port P] [--slow-request-ms N]",
        "             long-lived serving session over stdin/stdout (default) or TCP;",
        "             JSON-lines commands: load, unload, seed, estimate, classify,",
        "             stats (each takes an optional \"dataset\" name; warm reads on a",
        "             dataset run concurrently, mutations are exclusive).",
        "             Seed mutations update the factorized summaries incrementally —",
        "             after warm-up, requests report zero full summarizations.",
        "             --metrics-port exposes Prometheus-format metrics (per-command",
        "             latency histograms, per-dataset cache/engine counters,",
        "             lock-wait histograms, connection gauge) on a second listener;",
        "             --slow-request-ms logs slow requests to stderr (0 = all).",
        "  client     --port P [--host H] [--predictions-out FILE] [REQUEST...]",
        "             one-shot sender for fg serve (requests as args or on stdin)",
        "  cache      ls|clear|gc [--dir DIR] [--json] [--max-bytes N[K|M|G]]",
        "             [--max-age AGE]",
        "             inspect, empty, or garbage-collect (LRU by mtime) a summary",
        "             cache (default dir: target/experiments/summaries);",
        "             ls --json emits one machine-readable object per entry",
        "             (kind, fingerprints, bytes, mtime)",
        "",
        "  --summary-cache persists factorized path counts, estimated H matrices,",
        "  and constructed graphs keyed by content fingerprints: repeated",
        "  invocations on the same dataset skip summarization, optimization, and",
        "  graph construction entirely, with bit-identical results.",
        "  classify --abstain adds the abstention rate and abstaining macro accuracy",
        "  to the text and --json reports.",
    ]
    .join("\n")
}

/// Dispatch a subcommand by name.
pub fn run(command: &str, args: &ArgMap) -> CommandResult {
    match command {
        "generate" => cmd_generate(args),
        "dataset" => cmd_dataset(args),
        "construct" => cmd_construct(args),
        "estimate" => cmd_estimate(args),
        "propagate" => cmd_propagate(args),
        "classify" => cmd_classify(args),
        "run" => cmd_run(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "cache" => cmd_cache(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn args(tokens: &[&str]) -> ArgMap {
        ArgMap::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fg_cli_cmd_{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_then_classify_end_to_end() {
        let dir = temp_dir("end_to_end");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        let out = cmd_generate(&args(&[
            "--nodes",
            "400",
            "--degree",
            "12",
            "--classes",
            "3",
            "--skew",
            "8",
            "--seed",
            "1",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("400 nodes"));
        assert!(edges.exists() && labels.exists());

        // Build a sparse seed file by keeping every 10th label.
        let full = std::fs::read_to_string(&labels).unwrap();
        let sparse: String = full
            .lines()
            .filter(|l| !l.starts_with('#'))
            .enumerate()
            .filter(|(i, _)| i % 10 == 0)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let seed_path = dir.join("seeds.tsv");
        std::fs::write(&seed_path, sparse).unwrap();

        let predictions = dir.join("pred.tsv");
        let report = cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "400",
            "--classes",
            "3",
            "--labels",
            seed_path.to_str().unwrap(),
            "--truth",
            labels.to_str().unwrap(),
            "--method",
            "dcer",
            "--json",
            "--out",
            predictions.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("macro accuracy"));
        assert!(report.contains("DCEr(r=10,l=5,lambda=10)"));
        assert!(report.contains("\"propagator\":\"LinBP\""));
        assert!(report.contains("\"summarize_seconds\":"));
        assert!(report.contains("\"optimize_seconds\":"));
        assert!(predictions.exists());
        // Accuracy should be far above random on this strongly heterophilous graph.
        let accuracy: f64 = report
            .split("macro accuracy on unlabeled nodes: ")
            .nth(1)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(accuracy > 0.4, "accuracy {accuracy}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_and_propagate_commands() {
        let dir = temp_dir("estimate_propagate");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "10",
            "--classes",
            "3",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let h_path = dir.join("h.txt");
        let report = cmd_estimate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "mce",
            "--out",
            h_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("MCE"));
        assert!(h_path.exists());

        let pred_path = dir.join("pred.tsv");
        let report = cmd_propagate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--compat",
            h_path.to_str().unwrap(),
            "--out",
            pred_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("propagated labels"));
        assert!(report.contains("LinBP"));
        assert!(pred_path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_propagation_backend_runs_from_the_cli() {
        let dir = temp_dir("backends");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "200",
            "--degree",
            "8",
            "--classes",
            "2",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let h_path = dir.join("h.txt");
        cmd_estimate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "200",
            "--classes",
            "2",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "mce",
            "--out",
            h_path.to_str().unwrap(),
        ]))
        .unwrap();

        for (method, needs_compat, expect) in [
            ("linbp", true, "LinBP"),
            ("bp", true, "LoopyBP"),
            ("harmonic", false, "Harmonic"),
            ("rw", false, "RandomWalk"),
        ] {
            let mut argv = vec![
                "--edges",
                edges.to_str().unwrap(),
                "--nodes",
                "200",
                "--classes",
                "2",
                "--labels",
                labels.to_str().unwrap(),
                "--method",
                method,
            ];
            if needs_compat {
                argv.extend(["--compat", h_path.to_str().unwrap()]);
            }
            let report = cmd_propagate(&args(&argv)).unwrap();
            assert!(report.contains(expect), "{method}: {report}");

            // The same backend is reachable end-to-end through classify.
            let classify = cmd_classify(&args(&[
                "--edges",
                edges.to_str().unwrap(),
                "--nodes",
                "200",
                "--classes",
                "2",
                "--labels",
                labels.to_str().unwrap(),
                "--method",
                "mce",
                "--propagator",
                method,
            ]))
            .unwrap();
            assert!(classify.contains(expect), "{method}: {classify}");
        }

        // linbp and bp refuse to run without a compatibility matrix.
        let missing = cmd_propagate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "200",
            "--classes",
            "2",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "linbp",
        ]));
        assert!(missing.is_err());
        assert!(missing.unwrap_err().contains("--compat"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_option_does_not_change_predictions() {
        let dir = temp_dir("threads");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "8",
            "--classes",
            "3",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let mut predictions = Vec::new();
        for threads in ["1", "4", "auto"] {
            let out = dir.join(format!("pred_{threads}.tsv"));
            cmd_classify(&args(&[
                "--edges",
                edges.to_str().unwrap(),
                "--nodes",
                "300",
                "--classes",
                "3",
                "--labels",
                labels.to_str().unwrap(),
                "--method",
                "mce",
                "--threads",
                threads,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            predictions.push(std::fs::read_to_string(&out).unwrap());
        }
        assert_eq!(predictions[0], predictions[1]);
        assert_eq!(predictions[0], predictions[2]);
        // fg estimate honors --threads too, and writes the exact serial H file.
        let mut estimates = Vec::new();
        for threads in ["1", "4"] {
            let out = dir.join(format!("h_{threads}.txt"));
            cmd_estimate(&args(&[
                "--edges",
                edges.to_str().unwrap(),
                "--nodes",
                "300",
                "--classes",
                "3",
                "--labels",
                labels.to_str().unwrap(),
                "--method",
                "dcer",
                "--threads",
                threads,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            estimates.push(std::fs::read_to_string(&out).unwrap());
        }
        assert_eq!(estimates[0], estimates[1]);
        // Bogus thread specs are rejected with a helpful message.
        let bad = build_propagator(&args(&["--threads", "lots"]), "propagator")
            .map(|_| ())
            .unwrap_err();
        assert!(bad.contains("threads"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_cache_warm_path_is_computation_free_and_bit_identical() {
        let dir = temp_dir("summary_cache");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "8",
            "--classes",
            "3",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let cache_dir = dir.join("summaries");
        let base = [
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "dcer",
            "--summary-cache",
            cache_dir.to_str().unwrap(),
        ];

        // fg estimate: cold run computes once, warm run not at all; H files match.
        let h_cold = dir.join("h_cold.txt");
        let h_warm = dir.join("h_warm.txt");
        let mut argv = base.to_vec();
        argv.extend(["--out", h_cold.to_str().unwrap()]);
        let cold = cmd_estimate(&args(&argv)).unwrap();
        assert!(cold.contains("summary computations: 1"), "{cold}");
        let mut argv = base.to_vec();
        argv.extend(["--out", h_warm.to_str().unwrap()]);
        let warm = cmd_estimate(&args(&argv)).unwrap();
        assert!(warm.contains("summary computations: 0"), "{warm}");
        assert!(warm.contains("store hits: 1"), "{warm}");
        assert_eq!(
            std::fs::read(&h_cold).unwrap(),
            std::fs::read(&h_warm).unwrap()
        );

        // fg classify rides the same cache: zero computations, identical predictions
        // to a cache-less run.
        let pred_cached = dir.join("pred_cached.tsv");
        let mut argv = base.to_vec();
        argv.extend(["--out", pred_cached.to_str().unwrap()]);
        let classify = cmd_classify(&args(&argv)).unwrap();
        assert!(classify.contains("summary computations: 0"), "{classify}");
        let pred_plain = dir.join("pred_plain.tsv");
        let plain = cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "dcer",
            "--out",
            pred_plain.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!plain.contains("summary computations"));
        assert_eq!(
            std::fs::read(&pred_cached).unwrap(),
            std::fs::read(&pred_plain).unwrap()
        );

        // fg cache ls lists both entries (the path summary and the persisted H
        // estimate the cold run stored); clear removes them.
        let ls = cmd_cache(&args(&["ls", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(ls.contains("k=3 lmax=5 mode=nb"), "{ls}");
        assert!(ls.contains("H estimate k=3"), "{ls}");
        assert!(ls.contains("estimator=DCEr"), "{ls}");
        let cleared = cmd_cache(&args(&["clear", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(cleared.contains("removed 2"), "{cleared}");
        let empty = cmd_cache(&args(&["ls", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(empty.contains("empty"), "{empty}");
        // Bad action errors.
        assert!(cmd_cache(&args(&["frob"])).is_err());
        assert!(cmd_cache(&args(&[])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lowrank_estimate_persists_the_factor_and_skips_the_eigensolve() {
        let dir = temp_dir("lowrank_estimate");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "8",
            "--classes",
            "3",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let cache_dir = dir.join("summaries");
        let base = [
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "dce",
            "--rank",
            "8",
            "--summary-cache",
            cache_dir.to_str().unwrap(),
        ];

        // Cold run: one eigensolve, persisted as a .fgv entry.
        let h_cold = dir.join("h_cold.txt");
        let mut argv = base.to_vec();
        argv.extend(["--out", h_cold.to_str().unwrap()]);
        let cold = cmd_estimate(&args(&argv)).unwrap();
        assert!(
            cold.contains("DCE(l=5,lambda=10,mode=lowrank,rank=8)"),
            "{cold}"
        );
        assert!(
            cold.contains("low-rank eigensolves: 1 (factor store hits: 0)"),
            "{cold}"
        );

        // Warm run: the factor comes from disk — zero eigensolves — and the
        // estimate is bit-identical.
        let h_warm = dir.join("h_warm.txt");
        let mut argv = base.to_vec();
        argv.extend(["--out", h_warm.to_str().unwrap()]);
        let warm = cmd_estimate(&args(&argv)).unwrap();
        assert!(
            warm.contains("low-rank eigensolves: 0 (factor store hits: 1)"),
            "{warm}"
        );
        assert_eq!(
            std::fs::read(&h_cold).unwrap(),
            std::fs::read(&h_warm).unwrap()
        );

        // fg cache ls renders the .fgv entry; clear removes it with the rest.
        let ls = cmd_cache(&args(&["ls", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(ls.contains("low-rank factor rank=8 nodes=300"), "{ls}");
        let cleared = cmd_cache(&args(&["clear", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(cleared.contains("removed"), "{cleared}");

        // --mode exact overrides a configured rank; bad --mode values error.
        let exact = cmd_estimate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "dce",
            "--mode",
            "exact",
            "--rank",
            "8",
        ]))
        .unwrap();
        assert!(exact.contains("DCE(l=5,lambda=10)"), "{exact}");
        let bad = cmd_estimate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--mode",
            "spectral",
        ]))
        .unwrap_err();
        assert!(bad.contains("exact or lowrank"), "{bad}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_gc_enforces_bounds_from_the_cli() {
        let dir = temp_dir("cache_gc");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "200",
            "--degree",
            "8",
            "--classes",
            "3",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let cache_dir = dir.join("summaries");
        cmd_estimate(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "200",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "mce",
            "--summary-cache",
            cache_dir.to_str().unwrap(),
        ]))
        .unwrap();
        // A generous size bound keeps the file; --max-bytes 0 collects it.
        let kept = cmd_cache(&args(&[
            "gc",
            "--dir",
            cache_dir.to_str().unwrap(),
            "--max-bytes",
            "1G",
            "--max-age",
            "7d",
        ]))
        .unwrap();
        assert!(kept.contains("removed 0 files"), "{kept}");
        assert!(kept.contains("kept 1"), "{kept}");
        let collected = cmd_cache(&args(&[
            "gc",
            "--dir",
            cache_dir.to_str().unwrap(),
            "--max-bytes",
            "0",
        ]))
        .unwrap();
        assert!(collected.contains("removed 1 file"), "{collected}");
        let empty = cmd_cache(&args(&["ls", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(empty.contains("empty"), "{empty}");
        // Bounds are required and validated.
        assert!(
            cmd_cache(&args(&["gc", "--dir", cache_dir.to_str().unwrap()]))
                .unwrap_err()
                .contains("at least one bound")
        );
        assert!(cmd_cache(&args(&[
            "gc",
            "--dir",
            cache_dir.to_str().unwrap(),
            "--max-bytes",
            "lots"
        ]))
        .is_err());
        assert_eq!(parse_bytes("2K").unwrap(), 2048);
        assert_eq!(parse_bytes("3M").unwrap(), 3 * 1024 * 1024);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert_eq!(parse_age("90").unwrap().as_secs(), 90);
        assert_eq!(parse_age("5m").unwrap().as_secs(), 300);
        assert_eq!(parse_age("2h").unwrap().as_secs(), 7200);
        assert_eq!(parse_age("1d").unwrap().as_secs(), 86_400);
        assert!(parse_age("soon").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_abstain_flag_reports_abstain_metrics() {
        let dir = temp_dir("abstain");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "8",
            "--classes",
            "3",
            "--seed",
            "2",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let full = std::fs::read_to_string(&labels).unwrap();
        let sparse: String = full
            .lines()
            .filter(|l| !l.starts_with('#'))
            .enumerate()
            .filter(|(i, _)| i % 10 == 0)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let seed_path = dir.join("seeds.tsv");
        std::fs::write(&seed_path, sparse).unwrap();

        // With truth: both abstain metrics, in text and JSON.
        let report = cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            seed_path.to_str().unwrap(),
            "--truth",
            labels.to_str().unwrap(),
            "--method",
            "mce",
            "--abstain",
            "--json",
        ]))
        .unwrap();
        assert!(
            report.contains("abstention rate on unlabeled nodes:"),
            "{report}"
        );
        assert!(report.contains("abstaining macro accuracy:"), "{report}");
        assert!(report.contains("\"abstention_rate\":"), "{report}");
        assert!(
            report.contains("\"abstaining_macro_accuracy\":"),
            "{report}"
        );

        // Without truth: the rate still appears, the accuracy cannot.
        let no_truth = cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            seed_path.to_str().unwrap(),
            "--method",
            "mce",
            "--abstain",
            "--json",
        ]))
        .unwrap();
        assert!(no_truth.contains("abstention rate on unlabeled nodes:"));
        assert!(!no_truth.contains("abstaining macro accuracy:"));
        // Without the flag neither metric is reported.
        let plain = cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            seed_path.to_str().unwrap(),
            "--method",
            "mce",
            "--json",
        ]))
        .unwrap();
        assert!(!plain.contains("abstention"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_drives_a_served_session_and_matches_batch_classify() {
        let dir = temp_dir("serve_client");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "8",
            "--classes",
            "3",
            "--seed",
            "9",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        let full = std::fs::read_to_string(&labels).unwrap();
        let sparse: String = full
            .lines()
            .filter(|l| !l.starts_with('#'))
            .enumerate()
            .filter(|(i, _)| i % 10 == 0)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let seed_path = dir.join("seeds.tsv");
        std::fs::write(&seed_path, sparse).unwrap();

        // In-process TCP server on an ephemeral port (what `fg serve --port 0`
        // spawns); cmd_client is the exact production client path.
        let session = std::sync::Arc::new(fg_serve::Session::new(Threads::Serial, None));
        let addr = fg_serve::TcpServer::spawn(session, "127.0.0.1:0").unwrap();
        let port = addr.port().to_string();

        let pred_served = dir.join("pred_served.tsv");
        let load = format!(
            "{{\"cmd\":\"load\",\"edges\":\"{}\",\"labels\":\"{}\",\"nodes\":300,\"classes\":3}}",
            edges.display(),
            seed_path.display()
        );
        let output = cmd_client(&args(&[
            &load,
            "{\"cmd\":\"classify\",\"method\":\"mce\"}",
            "{\"cmd\":\"stats\"}",
            "--port",
            &port,
            "--predictions-out",
            pred_served.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(output.lines().count(), 3, "{output}");
        assert!(output.contains("\"summary_computations\":1"), "{output}");

        // The served predictions match the batch CLI byte for byte.
        let pred_batch = dir.join("pred_batch.tsv");
        cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            seed_path.to_str().unwrap(),
            "--method",
            "mce",
            "--out",
            pred_batch.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&pred_served).unwrap(),
            std::fs::read(&pred_batch).unwrap()
        );

        // Client-side validation errors.
        assert!(cmd_client(&args(&["--port", &port]))
            .unwrap_err()
            .contains("no requests"));
        assert!(cmd_client(&args(&["{\"cmd\":\"ping\"}", "--port", "1"]))
            .unwrap_err()
            .contains("cannot reach"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_methods_covers_both_registries() {
        let out = cmd_estimate(&args(&["--list-methods"])).unwrap();
        for name in ["mce", "lce", "dce", "dcer", "holdout"] {
            assert!(out.contains(name), "estimator '{name}' missing:\n{out}");
        }
        for name in ["linbp", "bp", "harmonic", "rw"] {
            assert!(out.contains(name), "propagator '{name}' missing:\n{out}");
        }
        // Aliases and parameterized defaults are shown.
        assert!(out.contains("dce-r"), "{out}");
        assert!(out.contains("loopy-bp"), "{out}");
        assert!(out.contains("DCEr(r=10,l=5,lambda=10)"), "{out}");
    }

    #[test]
    fn manifest_run_reproduces_a_classify_invocation() {
        let dir = temp_dir("manifest_equiv");
        let edges = dir.join("edges.tsv");
        let labels = dir.join("labels.tsv");
        cmd_generate(&args(&[
            "--nodes",
            "300",
            "--degree",
            "8",
            "--classes",
            "3",
            "--seed",
            "4",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        // Direct CLI invocation.
        let pred_cli = dir.join("pred_cli.tsv");
        cmd_classify(&args(&[
            "--edges",
            edges.to_str().unwrap(),
            "--nodes",
            "300",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "mce",
            "--out",
            pred_cli.to_str().unwrap(),
        ]))
        .unwrap();
        // Equivalent manifest entry (file mode, same estimator and backend).
        let manifest = dir.join("exp.toml");
        std::fs::write(
            &manifest,
            "[[run]]\n\
             name = \"same-as-cli\"\n\
             edges = \"edges.tsv\"\n\
             labels = \"labels.tsv\"\n\
             nodes = 300\n\
             classes = 3\n\
             estimator = \"mce\"\n\
             propagator = \"linbp\"\n\
             out = \"pred_manifest.tsv\"\n",
        )
        .unwrap();
        let report = cmd_run(&args(&[manifest.to_str().unwrap()])).unwrap();
        assert!(report.contains("\"name\":\"same-as-cli\""), "{report}");
        assert!(report.contains("\"estimator\":\"MCE\""), "{report}");
        // The manifest run reproduces the CLI predictions byte for byte.
        assert_eq!(
            std::fs::read(&pred_cli).unwrap(),
            std::fs::read(dir.join("pred_manifest.tsv")).unwrap()
        );
        // Missing manifest path errors helpfully.
        assert!(cmd_run(&args(&[])).unwrap_err().contains("usage"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn construct_command_builds_graphs_from_features() {
        let dir = temp_dir("construct");
        let features = dir.join("blobs.csv");
        let labels = dir.join("blob_labels.tsv");
        let edges_serial = dir.join("edges_serial.tsv");
        // Blob synthesis persists its features and labels, so downstream commands
        // (and CI) can reuse them without any other tool.
        let report = cmd_construct(&args(&[
            "--blobs",
            "90",
            "--classes",
            "3",
            "--dims",
            "4",
            "--spread",
            "0.8",
            "--seed",
            "7",
            "--builder",
            "knn",
            "--out-edges",
            edges_serial.to_str().unwrap(),
            "--out-features",
            features.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("Knn(k=10"), "{report}");
        assert!(report.contains("90 nodes"), "{report}");
        assert!(features.exists() && labels.exists() && edges_serial.exists());

        // Re-constructing from the persisted feature file, in parallel, with a
        // parameterized spec produces byte-identical edge lists to serial.
        for (threads, out) in [("4", "edges_par.tsv"), ("auto", "edges_auto.tsv")] {
            let out = dir.join(out);
            cmd_construct(&args(&[
                "--features",
                features.to_str().unwrap(),
                "--threads",
                threads,
                "--out-edges",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            assert_eq!(
                std::fs::read(&edges_serial).unwrap(),
                std::fs::read(&out).unwrap(),
                "--threads {threads} diverged"
            );
        }

        // The sparse-regularized builder runs end to end too.
        let sparse_out = dir.join("edges_sparse.tsv");
        let report = cmd_construct(&args(&[
            "--features",
            features.to_str().unwrap(),
            "--builder",
            "SparseReg(k=6,alpha=0.05)",
            "--out-edges",
            sparse_out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("SparseReg(k=6,alpha=0.05"), "{report}");
        assert!(sparse_out.exists());

        // The constructed graph classifies through the normal pipeline.
        let classify = cmd_classify(&args(&[
            "--edges",
            edges_serial.to_str().unwrap(),
            "--nodes",
            "90",
            "--classes",
            "3",
            "--labels",
            labels.to_str().unwrap(),
            "--method",
            "mce",
        ]))
        .unwrap();
        assert!(classify.contains("classified 90 nodes"), "{classify}");

        // Error paths: no input, unknown builder, malformed spec.
        assert!(cmd_construct(&args(&["--out-edges", "x"]))
            .unwrap_err()
            .contains("--features FILE or --blobs N"));
        assert!(cmd_construct(&args(&[
            "--blobs",
            "20",
            "--builder",
            "nope",
            "--out-edges",
            "x"
        ]))
        .unwrap_err()
        .contains("unknown construction method"));
        assert!(cmd_construct(&args(&[
            "--blobs",
            "20",
            "--builder",
            "knn(k=10",
            "--out-edges",
            "x"
        ]))
        .unwrap_err()
        .contains("unterminated"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn construct_command_caches_graphs_by_feature_fingerprint() {
        let dir = temp_dir("construct_cache");
        let features = dir.join("blobs.csv");
        let cache_dir = dir.join("summaries");
        let edges_cold = dir.join("edges_cold.tsv");
        let edges_warm = dir.join("edges_warm.tsv");
        let base = |out: &Path| {
            vec![
                "--features".to_string(),
                features.to_str().unwrap().to_string(),
                "--summary-cache".to_string(),
                cache_dir.to_str().unwrap().to_string(),
                "--out-edges".to_string(),
                out.to_str().unwrap().to_string(),
            ]
        };
        cmd_construct(&args(&[
            "--blobs",
            "60",
            "--classes",
            "3",
            "--dims",
            "4",
            "--seed",
            "3",
            "--out-features",
            features.to_str().unwrap(),
            "--out-edges",
            dir.join("seed_edges.tsv").to_str().unwrap(),
        ]))
        .unwrap();

        // Cold: builds and persists the graph, content-addressed by the feature
        // matrix fingerprint + builder spec.
        let cold_args = base(&edges_cold);
        let argv: Vec<&str> = cold_args.iter().map(String::as_str).collect();
        let cold = cmd_construct(&args(&argv)).unwrap();
        assert!(!cold.contains("[cached]"), "{cold}");
        let ls = cmd_cache(&args(&["ls", "--dir", cache_dir.to_str().unwrap()])).unwrap();
        assert!(ls.contains("constructed graph nodes=60"), "{ls}");
        assert!(ls.contains("builder=Knn(k=10"), "{ls}");

        // Warm: the O(n²·d) build is skipped, output is byte-identical.
        let warm_args = base(&edges_warm);
        let argv: Vec<&str> = warm_args.iter().map(String::as_str).collect();
        let warm = cmd_construct(&args(&argv)).unwrap();
        assert!(warm.contains("[cached]"), "{warm}");
        assert_eq!(
            std::fs::read(&edges_cold).unwrap(),
            std::fs::read(&edges_warm).unwrap()
        );

        // A different builder spec is a different cache key.
        let other = dir.join("edges_other.tsv");
        let mut argv = base(&other);
        argv.extend(["--builder".to_string(), "Knn(k=5)".to_string()]);
        let argv: Vec<&str> = argv.iter().map(String::as_str).collect();
        let miss = cmd_construct(&args(&argv)).unwrap();
        assert!(!miss.contains("[cached]"), "{miss}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_command_writes_substitute() {
        let dir = temp_dir("dataset");
        let edges = dir.join("cora_edges.tsv");
        let labels = dir.join("cora_labels.tsv");
        let report = cmd_dataset(&args(&[
            "--name",
            "Cora",
            "--scale",
            "0.2",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("Cora"));
        assert!(edges.exists() && labels.exists());

        // The dataset name also works positionally.
        let report = cmd_dataset(&args(&[
            "Citeseer",
            "--scale",
            "0.2",
            "--out-edges",
            edges.to_str().unwrap(),
            "--out-labels",
            labels.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("Citeseer"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_paths() {
        // Unknown command.
        assert!(run("bogus", &args(&[])).is_err());
        // Help works and documents the propagation backends.
        let help = run("help", &args(&[])).unwrap();
        assert!(help.contains("USAGE"));
        assert!(help.contains("linbp|bp|harmonic|rw"));
        // Unknown estimation / propagation methods.
        assert!(build_estimator(&args(&["--method", "nope"])).is_err());
        assert!(build_propagator(&args(&["--propagator", "nope"]), "propagator").is_err());
        // Missing required options.
        assert!(cmd_generate(&args(&["--nodes", "10"])).is_err());
        assert!(cmd_dataset(&args(&[
            "--name",
            "NotADataset",
            "--out-edges",
            "x",
            "--out-labels",
            "y"
        ]))
        .is_err());
        // Known estimator methods build, with dynamic labels.
        for method in ["mce", "lce", "dce", "dcer", "holdout"] {
            assert!(build_estimator(&args(&["--method", method])).is_ok());
        }
        let (_, label) = build_estimator(&args(&["--method", "dcer", "--restarts", "7"])).unwrap();
        assert_eq!(label, "DCEr(r=7,l=5,lambda=10)");
        // Fully parameterized specs parse; spec keys beat the flag defaults.
        let (_, label) = build_estimator(&args(&[
            "--method",
            "DCEr(r=3,l=2,lambda=0.5)",
            "--restarts",
            "7",
        ]))
        .unwrap();
        assert_eq!(label, "DCEr(r=3,l=2,lambda=0.5)");
        assert!(build_estimator(&args(&["--method", "dcer(r=oops)"])).is_err());
        assert!(build_estimator(&args(&["--variant", "9"])).is_err());
        let (_, label) = build_estimator(&args(&["--method", "mce", "--variant", "2"])).unwrap();
        assert_eq!(label, "MCE(variant=2)");
        // Known propagator methods build through the registry.
        for method in ["linbp", "bp", "harmonic", "rw"] {
            assert!(build_propagator(&args(&["--method", method]), "method").is_ok());
        }
    }
}
