//! `fg` — command-line interface for the factorized-graphs workspace.
//!
//! Provides graph generation, dataset-substitute export, compatibility estimation,
//! label propagation, and end-to-end classification over plain-text edge-list and
//! label files. Run `fg help` for usage.

mod args;
mod commands;
mod manifest;
mod matrix_io;

use args::ArgMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("{}", commands::usage());
        return ExitCode::from(2);
    };
    let parsed = match ArgMap::parse(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match commands::run(command, &parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
