//! Property-style tests for the estimation core: parameterization invariants, gradient
//! correctness against finite differences, and the factorized path summation against
//! the explicit (unfactorized) evaluation order.
//!
//! The build environment has no access to crates.io, so instead of `proptest` these
//! run each property over a deterministic sweep of seeded random inputs.

use fg_core::{
    distance_weights, explicit_nb_power, free_to_matrix, matrix_to_free, num_free_parameters,
    statistics_from_explicit, summarize, uniform_start, DceEnergy, EnergyFunction, MceEnergy,
    NormalizationVariant, SummaryConfig,
};
use fg_graph::{Graph, Labeling, SeedLabels};
use fg_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random free-parameter vector of a symmetric doubly-stochastic k x k matrix,
/// staying within a range where reconstructed entries remain reasonable.
fn free_params(k: usize, rng: &mut StdRng) -> Vec<f64> {
    let k_star = num_free_parameters(k);
    (0..k_star)
        .map(|_| 0.01 + rng.gen::<f64>() * 0.59)
        .collect()
}

/// A small random graph given as an edge list on `n` nodes.
fn random_graph(n: usize, rng: &mut StdRng) -> Graph {
    let num_edges = n + rng.gen_index(2 * n);
    let edges: Vec<(usize, usize)> = (0..num_edges)
        .map(|_| (rng.gen_index(n), rng.gen_index(n)))
        .filter(|(u, v)| u != v)
        .collect();
    Graph::from_edges(n, &edges).expect("valid edges")
}

fn numeric_gradient<E: EnergyFunction>(energy: &E, free: &[f64]) -> Vec<f64> {
    let eps = 1e-6;
    (0..free.len())
        .map(|p| {
            let mut plus = free.to_vec();
            plus[p] += eps;
            let mut minus = free.to_vec();
            minus[p] -= eps;
            (energy.value(&plus).unwrap() - energy.value(&minus).unwrap()) / (2.0 * eps)
        })
        .collect()
}

#[test]
fn reconstruction_is_always_symmetric_doubly_stochastic() {
    for seed in 0..48u64 {
        let k = 2 + (seed as usize % 5);
        // Arbitrary-ish free parameters, deterministic per seed.
        let k_star = num_free_parameters(k);
        let free: Vec<f64> = (0..k_star)
            .map(|i| 0.05 + 0.5 * (((seed as usize + i * 37) % 97) as f64 / 97.0))
            .collect();
        let h = free_to_matrix(&free, k).unwrap();
        assert!(h.is_symmetric(1e-10), "seed {seed}");
        for s in h.row_sums() {
            assert!((s - 1.0).abs() < 1e-9, "seed {seed}");
        }
        for s in h.col_sums() {
            assert!((s - 1.0).abs() < 1e-9, "seed {seed}");
        }
        // Round trip.
        let back = matrix_to_free(&h).unwrap();
        for (a, b) in free.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-10, "seed {seed}");
        }
    }
}

#[test]
fn mce_gradient_is_exact() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let free = free_params(3, &mut rng);
        let target = free_params(3, &mut rng);
        let target_matrix = free_to_matrix(&target, 3).unwrap();
        let energy = MceEnergy::new(target_matrix).unwrap();
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            assert!(
                (a - n).abs() < 1e-4,
                "seed {seed}: analytic {a} vs numeric {n}"
            );
        }
    }
}

#[test]
fn dce_gradient_is_exact() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let free = free_params(3, &mut rng);
        let stats_seed = free_params(3, &mut rng);
        let lambda = 0.5 + rng.gen::<f64>() * 19.5;
        // Build perturbed statistics from an arbitrary valid matrix.
        let base = free_to_matrix(&stats_seed, 3).unwrap();
        let stats = vec![
            base.clone(),
            base.pow(2).unwrap().add_scalar(0.01),
            base.pow(3).unwrap().add_scalar(-0.01),
        ];
        let energy = DceEnergy::new(stats, distance_weights(lambda, 3)).unwrap();
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            assert!(
                (a - n).abs() < 1e-3,
                "seed {seed}: analytic {a} vs numeric {n}"
            );
        }
    }
}

#[test]
fn dce_energy_is_nonnegative_and_zero_only_at_exact_fit() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let free = free_params(3, &mut rng);
        let h = free_to_matrix(&free, 3).unwrap();
        let stats = vec![h.clone(), h.pow(2).unwrap()];
        let energy = DceEnergy::with_lambda(stats, 10.0).unwrap();
        assert!(energy.value(&free).unwrap() < 1e-10, "seed {seed}");
        assert!(
            energy.value(&uniform_start(3)).unwrap() >= 0.0,
            "seed {seed}"
        );
    }
}

#[test]
fn factorized_summary_equals_explicit_on_random_graphs() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_graph(12, &mut rng);
        let label_seed = rng.gen::<u64>() % 1000;
        // Random labels over 3 classes, roughly half of the nodes labeled.
        let n = graph.num_nodes();
        let labels: Vec<usize> = (0..n).map(|i| (label_seed as usize + i * 7) % 3).collect();
        let labeling = Labeling::new(labels, 3).unwrap();
        let observed: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if (label_seed as usize + i).is_multiple_of(2) {
                    Some(labeling.class_of(i))
                } else {
                    None
                }
            })
            .collect();
        let seeds = SeedLabels::new(observed, 3).unwrap();
        if seeds.num_labeled() == 0 {
            continue;
        }
        let config = SummaryConfig {
            max_length: 4,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        let summary = summarize(&graph, &seeds, &config).unwrap();
        for length in 1..=4usize {
            let explicit = explicit_nb_power(&graph, length).unwrap();
            let expected = statistics_from_explicit(&explicit, &seeds, config.variant).unwrap();
            assert!(
                summary
                    .statistic(length)
                    .unwrap()
                    .approx_eq(&expected, 1e-7),
                "seed {seed}: mismatch at length {length}"
            );
        }
    }
}

#[test]
fn statistics_matrices_are_row_stochastic_or_zero() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = random_graph(15, &mut rng);
        let label_seed = rng.gen::<u64>() % 100;
        let n = graph.num_nodes();
        let labels: Vec<usize> = (0..n).map(|i| ((label_seed as usize) + i) % 2).collect();
        let labeling = Labeling::new(labels, 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let summary = summarize(&graph, &seeds, &SummaryConfig::with_max_length(3)).unwrap();
        for l in 1..=3usize {
            let stat = summary.statistic(l).unwrap();
            for s in stat.row_sums() {
                assert!(
                    s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9,
                    "seed {seed} length {l}"
                );
            }
        }
    }
}

#[test]
fn doubly_stochastic_powers_commute_with_parameterization() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let free = free_params(4, &mut rng);
        // (H(h))^2 is symmetric doubly stochastic; extracting and reconstructing its
        // free parameters reproduces it exactly.
        let h = free_to_matrix(&free, 4).unwrap();
        let h2 = h.pow(2).unwrap();
        let back = free_to_matrix(&matrix_to_free(&h2).unwrap(), 4).unwrap();
        assert!(back.approx_eq(&h2, 1e-9), "seed {seed}");
    }
}

#[test]
fn distance_weights_are_positive_and_geometric() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..48 {
        let lambda = 0.1 + rng.gen::<f64>() * 49.9;
        let len = 1 + rng.gen_index(7);
        let w = distance_weights(lambda, len);
        assert_eq!(w.len(), len);
        assert!(w.iter().all(|&x| x > 0.0), "lambda {lambda} len {len}");
        for i in 1..len {
            assert!(
                (w[i] / w[i - 1] - lambda).abs() < 1e-9,
                "lambda {lambda} len {len}"
            );
        }
    }
}

#[test]
fn dense_matrix_power_is_doubly_stochastic_closed() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let free = free_params(3, &mut rng);
        let p = 1 + rng.gen_index(5);
        let h = free_to_matrix(&free, 3).unwrap();
        let hp = h.pow(p).unwrap();
        assert!(hp.is_symmetric(1e-8), "seed {seed} p {p}");
        for s in hp.row_sums() {
            assert!((s - 1.0).abs() < 1e-7, "seed {seed} p {p}");
        }
    }
}

#[test]
fn dense_matrix_add_scalar_helper_exists_for_tests() {
    // Guard for the helper used above: adding a scalar shifts all entries.
    let m = DenseMatrix::filled(2, 2, 0.5).add_scalar(0.25);
    assert!(m.data().iter().all(|&v| (v - 0.75).abs() < 1e-12));
}
