//! Property-based tests for the estimation core: parameterization invariants, gradient
//! correctness against finite differences, and the factorized path summation against
//! the explicit (unfactorized) evaluation order.

use fg_core::{
    distance_weights, explicit_nb_power, free_to_matrix, matrix_to_free, num_free_parameters,
    statistics_from_explicit, summarize, uniform_start, DceEnergy, EnergyFunction, MceEnergy,
    NormalizationVariant, SummaryConfig,
};
use fg_graph::{Graph, Labeling, SeedLabels};
use fg_sparse::DenseMatrix;
use proptest::prelude::*;

/// A strategy for free-parameter vectors of a symmetric doubly-stochastic k x k matrix,
/// staying within a range where reconstructed entries remain reasonable.
fn free_params(k: usize) -> impl Strategy<Value = Vec<f64>> {
    let k_star = num_free_parameters(k);
    proptest::collection::vec(0.01f64..0.6, k_star)
}

/// A strategy for small random graphs given as edge lists on `n` nodes.
fn random_graph(n: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), n..(3 * n)).prop_map(move |edges| {
        let filtered: Vec<(usize, usize)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        Graph::from_edges(n, &filtered).expect("valid edges")
    })
}

fn numeric_gradient<E: EnergyFunction>(energy: &E, free: &[f64]) -> Vec<f64> {
    let eps = 1e-6;
    (0..free.len())
        .map(|p| {
            let mut plus = free.to_vec();
            plus[p] += eps;
            let mut minus = free.to_vec();
            minus[p] -= eps;
            (energy.value(&plus).unwrap() - energy.value(&minus).unwrap()) / (2.0 * eps)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reconstruction_is_always_symmetric_doubly_stochastic(k in 2usize..7, seed in 0u64..500) {
        // Use the seed to build arbitrary-ish free parameters deterministically.
        let k_star = num_free_parameters(k);
        let free: Vec<f64> = (0..k_star)
            .map(|i| 0.05 + 0.5 * (((seed as usize + i * 37) % 97) as f64 / 97.0))
            .collect();
        let h = free_to_matrix(&free, k).unwrap();
        prop_assert!(h.is_symmetric(1e-10));
        for s in h.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        for s in h.col_sums() {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        // Round trip.
        let back = matrix_to_free(&h).unwrap();
        for (a, b) in free.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn mce_gradient_is_exact(free in free_params(3), target in free_params(3)) {
        let target_matrix = free_to_matrix(&target, 3).unwrap();
        let energy = MceEnergy::new(target_matrix).unwrap();
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            prop_assert!((a - n).abs() < 1e-4, "analytic {} vs numeric {}", a, n);
        }
    }

    #[test]
    fn dce_gradient_is_exact(free in free_params(3), stats_seed in free_params(3), lambda in 0.5f64..20.0) {
        // Build perturbed statistics from an arbitrary valid matrix.
        let base = free_to_matrix(&stats_seed, 3).unwrap();
        let stats = vec![
            base.clone(),
            base.pow(2).unwrap().add_scalar(0.01),
            base.pow(3).unwrap().add_scalar(-0.01),
        ];
        let energy = DceEnergy::new(stats, distance_weights(lambda, 3)).unwrap();
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            prop_assert!((a - n).abs() < 1e-3, "analytic {} vs numeric {}", a, n);
        }
    }

    #[test]
    fn dce_energy_is_nonnegative_and_zero_only_at_exact_fit(free in free_params(3)) {
        let h = free_to_matrix(&free, 3).unwrap();
        let stats = vec![h.clone(), h.pow(2).unwrap()];
        let energy = DceEnergy::with_lambda(stats, 10.0).unwrap();
        prop_assert!(energy.value(&free).unwrap() < 1e-10);
        prop_assert!(energy.value(&uniform_start(3)).unwrap() >= 0.0);
    }

    #[test]
    fn factorized_summary_equals_explicit_on_random_graphs(
        graph in random_graph(12),
        label_seed in 0u64..1000,
    ) {
        // Random labels over 3 classes, roughly half of the nodes labeled.
        let n = graph.num_nodes();
        let labels: Vec<usize> = (0..n).map(|i| (label_seed as usize + i * 7) % 3).collect();
        let labeling = Labeling::new(labels, 3).unwrap();
        let observed: Vec<Option<usize>> = (0..n)
            .map(|i| if (label_seed as usize + i) % 2 == 0 { Some(labeling.class_of(i)) } else { None })
            .collect();
        let seeds = SeedLabels::new(observed, 3).unwrap();
        if seeds.num_labeled() == 0 {
            return Ok(());
        }
        let config = SummaryConfig {
            max_length: 4,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
        };
        let summary = summarize(&graph, &seeds, &config).unwrap();
        for length in 1..=4usize {
            let explicit = explicit_nb_power(&graph, length).unwrap();
            let expected = statistics_from_explicit(&explicit, &seeds, config.variant).unwrap();
            prop_assert!(
                summary.statistic(length).unwrap().approx_eq(&expected, 1e-7),
                "mismatch at length {}", length
            );
        }
    }

    #[test]
    fn statistics_matrices_are_row_stochastic_or_zero(graph in random_graph(15), label_seed in 0u64..100) {
        let n = graph.num_nodes();
        let labels: Vec<usize> = (0..n).map(|i| ((label_seed as usize) + i) % 2).collect();
        let labeling = Labeling::new(labels, 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let summary = summarize(&graph, &seeds, &SummaryConfig::with_max_length(3)).unwrap();
        for l in 1..=3usize {
            let stat = summary.statistic(l).unwrap();
            for s in stat.row_sums() {
                prop_assert!(s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn doubly_stochastic_powers_commute_with_parameterization(free in free_params(4)) {
        // (H(h))^2 is symmetric doubly stochastic; extracting and reconstructing its
        // free parameters reproduces it exactly.
        let h = free_to_matrix(&free, 4).unwrap();
        let h2 = h.pow(2).unwrap();
        let back = free_to_matrix(&matrix_to_free(&h2).unwrap(), 4).unwrap();
        prop_assert!(back.approx_eq(&h2, 1e-9));
    }

    #[test]
    fn distance_weights_are_positive_and_geometric(lambda in 0.1f64..50.0, len in 1usize..8) {
        let w = distance_weights(lambda, len);
        prop_assert_eq!(w.len(), len);
        prop_assert!(w.iter().all(|&x| x > 0.0));
        for i in 1..len {
            prop_assert!((w[i] / w[i - 1] - lambda).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_matrix_power_is_doubly_stochastic_closed(free in free_params(3), p in 1usize..6) {
        let h = free_to_matrix(&free, 3).unwrap();
        let hp = h.pow(p).unwrap();
        prop_assert!(hp.is_symmetric(1e-8));
        for s in hp.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-7);
        }
    }
}

#[test]
fn dense_matrix_add_scalar_helper_exists_for_tests() {
    // Guard for the helper used above: adding a scalar shifts all entries.
    let m = DenseMatrix::filled(2, 2, 0.5).add_scalar(0.25);
    assert!(m.data().iter().all(|&v| (v - 0.75).abs() < 1e-12));
}
