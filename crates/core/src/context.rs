//! Shared estimation state: the [`EstimationContext`] and its [`SummaryCache`].
//!
//! The paper's efficiency argument (Propositions 4.3–4.5) is that *every* estimator
//! consumes the same factorized length-ℓ path statistics `P̂(ℓ)`, so compatibility
//! estimation is a cheap preprocessing step on top of one `O(m·k·ℓmax)` graph
//! summarization. This module makes that sharing explicit — and **content-addressed**:
//! cache entries are keyed by the [`Fingerprint`]s of the graph and seed set (plus the
//! counting mode), never by pointer identity, so two independently loaded copies of
//! the same dataset share one cached summary. An [`EstimationContext`] bundles a
//! `(graph, seeds)` pair, their fingerprints, and a (possibly shared) [`SummaryCache`]
//! that computes the raw path counts **once** per `(graph_fp, seed_fp, mode)` key and
//! answers every subsequent request from the cached prefix:
//!
//! * counts are normalization-independent, so a cached summary serves *any*
//!   [`NormalizationVariant`](crate::normalization::NormalizationVariant);
//! * the recurrence of Algorithm 4.4 is prefix-stable, so a cached `ℓmax = 5` summary
//!   answers any request with `max_length ≤ 5` bit-identically to a fresh
//!   [`summarize`](crate::paths::summarize) call;
//! * the `W·N(ℓ-1)` products run under the context's [`Threads`] policy through the
//!   bit-identical parallel kernels of `fg_sparse`.
//!
//! Below the in-memory cache sits an optional persistent tier: attach a
//! [`SummaryStore`] with [`EstimationContext::store`] and cache misses first try the
//! store (read-through; a hit counts in [`store_hits`](EstimationContext::store_hits),
//! not in [`summary_computations`](EstimationContext::summary_computations)), and
//! freshly computed counts are written back so the *next process* on the same dataset
//! skips summarization entirely. Corrupt or mismatched store files are rejected with a
//! warning on stderr and recomputed — they can cost time, never correctness.
//!
//! Sweeps that evaluate several estimators (MCE, DCE, DCEr, …) on one seeded graph
//! build a single context, optionally [`warm`](EstimationContext::warm) it to the
//! largest required length, and hand it to every
//! [`estimate_with_context`](crate::estimators::CompatibilityEstimator::estimate_with_context)
//! call — the graph is then summarized exactly once, which
//! [`summary_computations`](EstimationContext::summary_computations) lets tests
//! assert.

use crate::error::Result;
use crate::lowrank_counts::lowrank_path_counts;
use crate::paths::{
    compute_path_counts, summary_from_counts, validate_summary_inputs, CountingBackend,
    GraphSummary, SummaryConfig,
};
use crate::store::SummaryStore;
use fg_graph::{factor_fingerprint, FactorConfig, Fingerprint, Graph, LowRankFactor, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The cache's key map: per-key state behind per-key locks.
type PairMap = HashMap<(Fingerprint, Fingerprint), Arc<Mutex<PairState>>>;

/// The factor map: one slot per factor fingerprint (which already folds in the
/// graph fingerprint, rank, and solver parameters), behind per-slot locks so an
/// eigensolve on one graph never blocks a different graph's.
type FactorMap = HashMap<Fingerprint, Arc<Mutex<Option<Arc<LowRankFactor>>>>>;

/// Cached artifacts for one `(graph_fp, seed_fp)` pair.
#[derive(Debug, Default)]
struct PairState {
    /// Cached raw count matrices per counting mode, index 0 = plain paths,
    /// index 1 = non-backtracking. Entry `i` of a vector holds `M(i+1)`.
    counts: [Option<Vec<DenseMatrix>>; 2],
    /// Cached low-rank count matrices, keyed by `(factor fingerprint, NB mode)` —
    /// each factor configuration yields different (approximate) counts, so they
    /// never share an entry with the exact backend or with other ranks.
    lowrank_counts: HashMap<(Fingerprint, bool), Vec<DenseMatrix>>,
    /// Cached `W · X` product (`n x k`), shared by both counting modes. Behind an
    /// `Arc` so callers copy it *outside* the cache mutex — the `n x k` copy must not
    /// serialize parallel sweep workers.
    wx: Option<Arc<DenseMatrix>>,
    /// How many times counts were actually computed for this key (per-key share of
    /// the cache-wide counter; what [`EstimationContext::summary_computations`]
    /// reports).
    computations: usize,
    /// How many of this key's requests were answered from a persistent store.
    store_hits: usize,
}

/// Memoized factorized path statistics, keyed by content: one entry per
/// `(graph fingerprint, seed fingerprint)` pair, with the raw counts per counting
/// mode inside.
///
/// Thread-safe, and designed to be shared behind an [`Arc`] across any number of
/// [`EstimationContext`]s — including contexts built on *different allocations* of
/// the same data: because the key is the content fingerprint, separately loaded
/// copies of one dataset hit the same entry. The cache stores only the
/// variant-independent raw counts (`k x k` matrices, one per length) — normalization
/// is applied per request, which is `O(k²·ℓmax)` and negligible.
///
/// Locking granularity: a short-lived outer mutex guards the key map, and each key
/// owns its own mutex that **is** held across a miss's `O(m·k·ℓmax)` computation (and
/// store I/O). That per-key lock is what guarantees a key is computed **exactly
/// once** no matter how many threads race on it — which the `computations()` counter
/// (and the paper's "summarize once" claim) relies on — while misses on *different*
/// keys proceed concurrently, so one shared cache serves both deduplication and
/// overlap (the parallel manifest runner and `fg serve` sessions lean on this).
#[derive(Debug, Default)]
pub struct SummaryCache {
    state: Mutex<PairMap>,
    factors: Mutex<FactorMap>,
    computations: AtomicUsize,
    store_hits: AtomicUsize,
    factor_computations: AtomicUsize,
    factor_store_hits: AtomicUsize,
}

impl SummaryCache {
    /// Create an empty cache behind an [`Arc`], ready to share across contexts.
    pub fn shared() -> Arc<SummaryCache> {
        Arc::new(SummaryCache::default())
    }

    /// How many times path counts were actually computed through this cache (cache
    /// and store misses). See [`EstimationContext::summary_computations`].
    pub fn computations(&self) -> usize {
        self.computations.load(Ordering::Relaxed)
    }

    /// How many summary requests were answered from a persistent [`SummaryStore`]
    /// instead of being recomputed.
    pub fn store_hits(&self) -> usize {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// How many times a low-rank factor was actually computed (eigensolve run)
    /// through this cache — cache *and* store misses. A sweep that evaluates many
    /// ranks still pays one eigensolve per distinct factor configuration, and a
    /// warm `.fgv` store tier drives this to zero.
    pub fn factor_computations(&self) -> usize {
        self.factor_computations.load(Ordering::Relaxed)
    }

    /// How many factor requests were answered from a persistent [`SummaryStore`]
    /// (`.fgv` entries) instead of rerunning the eigensolve.
    pub fn factor_store_hits(&self) -> usize {
        self.factor_store_hits.load(Ordering::Relaxed)
    }

    /// Number of distinct `(graph, seeds)` pairs currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("summary cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn mode_index(non_backtracking: bool) -> usize {
        usize::from(non_backtracking)
    }

    /// Get-or-insert the per-key state behind its own lock. The outer map lock is
    /// released before the caller locks the pair, so work on distinct keys overlaps.
    fn pair(&self, key: (Fingerprint, Fingerprint)) -> Arc<Mutex<PairState>> {
        let mut state = self.state.lock().expect("summary cache poisoned");
        Arc::clone(state.entry(key).or_default())
    }

    /// Read the per-key state without inserting an entry for absent keys.
    fn existing_pair(&self, key: (Fingerprint, Fingerprint)) -> Option<Arc<Mutex<PairState>>> {
        let state = self.state.lock().expect("summary cache poisoned");
        state.get(&key).map(Arc::clone)
    }

    /// Get-or-insert the per-factor slot behind its own lock (same granularity
    /// scheme as [`pair`](Self::pair): the outer map lock is released before the
    /// caller locks the slot, so concurrent eigensolves on distinct factors
    /// overlap while racing requests for one factor compute it exactly once).
    fn factor_slot(&self, factor_fp: Fingerprint) -> Arc<Mutex<Option<Arc<LowRankFactor>>>> {
        let mut factors = self.factors.lock().expect("factor cache poisoned");
        Arc::clone(factors.entry(factor_fp).or_default())
    }

    /// How many computations this cache has recorded for one key (both counting
    /// modes together). The per-key view of [`computations`](Self::computations).
    pub fn key_computations(&self, graph_fp: Fingerprint, seed_fp: Fingerprint) -> usize {
        self.existing_pair((graph_fp, seed_fp)).map_or(0, |pair| {
            pair.lock().expect("summary pair poisoned").computations
        })
    }

    /// How many of one key's requests were answered from a persistent store (the
    /// per-key view of [`store_hits`](Self::store_hits)).
    pub fn key_store_hits(&self, graph_fp: Fingerprint, seed_fp: Fingerprint) -> usize {
        self.existing_pair((graph_fp, seed_fp)).map_or(0, |pair| {
            pair.lock().expect("summary pair poisoned").store_hits
        })
    }

    /// Insert externally maintained raw counts for a key **without** counting a
    /// computation — the write-back path of the incremental
    /// [`DeltaSummary`](crate::incremental::DeltaSummary) engine, whose delta-updated
    /// counts are bit-identical to a fresh summarization of the same seed set. An
    /// existing entry is kept when it already holds an equal-or-longer prefix
    /// (counts are prefix-stable, so the longer vector answers strictly more
    /// requests).
    pub fn publish(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
        counts: Vec<DenseMatrix>,
    ) {
        if counts.is_empty() {
            return;
        }
        let pair = self.pair((graph_fp, seed_fp));
        let mut state = pair.lock().expect("summary pair poisoned");
        let mode = Self::mode_index(non_backtracking);
        let cached_len = state.counts[mode].as_ref().map_or(0, |c| c.len());
        if cached_len < counts.len() {
            state.counts[mode] = Some(counts);
        }
    }

    /// Insert an externally maintained `W · X` product for a key **without**
    /// counting a computation — the companion of [`publish`](Self::publish) for the
    /// `n x k` statistic LCE's energy consumes, fed by the incremental
    /// [`DeltaSummary`](crate::incremental::DeltaSummary) engine whose maintained
    /// `N(1)` is bit-identical to a cold product. An existing entry is kept: the key
    /// is content-addressed, so any correctly published value holds the same bits.
    pub fn publish_wx(&self, graph_fp: Fingerprint, seed_fp: Fingerprint, wx: Arc<DenseMatrix>) {
        let pair = self.pair((graph_fp, seed_fp));
        let mut state = pair.lock().expect("summary pair poisoned");
        if state.wx.is_none() {
            state.wx = Some(wx);
        }
    }

    /// Drop one key's cached artifacts (counts for both modes and `W · X`). Used by
    /// long-lived sessions to evict summaries of superseded seed sets so the cache
    /// does not grow with every mutation. The cache-wide counters are unaffected;
    /// the evicted key's per-key counters are dropped with its entry, so
    /// [`key_computations`](Self::key_computations) restarts from zero if the key
    /// ever reappears.
    pub fn remove(&self, graph_fp: Fingerprint, seed_fp: Fingerprint) {
        let mut state = self.state.lock().expect("summary cache poisoned");
        state.remove(&(graph_fp, seed_fp));
    }
}

/// A `(graph, seeds)` pair bundled with its content [`Fingerprint`]s, a (possibly
/// shared) [`SummaryCache`], an optional persistent [`SummaryStore`] tier, and a
/// [`Threads`] policy — the single source of path statistics for every estimator in a
/// comparison run.
///
/// See the [module docs](self) for the caching contract. All cached, shared, and
/// persisted artifacts are bit-identical to their uncached serial counterparts
/// regardless of the thread policy or which process computed them.
#[derive(Debug)]
pub struct EstimationContext<'a> {
    graph: &'a Graph,
    seeds: &'a SeedLabels,
    graph_fp: Fingerprint,
    seed_fp: Fingerprint,
    threads: Threads,
    cache: Arc<SummaryCache>,
    store: Option<Arc<SummaryStore>>,
}

impl<'a> EstimationContext<'a> {
    /// Create a context over the given graph and seed labels with a private cache
    /// (serial summarization).
    pub fn new(graph: &'a Graph, seeds: &'a SeedLabels) -> Self {
        Self::with_cache(graph, seeds, SummaryCache::shared())
    }

    /// Create a context that answers requests from (and contributes to) a shared
    /// [`SummaryCache`]. Because entries are keyed by fingerprint, contexts built on
    /// independently loaded copies of the same dataset share one summary.
    pub fn with_cache(graph: &'a Graph, seeds: &'a SeedLabels, cache: Arc<SummaryCache>) -> Self {
        EstimationContext {
            graph,
            seeds,
            graph_fp: graph.fingerprint(),
            seed_fp: seeds.fingerprint(),
            threads: Threads::Serial,
            cache,
            store: None,
        }
    }

    /// Set the [`Threads`] policy used for the summarization kernels. The parallel
    /// kernels are bit-identical to the serial ones, so this only changes wall-clock
    /// time, never a cached value.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Attach a persistent [`SummaryStore`] as a read-through / write-back tier below
    /// the in-memory cache: misses first try the store, and freshly computed counts
    /// are persisted for future processes. Stored counts are bit-identical to fresh
    /// computation; corrupt or mismatched files are rejected with a warning on stderr
    /// and recomputed (then overwritten).
    pub fn store(mut self, store: Arc<SummaryStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The graph this context summarizes.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The observed seed labels.
    pub fn seeds(&self) -> &'a SeedLabels {
        self.seeds
    }

    /// The content fingerprint of the graph (the first half of the cache key).
    pub fn graph_fingerprint(&self) -> Fingerprint {
        self.graph_fp
    }

    /// The content fingerprint of the seed set (the second half of the cache key).
    pub fn seed_fingerprint(&self) -> Fingerprint {
        self.seed_fp
    }

    /// The thread policy used for summarization kernels.
    pub fn thread_policy(&self) -> Threads {
        self.threads
    }

    /// The cache this context reads from and writes to (shareable across contexts).
    pub fn cache(&self) -> &Arc<SummaryCache> {
        &self.cache
    }

    /// The attached persistent store, if any.
    pub fn summary_store(&self) -> Option<&Arc<SummaryStore>> {
        self.store.as_ref()
    }

    /// How many times the underlying path counts were actually computed through this
    /// context's cache (cache *and* store misses) **for this context's key** — the
    /// `(graph, seeds)` pair, both counting modes together. A comparison run that
    /// shares one context across MCE + DCE + DCEr sees exactly one computation per
    /// counting mode, and a warm persistent store drives this to **zero** — tests and
    /// the CI warm-path job assert both. The counter is cumulative across every
    /// context sharing the cache *and* key; work on other keys in a shared cache is
    /// not counted here (see [`SummaryCache::computations`] for the cache-wide
    /// total), which keeps per-run reports deterministic when independent runs share
    /// one cache concurrently.
    pub fn summary_computations(&self) -> usize {
        self.cache.key_computations(self.graph_fp, self.seed_fp)
    }

    /// How many summary requests for this context's key were served from the
    /// persistent store instead of being recomputed (cumulative across contexts
    /// sharing the cache and key; see [`SummaryCache::store_hits`] for the cache-wide
    /// total).
    pub fn store_hits(&self) -> usize {
        self.cache.key_store_hits(self.graph_fp, self.seed_fp)
    }

    /// The graph summary for `config`, served from the in-memory cache when a
    /// long-enough prefix for the counting mode is already stored, then from the
    /// persistent store (if attached), and computed — and cached / persisted —
    /// otherwise.
    ///
    /// Bit-identical to a fresh [`summarize`](crate::paths::summarize) call with the
    /// same configuration: counts are prefix-stable in `max_length`, independent of
    /// the normalization variant, and round-trip the store exactly.
    ///
    /// With [`CountingBackend::LowRank`] the spectral factor is resolved through
    /// its own cache/store tier (see [`factor`](Self::factor)) and the counts come
    /// from the `O(r²·k)`-per-length factor-space recurrence, cached per
    /// `(factor, mode)` with the same prefix-stability.
    pub fn summary(&self, config: &SummaryConfig) -> Result<GraphSummary> {
        validate_summary_inputs(self.graph, self.seeds, config.max_length)?;
        let counts = match config.backend {
            CountingBackend::Exact => self.exact_counts(config)?,
            CountingBackend::LowRank(factor_config) => {
                self.lowrank_counts_for(config, &factor_config)?
            }
        };
        Ok(summary_from_counts(
            counts,
            self.seeds.k(),
            config.non_backtracking,
            config.variant,
        ))
    }

    /// The exact-backend count prefix for `config`: in-memory cache, then store,
    /// then compute-and-persist.
    fn exact_counts(&self, config: &SummaryConfig) -> Result<Vec<DenseMatrix>> {
        let mode = SummaryCache::mode_index(config.non_backtracking);
        let pair = self.cache.pair((self.graph_fp, self.seed_fp));
        let mut entry = pair.lock().expect("summary pair poisoned");
        let cached_len = entry.counts[mode].as_ref().map_or(0, |c| c.len());
        if cached_len < config.max_length {
            let counts = match self.load_from_store(config) {
                Some(stored) => {
                    entry.store_hits += 1;
                    self.cache.store_hits.fetch_add(1, Ordering::Relaxed);
                    stored
                }
                None => {
                    let counts = compute_path_counts(
                        self.graph,
                        self.seeds,
                        config.max_length,
                        config.non_backtracking,
                        self.threads,
                    )?;
                    entry.computations += 1;
                    self.cache.computations.fetch_add(1, Ordering::Relaxed);
                    self.write_back(config, &counts);
                    counts
                }
            };
            entry.counts[mode] = Some(counts);
        }
        Ok(entry.counts[mode]
            .as_ref()
            .expect("counts cached above")
            .iter()
            .take(config.max_length)
            .cloned()
            .collect())
    }

    /// The low-rank-backend count prefix for `config`: the factor comes from its
    /// cache/store tier, the recurrence result is cached per
    /// `(factor fingerprint, mode)` under this context's pair key. Recomputing a
    /// longer prefix reruns only the `O(r²·k·ℓmax)` recurrence — never the
    /// eigensolve.
    fn lowrank_counts_for(
        &self,
        config: &SummaryConfig,
        factor_config: &FactorConfig,
    ) -> Result<Vec<DenseMatrix>> {
        let factor_fp = factor_fingerprint(self.graph_fp, factor_config);
        let key = (factor_fp, config.non_backtracking);
        let pair = self.cache.pair((self.graph_fp, self.seed_fp));
        let mut entry = pair.lock().expect("summary pair poisoned");
        let cached_len = entry.lowrank_counts.get(&key).map_or(0, |c| c.len());
        if cached_len < config.max_length {
            // Lock order is always pair → factor slot (nothing locks a pair while
            // holding a slot), so resolving the factor here cannot deadlock.
            let factor = self.factor(factor_config)?;
            let counts = lowrank_path_counts(
                &factor,
                self.seeds,
                config.max_length,
                config.non_backtracking,
            )?;
            entry.computations += 1;
            self.cache.computations.fetch_add(1, Ordering::Relaxed);
            entry.lowrank_counts.insert(key, counts);
        }
        Ok(entry
            .lowrank_counts
            .get(&key)
            .expect("counts cached above")
            .iter()
            .take(config.max_length)
            .cloned()
            .collect())
    }

    /// The low-rank factor of this context's graph under `factor_config`, served
    /// from the in-memory factor cache, then the persistent `.fgv` store tier
    /// (if attached), and computed — cached and persisted — otherwise. The
    /// expensive eigensolve therefore runs **once** per
    /// `(graph, rank, solver params)` across every context sharing the cache,
    /// and not at all when a prior process left a `.fgv` entry behind.
    pub fn factor(&self, factor_config: &FactorConfig) -> Result<Arc<LowRankFactor>> {
        let factor_fp = factor_fingerprint(self.graph_fp, factor_config);
        let slot = self.cache.factor_slot(factor_fp);
        let mut guard = slot.lock().expect("factor slot poisoned");
        if let Some(factor) = guard.as_ref() {
            return Ok(Arc::clone(factor));
        }
        if let Some(store) = &self.store {
            match store.load_factor(self.graph_fp, factor_config) {
                Ok(Some(factor)) => {
                    self.cache.factor_store_hits.fetch_add(1, Ordering::Relaxed);
                    let factor = Arc::new(factor);
                    *guard = Some(Arc::clone(&factor));
                    return Ok(factor);
                }
                Ok(None) => {}
                Err(e) => eprintln!("warning: {e}; recomputing factor"),
            }
        }
        let factor = Arc::new(LowRankFactor::compute(
            self.graph,
            factor_config,
            self.threads,
        )?);
        self.cache
            .factor_computations
            .fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            if let Err(e) = store.save_factor(&factor) {
                eprintln!("warning: could not persist factor: {e}");
            }
        }
        *guard = Some(Arc::clone(&factor));
        Ok(factor)
    }

    /// Try the persistent tier for a long-enough stored prefix. Returns `None` on a
    /// miss; corrupt / mismatched files warn on stderr and count as misses. The
    /// caller records the hit in the per-key and cache-wide counters.
    fn load_from_store(&self, config: &SummaryConfig) -> Option<Vec<DenseMatrix>> {
        let store = self.store.as_ref()?;
        match store.load(self.graph_fp, self.seed_fp, config.non_backtracking) {
            Ok(Some(stored))
                if stored.k == self.seeds.k() && stored.counts.len() >= config.max_length =>
            {
                Some(stored.counts)
            }
            // Present but too short (or absent): recompute; a k mismatch with equal
            // fingerprints cannot happen for intact files, so it falls out as corrupt
            // via the checksum long before this point.
            Ok(_) => None,
            Err(e) => {
                eprintln!("warning: {e}; recomputing summary");
                None
            }
        }
    }

    /// Persist freshly computed counts (best-effort: persistence failures warn and
    /// are otherwise ignored — the result is already in memory).
    fn write_back(&self, config: &SummaryConfig, counts: &[DenseMatrix]) {
        if let Some(store) = &self.store {
            if let Err(e) = store.save(
                self.graph_fp,
                self.seed_fp,
                config.non_backtracking,
                self.seeds.k(),
                counts,
            ) {
                eprintln!("warning: could not persist summary: {e}");
            }
        }
    }

    /// Precompute (and cache) the counts for `config` without building a summary.
    /// Useful to front-load the expensive summarization before a timed or shared
    /// section; subsequent [`summary`](Self::summary) calls with `max_length` up to
    /// `config.max_length` are then cache hits.
    pub fn warm(&self, config: &SummaryConfig) -> Result<()> {
        self.summary(config).map(|_| ())
    }

    /// The cached `W · X` product (`n x k`, `X` the one-hot seed matrix) — the
    /// statistic LCE's energy is built from. Computed once under the context's thread
    /// policy (bit-identical to the serial product) and shared by fingerprint like the
    /// path counts; not persisted to the store (it is `n x k`, not `k x k`). Returned
    /// behind an `Arc` so cache hits share the stored matrix instead of copying it;
    /// callers that need ownership clone the matrix outside the cache lock.
    pub fn wx(&self) -> Result<Arc<DenseMatrix>> {
        let pair = self.cache.pair((self.graph_fp, self.seed_fp));
        let mut entry = pair.lock().expect("summary pair poisoned");
        if entry.wx.is_none() {
            let x = self.seeds.to_matrix();
            entry.wx = Some(Arc::new(
                self.graph.adjacency().spmm_dense_with(&x, self.threads)?,
            ));
        }
        Ok(Arc::clone(entry.wx.as_ref().expect("wx cached above")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalization::NormalizationVariant;
    use crate::paths::summarize;
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeded_graph() -> (Graph, SeedLabels) {
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        (syn.graph, seeds)
    }

    #[test]
    fn cache_hits_share_one_computation() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds);
        assert_eq!(ctx.summary_computations(), 0);
        let five = ctx.summary(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 1);
        // Shorter prefixes and other variants are cache hits.
        let three = ctx.summary(&SummaryConfig::with_max_length(3)).unwrap();
        let mean_scaled = ctx
            .summary(&SummaryConfig {
                max_length: 5,
                non_backtracking: true,
                variant: NormalizationVariant::MeanScaled,
                ..SummaryConfig::default()
            })
            .unwrap();
        assert_eq!(ctx.summary_computations(), 1);
        assert_eq!(three.max_length(), 3);
        assert_eq!(five.max_length(), 5);
        assert_eq!(mean_scaled.max_length(), 5);
        // The other counting mode is a separate computation.
        ctx.warm(&SummaryConfig {
            max_length: 5,
            non_backtracking: false,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        })
        .unwrap();
        assert_eq!(ctx.summary_computations(), 2);
    }

    #[test]
    fn cached_prefix_is_bit_identical_to_fresh_summarize() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds);
        ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        for len in 1..=5 {
            let config = SummaryConfig::with_max_length(len);
            let cached = ctx.summary(&config).unwrap();
            let fresh = summarize(&graph, &seeds, &config).unwrap();
            for l in 1..=len {
                assert_eq!(
                    cached.count(l).unwrap().data(),
                    fresh.count(l).unwrap().data(),
                    "counts diverge at length {l} (request {len})"
                );
                assert_eq!(
                    cached.statistic(l).unwrap().data(),
                    fresh.statistic(l).unwrap().data(),
                    "statistics diverge at length {l} (request {len})"
                );
            }
        }
        assert_eq!(ctx.summary_computations(), 1);
    }

    #[test]
    fn published_counts_are_served_without_computation_and_removable() {
        let (graph, seeds) = seeded_graph();
        let cache = SummaryCache::shared();
        let config = SummaryConfig::with_max_length(3);
        let fresh = crate::paths::summarize(&graph, &seeds, &config).unwrap();
        cache.publish(
            graph.fingerprint(),
            seeds.fingerprint(),
            true,
            fresh.counts.clone(),
        );
        // Served entirely from the published entry: zero computations anywhere.
        let ctx = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&cache));
        let served = ctx.summary(&config).unwrap();
        assert_eq!(cache.computations(), 0);
        assert_eq!(ctx.summary_computations(), 0);
        for l in 1..=3 {
            assert_eq!(
                served.count(l).unwrap().data(),
                fresh.count(l).unwrap().data()
            );
        }
        // Publishing a shorter prefix never downgrades the entry.
        cache.publish(
            graph.fingerprint(),
            seeds.fingerprint(),
            true,
            fresh.counts[..1].to_vec(),
        );
        assert_eq!(ctx.summary(&config).unwrap().max_length(), 3);
        assert_eq!(cache.computations(), 0);
        // Empty publishes are ignored entirely.
        cache.publish(graph.fingerprint(), seeds.fingerprint(), true, Vec::new());
        assert_eq!(cache.len(), 1);
        // After eviction the next request recomputes (counters are cumulative).
        cache.remove(graph.fingerprint(), seeds.fingerprint());
        assert!(cache.is_empty());
        ctx.warm(&config).unwrap();
        assert_eq!(cache.computations(), 1);
    }

    #[test]
    fn per_key_counters_do_not_see_other_keys() {
        let (graph, seeds) = seeded_graph();
        let mut rng = StdRng::seed_from_u64(123);
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let other = generate(&cfg, &mut rng).unwrap();
        let other_seeds = other.labeling.stratified_sample(0.1, &mut rng);
        let cache = SummaryCache::shared();
        let ctx = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&cache));
        let ctx_other =
            EstimationContext::with_cache(&other.graph, &other_seeds, Arc::clone(&cache));
        ctx.warm(&SummaryConfig::with_max_length(3)).unwrap();
        ctx_other.warm(&SummaryConfig::with_max_length(3)).unwrap();
        // The cache-wide counter sums both keys; each context only reports its own.
        assert_eq!(cache.computations(), 2);
        assert_eq!(ctx.summary_computations(), 1);
        assert_eq!(ctx_other.summary_computations(), 1);
        assert_eq!(
            cache.key_computations(graph.fingerprint(), seeds.fingerprint()),
            1
        );
        // Unknown keys read as zero without creating entries.
        let absent = Fingerprint::from_u128(0xdead);
        assert_eq!(cache.key_computations(absent, absent), 0);
        assert_eq!(cache.key_store_hits(absent, absent), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_serves_equal_content_across_contexts() {
        // The content-addressing contract: a clone is a different allocation but the
        // same content, so a shared cache answers it without recomputing.
        let (graph, seeds) = seeded_graph();
        let graph_copy = graph.clone();
        let seeds_copy = seeds.clone();
        let cache = SummaryCache::shared();
        let ctx = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&cache));
        let ctx_copy = EstimationContext::with_cache(&graph_copy, &seeds_copy, Arc::clone(&cache));
        assert!(!std::ptr::eq(ctx.graph(), ctx_copy.graph()));

        let config = SummaryConfig::with_max_length(4);
        let first = ctx.summary(&config).unwrap();
        let second = ctx_copy.summary(&config).unwrap();
        assert_eq!(cache.computations(), 1);
        assert_eq!(cache.len(), 1);
        for l in 1..=4 {
            assert_eq!(
                first.count(l).unwrap().data(),
                second.count(l).unwrap().data()
            );
        }
        // A different seed set is a different key in the same cache.
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let other = generate(&cfg, &mut rng).unwrap();
        let other_seeds = other.labeling.stratified_sample(0.1, &mut rng);
        let ctx_other = EstimationContext::with_cache(&other.graph, &other_seeds, cache.clone());
        ctx_other.warm(&config).unwrap();
        assert_eq!(cache.computations(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn wx_is_cached_and_matches_serial_product() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds).threads(Threads::Fixed(4));
        let expected = graph.adjacency().spmm_dense(&seeds.to_matrix()).unwrap();
        assert_eq!(ctx.wx().unwrap().data(), expected.data());
        assert_eq!(ctx.wx().unwrap().data(), expected.data());
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds);
        assert!(ctx.summary(&SummaryConfig::with_max_length(0)).is_err());
        let wrong = SeedLabels::new(vec![Some(0), None], 2).unwrap();
        let bad = EstimationContext::new(&graph, &wrong);
        assert!(bad.summary(&SummaryConfig::default()).is_err());
    }

    #[test]
    fn accessors_expose_configuration() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds).threads(Threads::Auto);
        assert!(std::ptr::eq(ctx.graph(), &graph));
        assert!(std::ptr::eq(ctx.seeds(), &seeds));
        assert_eq!(ctx.thread_policy(), Threads::Auto);
        assert_eq!(ctx.graph_fingerprint(), graph.fingerprint());
        assert_eq!(ctx.seed_fingerprint(), seeds.fingerprint());
        assert!(ctx.summary_store().is_none());
        assert!(ctx.cache().is_empty());
        assert_eq!(ctx.store_hits(), 0);
    }

    #[test]
    fn store_round_trip_serves_new_cache_without_computation() {
        let (graph, seeds) = seeded_graph();
        let dir = std::env::temp_dir().join("fg_ctx_store_round_trip");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SummaryStore::open(&dir).unwrap());
        let config = SummaryConfig::with_max_length(5);

        // Cold: computes and writes back.
        let warm_ctx = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        let fresh = warm_ctx.summary(&config).unwrap();
        assert_eq!(warm_ctx.summary_computations(), 1);
        assert_eq!(warm_ctx.store_hits(), 0);

        // Warm path: a brand-new cache (simulating a new process) is served from disk
        // with zero computations and bit-identical results.
        let cold_ctx = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        let served = cold_ctx.summary(&config).unwrap();
        assert_eq!(cold_ctx.summary_computations(), 0);
        assert_eq!(cold_ctx.store_hits(), 1);
        for l in 1..=5 {
            assert_eq!(
                served.count(l).unwrap().data(),
                fresh.count(l).unwrap().data()
            );
            assert_eq!(
                served.statistic(l).unwrap().data(),
                fresh.statistic(l).unwrap().data()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_stored_prefix_is_recomputed_and_extended() {
        let (graph, seeds) = seeded_graph();
        let dir = std::env::temp_dir().join("fg_ctx_store_extend");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SummaryStore::open(&dir).unwrap());

        let short_ctx = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        short_ctx.warm(&SummaryConfig::with_max_length(2)).unwrap();

        // A longer request cannot be served by the stored lmax = 2 prefix: it is
        // recomputed and the store upgraded to lmax = 5.
        let long_ctx = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        long_ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(long_ctx.summary_computations(), 1);
        assert_eq!(long_ctx.store_hits(), 0);

        // Now lmax <= 5 requests are store hits for fresh caches.
        let reread = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        reread.warm(&SummaryConfig::with_max_length(4)).unwrap();
        assert_eq!(reread.summary_computations(), 0);
        assert_eq!(reread.store_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_store_file_is_recomputed_and_repaired() {
        let (graph, seeds) = seeded_graph();
        let dir = std::env::temp_dir().join("fg_ctx_store_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SummaryStore::open(&dir).unwrap());
        let config = SummaryConfig::with_max_length(3);

        let writer = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        let expected = writer.summary(&config).unwrap();

        // Damage the persisted file.
        let path = store.path_for(graph.fingerprint(), seeds.fingerprint(), true);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        // The damaged file is rejected (not served), the summary recomputed
        // correctly, and the file repaired by the write-back.
        let reader = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        let recovered = reader.summary(&config).unwrap();
        assert_eq!(reader.summary_computations(), 1);
        assert_eq!(reader.store_hits(), 0);
        for l in 1..=3 {
            assert_eq!(
                recovered.count(l).unwrap().data(),
                expected.count(l).unwrap().data()
            );
        }
        let healed = EstimationContext::new(&graph, &seeds).store(Arc::clone(&store));
        healed.warm(&config).unwrap();
        assert_eq!(healed.summary_computations(), 0);
        assert_eq!(healed.store_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lowrank_factor_is_computed_once_and_counts_are_cached() {
        let (graph, seeds) = seeded_graph();
        let cache = SummaryCache::shared();
        let ctx = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&cache));
        let config = SummaryConfig {
            max_length: 5,
            ..SummaryConfig::with_lowrank_rank(8)
        };
        let five = ctx.summary(&config).unwrap();
        assert_eq!(cache.factor_computations(), 1);
        assert_eq!(ctx.summary_computations(), 1);
        assert_eq!(five.max_length(), 5);

        // Shorter prefixes and other variants reuse both the factor and the counts.
        let three = ctx
            .summary(&SummaryConfig {
                max_length: 3,
                variant: NormalizationVariant::MeanScaled,
                ..config
            })
            .unwrap();
        assert_eq!(cache.factor_computations(), 1);
        assert_eq!(ctx.summary_computations(), 1);
        assert_eq!(three.max_length(), 3);

        // The other counting mode reruns only the recurrence, never the eigensolve.
        ctx.warm(&SummaryConfig {
            non_backtracking: false,
            ..config
        })
        .unwrap();
        assert_eq!(cache.factor_computations(), 1);
        assert_eq!(ctx.summary_computations(), 2);

        // A different rank is a different factor.
        ctx.warm(&SummaryConfig {
            max_length: 5,
            ..SummaryConfig::with_lowrank_rank(4)
        })
        .unwrap();
        assert_eq!(cache.factor_computations(), 2);

        // Low-rank entries never pollute the exact tier (and vice versa).
        ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 4);
        assert_eq!(cache.factor_computations(), 2);
    }

    #[test]
    fn warm_fgv_store_skips_the_eigensolve() {
        let (graph, seeds) = seeded_graph();
        let dir = std::env::temp_dir().join("fg_ctx_factor_store");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SummaryStore::open(&dir).unwrap());
        let config = SummaryConfig {
            max_length: 5,
            ..SummaryConfig::with_lowrank_rank(8)
        };

        // Cold: runs the eigensolve and persists the factor as a `.fgv` entry.
        let cold_cache = SummaryCache::shared();
        let cold = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&cold_cache))
            .store(Arc::clone(&store));
        let fresh = cold.summary(&config).unwrap();
        assert_eq!(cold_cache.factor_computations(), 1);
        assert_eq!(cold_cache.factor_store_hits(), 0);

        // Warm: a brand-new cache (new process) loads the factor from disk — zero
        // eigensolves — and produces bit-identical counts at any thread policy.
        for threads in [Threads::Serial, Threads::Fixed(4)] {
            let warm_cache = SummaryCache::shared();
            let warm = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&warm_cache))
                .threads(threads)
                .store(Arc::clone(&store));
            let served = warm.summary(&config).unwrap();
            assert_eq!(warm_cache.factor_computations(), 0, "{threads:?}");
            assert_eq!(warm_cache.factor_store_hits(), 1, "{threads:?}");
            for l in 1..=5 {
                assert_eq!(
                    served.count(l).unwrap().data(),
                    fresh.count(l).unwrap().data(),
                    "{threads:?} length {l}"
                );
            }
        }

        // A damaged `.fgv` entry is rejected, recomputed, and repaired in place.
        let factor_config = FactorConfig::with_rank(8);
        let path = store.path_for_factor(graph.fingerprint(), &factor_config);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let repair_cache = SummaryCache::shared();
        let repair = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&repair_cache))
            .store(Arc::clone(&store));
        repair.warm(&config).unwrap();
        assert_eq!(repair_cache.factor_computations(), 1);
        assert_eq!(repair_cache.factor_store_hits(), 0);
        let healed_cache = SummaryCache::shared();
        let healed = EstimationContext::with_cache(&graph, &seeds, Arc::clone(&healed_cache))
            .store(Arc::clone(&store));
        healed.warm(&config).unwrap();
        assert_eq!(healed_cache.factor_computations(), 0);
        assert_eq!(healed_cache.factor_store_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
