//! Shared estimation state: the [`EstimationContext`] and its [`SummaryCache`].
//!
//! The paper's efficiency argument (Propositions 4.3–4.5) is that *every* estimator
//! consumes the same factorized length-ℓ path statistics `P̂(ℓ)`, so compatibility
//! estimation is a cheap preprocessing step on top of one `O(m·k·ℓmax)` graph
//! summarization. This module makes that sharing explicit: an [`EstimationContext`]
//! owns a `(graph, seeds)` pair plus a [`SummaryCache`] that computes the raw path
//! counts **once** per counting mode and answers every subsequent request from the
//! cached prefix:
//!
//! * counts are normalization-independent, so a cached summary serves *any*
//!   [`NormalizationVariant`](crate::normalization::NormalizationVariant);
//! * the recurrence of Algorithm 4.4 is prefix-stable, so a cached `ℓmax = 5` summary
//!   answers any request with `max_length ≤ 5` bit-identically to a fresh
//!   [`summarize`](crate::paths::summarize) call;
//! * the `W·N(ℓ-1)` products run under the context's [`Threads`] policy through the
//!   bit-identical parallel kernels of `fg_sparse`.
//!
//! Sweeps that evaluate several estimators (MCE, DCE, DCEr, …) on one seeded graph
//! build a single context, optionally [`warm`](EstimationContext::warm) it to the
//! largest required length, and hand it to every
//! [`estimate_with_context`](crate::estimators::CompatibilityEstimator::estimate_with_context)
//! call — the graph is then summarized exactly once, which
//! [`summary_computations`](EstimationContext::summary_computations) lets tests
//! assert.

use crate::error::Result;
use crate::paths::{
    compute_path_counts, summary_from_counts, validate_summary_inputs, GraphSummary, SummaryConfig,
};
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Interior state guarded by the cache mutex: one cached count-prefix per counting
/// mode plus the cached `W·X` product used by LCE.
#[derive(Debug, Default)]
struct CacheState {
    /// Cached raw count matrices per counting mode, index 0 = plain paths,
    /// index 1 = non-backtracking. Entry `i` of a vector holds `M(i+1)`.
    counts: [Option<Vec<DenseMatrix>>; 2],
    /// Cached `W · X` product (`n x k`), shared by both counting modes. Behind an
    /// `Arc` so callers copy it *outside* the cache mutex — the `n x k` copy must not
    /// serialize parallel sweep workers.
    wx: Option<Arc<DenseMatrix>>,
}

/// Memoized factorized path statistics for one `(graph, seeds)` pair.
///
/// Thread-safe: requests are synchronized with a mutex, so a context can be shared
/// across sweep workers. The cache stores only the variant-independent raw counts
/// (`k x k` matrices, one per length) — normalization is applied per request, which is
/// `O(k²·ℓmax)` and negligible.
#[derive(Debug, Default)]
pub struct SummaryCache {
    state: Mutex<CacheState>,
    computations: AtomicUsize,
}

impl SummaryCache {
    fn mode_index(non_backtracking: bool) -> usize {
        usize::from(non_backtracking)
    }
}

/// A `(graph, seeds)` pair bundled with a [`SummaryCache`] and a [`Threads`] policy —
/// the single source of path statistics for every estimator in a comparison run.
///
/// See the [module docs](self) for the caching contract. All cached artifacts are
/// bit-identical to their uncached serial counterparts regardless of the thread
/// policy.
#[derive(Debug)]
pub struct EstimationContext<'a> {
    graph: &'a Graph,
    seeds: &'a SeedLabels,
    threads: Threads,
    cache: SummaryCache,
}

impl<'a> EstimationContext<'a> {
    /// Create a context over the given graph and seed labels (serial summarization).
    pub fn new(graph: &'a Graph, seeds: &'a SeedLabels) -> Self {
        EstimationContext {
            graph,
            seeds,
            threads: Threads::Serial,
            cache: SummaryCache::default(),
        }
    }

    /// Set the [`Threads`] policy used for the summarization kernels. The parallel
    /// kernels are bit-identical to the serial ones, so this only changes wall-clock
    /// time, never a cached value.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// The graph this context summarizes.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The observed seed labels.
    pub fn seeds(&self) -> &'a SeedLabels {
        self.seeds
    }

    /// The thread policy used for summarization kernels.
    pub fn thread_policy(&self) -> Threads {
        self.threads
    }

    /// How many times the underlying path counts were actually computed (cache
    /// misses). A comparison run that shares one context across MCE + DCE + DCEr
    /// should see exactly one computation per counting mode — tests assert this.
    pub fn summary_computations(&self) -> usize {
        self.cache.computations.load(Ordering::Relaxed)
    }

    /// The graph summary for `config`, served from the cache when a long-enough
    /// prefix for the counting mode is already stored, computed (and cached)
    /// otherwise.
    ///
    /// Bit-identical to a fresh [`summarize`](crate::paths::summarize) call with the
    /// same configuration: counts are prefix-stable in `max_length` and independent of
    /// the normalization variant.
    pub fn summary(&self, config: &SummaryConfig) -> Result<GraphSummary> {
        validate_summary_inputs(self.graph, self.seeds, config.max_length)?;
        let mode = SummaryCache::mode_index(config.non_backtracking);
        let mut state = self.cache.state.lock().expect("summary cache poisoned");
        let cached_len = state.counts[mode].as_ref().map_or(0, |c| c.len());
        if cached_len < config.max_length {
            let counts = compute_path_counts(
                self.graph,
                self.seeds,
                config.max_length,
                config.non_backtracking,
                self.threads,
            )?;
            self.cache.computations.fetch_add(1, Ordering::Relaxed);
            state.counts[mode] = Some(counts);
        }
        let counts = state.counts[mode]
            .as_ref()
            .expect("counts cached above")
            .iter()
            .take(config.max_length)
            .cloned()
            .collect();
        Ok(summary_from_counts(
            counts,
            self.seeds.k(),
            config.non_backtracking,
            config.variant,
        ))
    }

    /// Precompute (and cache) the counts for `config` without building a summary.
    /// Useful to front-load the expensive summarization before a timed or shared
    /// section; subsequent [`summary`](Self::summary) calls with `max_length` up to
    /// `config.max_length` are then cache hits.
    pub fn warm(&self, config: &SummaryConfig) -> Result<()> {
        self.summary(config).map(|_| ())
    }

    /// The cached `W · X` product (`n x k`, `X` the one-hot seed matrix) — the
    /// statistic LCE's energy is built from. Computed once under the context's thread
    /// policy (bit-identical to the serial product). Returned behind an `Arc` so
    /// cache hits share the stored matrix instead of copying it; callers that need
    /// ownership clone the matrix outside the cache lock.
    pub fn wx(&self) -> Result<Arc<DenseMatrix>> {
        let mut state = self.cache.state.lock().expect("summary cache poisoned");
        if state.wx.is_none() {
            let x = self.seeds.to_matrix();
            state.wx = Some(Arc::new(
                self.graph.adjacency().spmm_dense_with(&x, self.threads)?,
            ));
        }
        Ok(Arc::clone(state.wx.as_ref().expect("wx cached above")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalization::NormalizationVariant;
    use crate::paths::summarize;
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeded_graph() -> (Graph, SeedLabels) {
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        (syn.graph, seeds)
    }

    #[test]
    fn cache_hits_share_one_computation() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds);
        assert_eq!(ctx.summary_computations(), 0);
        let five = ctx.summary(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 1);
        // Shorter prefixes and other variants are cache hits.
        let three = ctx.summary(&SummaryConfig::with_max_length(3)).unwrap();
        let mean_scaled = ctx
            .summary(&SummaryConfig {
                max_length: 5,
                non_backtracking: true,
                variant: NormalizationVariant::MeanScaled,
            })
            .unwrap();
        assert_eq!(ctx.summary_computations(), 1);
        assert_eq!(three.max_length(), 3);
        assert_eq!(five.max_length(), 5);
        assert_eq!(mean_scaled.max_length(), 5);
        // The other counting mode is a separate computation.
        ctx.warm(&SummaryConfig {
            max_length: 5,
            non_backtracking: false,
            variant: NormalizationVariant::RowStochastic,
        })
        .unwrap();
        assert_eq!(ctx.summary_computations(), 2);
    }

    #[test]
    fn cached_prefix_is_bit_identical_to_fresh_summarize() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds);
        ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        for len in 1..=5 {
            let config = SummaryConfig::with_max_length(len);
            let cached = ctx.summary(&config).unwrap();
            let fresh = summarize(&graph, &seeds, &config).unwrap();
            for l in 1..=len {
                assert_eq!(
                    cached.count(l).unwrap().data(),
                    fresh.count(l).unwrap().data(),
                    "counts diverge at length {l} (request {len})"
                );
                assert_eq!(
                    cached.statistic(l).unwrap().data(),
                    fresh.statistic(l).unwrap().data(),
                    "statistics diverge at length {l} (request {len})"
                );
            }
        }
        assert_eq!(ctx.summary_computations(), 1);
    }

    #[test]
    fn wx_is_cached_and_matches_serial_product() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds).threads(Threads::Fixed(4));
        let expected = graph.adjacency().spmm_dense(&seeds.to_matrix()).unwrap();
        assert_eq!(ctx.wx().unwrap().data(), expected.data());
        assert_eq!(ctx.wx().unwrap().data(), expected.data());
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds);
        assert!(ctx.summary(&SummaryConfig::with_max_length(0)).is_err());
        let wrong = SeedLabels::new(vec![Some(0), None], 2).unwrap();
        let bad = EstimationContext::new(&graph, &wrong);
        assert!(bad.summary(&SummaryConfig::default()).is_err());
    }

    #[test]
    fn accessors_expose_configuration() {
        let (graph, seeds) = seeded_graph();
        let ctx = EstimationContext::new(&graph, &seeds).threads(Threads::Auto);
        assert!(std::ptr::eq(ctx.graph(), &graph));
        assert!(std::ptr::eq(ctx.seeds(), &seeds));
        assert_eq!(ctx.thread_policy(), Threads::Auto);
    }
}
