//! Free-parameter representation of symmetric doubly-stochastic matrices.
//!
//! A symmetric doubly-stochastic `k x k` matrix has `k* = k(k-1)/2` degrees of freedom
//! (Section 4 of the paper). The estimators optimize over the free-parameter vector
//! `h ∈ R^{k*}` holding the entries `H_ij` with `i ≤ j, j ≠ k-1` (the upper triangle of
//! the leading `(k-1) x (k-1)` block); the remaining entries follow from symmetry and
//! the unit row/column sums (Eq. 6).
//!
//! This module provides the bijection `h ↔ H`, the structure projection of a full
//! matrix gradient `G = ∂E/∂H` onto the free parameters (the `S`-matrix contraction of
//! Proposition 4.7), and the restart points used by DCEr (Section 4.8).

use crate::error::{CoreError, Result};
use fg_sparse::DenseMatrix;
use rand::Rng;

/// Number of free parameters for `k` classes: `k* = k(k-1)/2`.
pub fn num_free_parameters(k: usize) -> usize {
    k * k.saturating_sub(1) / 2
}

/// The `(row, col)` position of each free parameter, in the canonical order used by the
/// paper's parameterization: the upper-triangular entries (including the diagonal) of
/// the leading `(k-1) x (k-1)` block, row by row.
pub fn free_parameter_positions(k: usize) -> Vec<(usize, usize)> {
    let mut positions = Vec::with_capacity(num_free_parameters(k));
    for i in 0..k.saturating_sub(1) {
        for j in i..k - 1 {
            positions.push((i, j));
        }
    }
    positions
}

/// Reconstruct the full `k x k` matrix from the free-parameter vector (Eq. 6).
///
/// The result is symmetric with unit row and column sums by construction; entries are
/// *not* clamped to `[0, 1]`, mirroring the paper's unconstrained parameterization.
pub fn free_to_matrix(h: &[f64], k: usize) -> Result<DenseMatrix> {
    let expected = num_free_parameters(k);
    if h.len() != expected {
        return Err(CoreError::InvalidConfig(format!(
            "expected {expected} free parameters for k = {k}, got {}",
            h.len()
        )));
    }
    if k == 0 {
        return Err(CoreError::InvalidConfig("k must be positive".into()));
    }
    let mut m = DenseMatrix::zeros(k, k);
    // Fill the leading (k-1) x (k-1) block from the parameters (symmetrically).
    for (&value, &(i, j)) in h.iter().zip(free_parameter_positions(k).iter()) {
        m.set(i, j, value);
        m.set(j, i, value);
    }
    if k == 1 {
        m.set(0, 0, 1.0);
        return Ok(m);
    }
    let last = k - 1;
    // Last column / row: H_{i,k} = 1 - sum_{l<k} H_{i,l}.
    for i in 0..last {
        let row_sum: f64 = (0..last).map(|l| m.get(i, l)).sum();
        m.set(i, last, 1.0 - row_sum);
        m.set(last, i, 1.0 - row_sum);
    }
    // Bottom-right corner: H_{k,k} = 2 - k + sum_{l,r<k} H_{l,r}.
    let block_sum: f64 = (0..last)
        .map(|l| (0..last).map(|r| m.get(l, r)).sum::<f64>())
        .sum();
    m.set(last, last, 2.0 - k as f64 + block_sum);
    Ok(m)
}

/// Extract the free-parameter vector from a (symmetric doubly-stochastic) matrix — the
/// inverse of [`free_to_matrix`].
pub fn matrix_to_free(m: &DenseMatrix) -> Result<Vec<f64>> {
    if !m.is_square() {
        return Err(CoreError::InvalidInput(format!(
            "matrix must be square, got {}x{}",
            m.rows(),
            m.cols()
        )));
    }
    let k = m.rows();
    Ok(free_parameter_positions(k)
        .into_iter()
        .map(|(i, j)| m.get(i, j))
        .collect())
}

/// Project a full-matrix gradient `G = ∂E/∂H` onto the free parameters, applying the
/// structure matrices of Proposition 4.7:
///
/// * off-diagonal parameter `(i, j)`, `i < j`:
///   `G_ij + G_ji - G_ik - G_kj - G_jk - G_ki + 2 G_kk`
/// * diagonal parameter `(i, i)`:
///   `G_ii - G_ik - G_ki + G_kk`
///
/// where `k` denotes the last row/column index.
pub fn project_gradient(g: &DenseMatrix) -> Result<Vec<f64>> {
    if !g.is_square() {
        return Err(CoreError::InvalidInput(format!(
            "gradient must be square, got {}x{}",
            g.rows(),
            g.cols()
        )));
    }
    let k = g.rows();
    if k == 0 {
        return Ok(Vec::new());
    }
    let last = k - 1;
    let mut out = Vec::with_capacity(num_free_parameters(k));
    for (i, j) in free_parameter_positions(k) {
        let value = if i == j {
            g.get(i, i) - g.get(i, last) - g.get(last, i) + g.get(last, last)
        } else {
            g.get(i, j) + g.get(j, i)
                - g.get(i, last)
                - g.get(last, j)
                - g.get(j, last)
                - g.get(last, i)
                + 2.0 * g.get(last, last)
        };
        out.push(value);
    }
    Ok(out)
}

/// The uniform starting point: every free parameter equals `1/k` (so the reconstructed
/// matrix is the uninformative uniform matrix).
pub fn uniform_start(k: usize) -> Vec<f64> {
    vec![1.0 / k as f64; num_free_parameters(k)]
}

/// Restart points for DCEr (Section 4.8): the uniform point perturbed into the
/// hyper-quadrants of the parameter space, each free parameter set to `1/k ± δ` with
/// `δ < 1/k²`. For small `k*` all `2^{k*}` quadrants are enumerated; otherwise the
/// quadrant signs are sampled uniformly at random until `max_restarts` points exist.
pub fn restart_points<R: Rng + ?Sized>(
    k: usize,
    max_restarts: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let k_star = num_free_parameters(k);
    let delta = 0.5 / (k as f64 * k as f64);
    let base = 1.0 / k as f64;
    let mut points = Vec::new();
    // Always include the uniform point itself first.
    points.push(uniform_start(k));
    if k_star == 0 || max_restarts <= 1 {
        return points;
    }
    let total_quadrants = if k_star < 20 {
        1usize << k_star
    } else {
        usize::MAX
    };
    if total_quadrants <= max_restarts.saturating_sub(1) {
        for mask in 0..total_quadrants {
            let point: Vec<f64> = (0..k_star)
                .map(|p| {
                    if mask >> p & 1 == 1 {
                        base + delta
                    } else {
                        base - delta
                    }
                })
                .collect();
            points.push(point);
        }
    } else {
        while points.len() < max_restarts {
            let point: Vec<f64> = (0..k_star)
                .map(|_| {
                    if rng.gen::<bool>() {
                        base + delta
                    } else {
                        base - delta
                    }
                })
                .collect();
            points.push(point);
        }
    }
    points.truncate(max_restarts.max(1));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_parameter_count() {
        assert_eq!(num_free_parameters(2), 1);
        assert_eq!(num_free_parameters(3), 3);
        assert_eq!(num_free_parameters(4), 6);
        assert_eq!(num_free_parameters(7), 21); // the paper's "21 estimated parameters" for Cora
    }

    #[test]
    fn positions_cover_leading_block() {
        assert_eq!(free_parameter_positions(3), vec![(0, 0), (0, 1), (1, 1)]);
        assert_eq!(free_parameter_positions(2), vec![(0, 0)]);
        assert!(free_parameter_positions(1).is_empty());
    }

    #[test]
    fn paper_k3_reconstruction_example() {
        // The paper's example: h = [H11, H21, H22] reconstructs the full matrix. Our
        // canonical order is [H11, H12, H22]; with a symmetric matrix H12 = H21.
        let h = vec![0.2, 0.6, 0.2];
        let m = free_to_matrix(&h, 3).unwrap();
        let expected = DenseMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        assert!(m.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn reconstruction_is_symmetric_and_doubly_stochastic() {
        let h = vec![0.3, 0.25, 0.4];
        let m = free_to_matrix(&h, 3).unwrap();
        assert!(m.is_symmetric(1e-12));
        for s in m.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        for s in m.col_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_free_to_matrix_to_free() {
        let h = vec![0.1, 0.5, 0.2, 0.05, 0.3, 0.15];
        let m = free_to_matrix(&h, 4).unwrap();
        let back = matrix_to_free(&m).unwrap();
        for (a, b) in h.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_parameter_count_rejected() {
        assert!(free_to_matrix(&[0.1, 0.2], 3).is_err());
        assert!(free_to_matrix(&[], 0).is_err());
    }

    #[test]
    fn k1_is_trivially_one() {
        let m = free_to_matrix(&[], 1).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn k2_reconstruction() {
        let m = free_to_matrix(&[0.3], 2).unwrap();
        let expected = DenseMatrix::from_rows(&[vec![0.3, 0.7], vec![0.7, 0.3]]).unwrap();
        assert!(m.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matrix_to_free_rejects_non_square() {
        assert!(matrix_to_free(&DenseMatrix::zeros(2, 3)).is_err());
        assert!(project_gradient(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn gradient_projection_matches_finite_differences() {
        // For an arbitrary smooth scalar function E(H) = sum_ij C_ij H_ij the projected
        // gradient must equal the finite-difference derivative of E(free_to_matrix(h)).
        let k = 3;
        let c = DenseMatrix::from_rows(&[
            vec![1.0, -2.0, 0.5],
            vec![0.3, 4.0, -1.0],
            vec![2.0, 0.7, -3.0],
        ])
        .unwrap();
        let energy = |h: &[f64]| -> f64 {
            let m = free_to_matrix(h, k).unwrap();
            m.hadamard(&c).unwrap().sum()
        };
        let h0 = vec![0.25, 0.4, 0.3];
        // Analytic: dE/dH = C, projected onto the free parameters.
        let analytic = project_gradient(&c).unwrap();
        let eps = 1e-6;
        for (p, &g) in analytic.iter().enumerate() {
            let mut plus = h0.clone();
            plus[p] += eps;
            let mut minus = h0.clone();
            minus[p] -= eps;
            let numeric = (energy(&plus) - energy(&minus)) / (2.0 * eps);
            assert!(
                (numeric - g).abs() < 1e-5,
                "param {p}: numeric {numeric} vs analytic {g}"
            );
        }
    }

    #[test]
    fn uniform_start_reconstructs_uniform_matrix() {
        let m = free_to_matrix(&uniform_start(4), 4).unwrap();
        for &v in m.data() {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn restart_points_enumerate_quadrants_for_small_k() {
        let mut rng = StdRng::seed_from_u64(0);
        // k = 2 -> k* = 1 -> 2 quadrants + uniform = 3 points available.
        let pts = restart_points(2, 10, &mut rng);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], uniform_start(2));
        assert!(pts[1][0] != 0.5);
    }

    #[test]
    fn restart_points_respect_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let pts = restart_points(3, 4, &mut rng);
        assert_eq!(pts.len(), 4);
        // All restart points reconstruct to valid doubly-stochastic matrices.
        for p in &pts {
            let m = free_to_matrix(p, 3).unwrap();
            assert!(m.is_symmetric(1e-12));
            for s in m.row_sums() {
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn restart_points_for_large_k_are_sampled() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts = restart_points(7, 10, &mut rng); // k* = 21 -> sampling path
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0], uniform_start(7));
    }
}
