//! Path counting through a low-rank spectral factor (the `V·Λ·Vᵀ` backend).
//!
//! Substituting the rank-`r` factorization `W ≈ V·Λ·Vᵀ` into the recurrences of
//! Proposition 4.3 collapses every per-length product to **factor space**: with
//! `Y = VᵀX` (`r x k`) the plain-path intermediate becomes
//! `VᵀN(ℓ) ≈ Λ·VᵀN(ℓ-1)` and the non-backtracking one
//! `VᵀN(ℓ) ≈ Λ·VᵀN(ℓ-1) − G·VᵀN(ℓ-2)` where `G = Vᵀ(D−I)V` is precomputed once
//! inside the [`LowRankFactor`]. The count matrices are then
//! `M̂(ℓ) = Yᵀ·C(ℓ)` with `C(ℓ) = VᵀN(ℓ)`.
//!
//! Per-length cost: `O(r²·k)` — independent of the edge count **and** the node
//! count, versus `O(m·k)` for the exact backend. Node-proportional work happens
//! exactly twice, both one-time: building `Y` / `Z` from the labeled rows of `V`
//! (`O(labeled·r)`) and the eigensolve itself (amortized across every summarize
//! on the same graph via the factor cache and the `.fgv` store tier).
//!
//! **Exactness at full rank.** When `r = n`, `V` is orthogonal and `WV = VΛ`
//! exactly, so `VᵀW = ΛVᵀ` and `Vᵀ(D−I) = G·Vᵀ`: the factor-space recurrence
//! reproduces `VᵀN(ℓ)` with no approximation, and `M̂(ℓ) = (XᵀV)(VᵀN(ℓ)) =
//! XᵀN(ℓ) = M(ℓ)` up to solver tolerance — the oracle gate the tests and the CI
//! job enforce. Below full rank the truncation error is governed by the
//! discarded eigenvalues `|λ_{r+1}|, …`, which the `accuracy_vs_rank` sweep
//! measures end to end.
//!
//! All recurrence arithmetic is serial dense algebra on `r x k` / `r x r`
//! matrices — no thread policy enters, so results are trivially bit-identical at
//! any thread count (the eigensolve behind the factor carries its own
//! bit-identical guarantee).

use crate::error::{CoreError, Result};
use fg_graph::{LowRankFactor, SeedLabels};
use fg_sparse::DenseMatrix;

/// Scale row `j` of `c` by `lambda[j]` into a fresh matrix: the factor-space
/// application of one adjacency hop, `Λ·C`.
fn scale_rows_by(c: &DenseMatrix, lambda: &[f64]) -> DenseMatrix {
    let mut out = c.clone();
    for (j, &l) in lambda.iter().enumerate() {
        for v in out.row_mut(j) {
            *v *= l;
        }
    }
    out
}

/// Accumulate `Vᵀ·diag(weights)·X` (`r x k`) by iterating the labeled nodes:
/// column `class(i)` gains `weights[i] · V.row(i)`. With unit weights this is
/// `Y = VᵀX`; with degree weights it is `Z = VᵀDX`. `O(labeled·r)`.
fn project_seeds(
    factor: &LowRankFactor,
    seeds: &SeedLabels,
    weight: impl Fn(usize) -> f64,
) -> DenseMatrix {
    let r = factor.rank();
    let k = seeds.k();
    let mut out = DenseMatrix::zeros(r, k);
    for i in 0..seeds.n() {
        if let Some(c) = seeds.get(i) {
            let w = weight(i);
            for (j, &v) in factor.v().row(i).iter().enumerate() {
                out.add_at(j, c, w * v);
            }
        }
    }
    out
}

/// Compute the raw class-to-class count matrices `M̂(1)..M̂(ℓmax)` through the
/// factor-space recurrence (see the [module docs](self)). Drop-in compatible
/// with the exact counting kernel behind [`summarize`](crate::paths::summarize):
/// same shapes, same prefix-stability (the length-ℓ prefix of a longer run is
/// bit-identical to a shorter run), exact at full rank.
///
/// Public for benchmarking the recurrence in isolation; estimator code should
/// request the low-rank backend through a
/// [`SummaryConfig`](crate::paths::SummaryConfig) instead so factors are cached.
pub fn lowrank_path_counts(
    factor: &LowRankFactor,
    seeds: &SeedLabels,
    max_length: usize,
    non_backtracking: bool,
) -> Result<Vec<DenseMatrix>> {
    if seeds.n() != factor.num_nodes() {
        return Err(CoreError::InvalidInput(format!(
            "seed labels cover {} nodes but the factor was computed on {}",
            seeds.n(),
            factor.num_nodes()
        )));
    }
    if max_length == 0 {
        return Err(CoreError::InvalidConfig(
            "max_length must be at least 1".into(),
        ));
    }
    let lambda = factor.lambda();
    let y = project_seeds(factor, seeds, |_| 1.0);
    let yt = y.transpose();

    let mut counts = Vec::with_capacity(max_length);
    // C(1) = Λ·Y for both counting modes.
    let mut prev1 = scale_rows_by(&y, lambda);
    counts.push(yt.matmul(&prev1)?);

    if max_length >= 2 {
        // C(2) = Λ·C(1), minus Z = VᵀDX in non-backtracking mode.
        let mut cur = scale_rows_by(&prev1, lambda);
        if non_backtracking {
            let degrees = factor.degrees();
            let z = project_seeds(factor, seeds, |i| degrees[i]);
            cur = cur.sub(&z)?;
        }
        counts.push(yt.matmul(&cur)?);
        let mut prev2 = prev1;
        prev1 = cur;

        for _ell in 3..=max_length {
            // C(ℓ) = Λ·C(ℓ-1) − G·C(ℓ-2) (the G term only in NB mode).
            let mut next = scale_rows_by(&prev1, lambda);
            if non_backtracking {
                next = next.sub(&factor.g().matmul(&prev2)?)?;
            }
            counts.push(yt.matmul(&next)?);
            prev2 = prev1;
            prev1 = next;
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::compute_path_counts;
    use fg_graph::{FactorConfig, Graph, Labeling};
    use fg_sparse::Threads;

    fn test_graph() -> Graph {
        // Cycles plus a pendant: exercises both NB corrections.
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    fn full_seeds(graph: &Graph) -> SeedLabels {
        let labels: Vec<usize> = (0..graph.num_nodes()).map(|i| i % 2).collect();
        let labeling = Labeling::new(labels, 2).unwrap();
        SeedLabels::fully_labeled(&labeling)
    }

    #[test]
    fn full_rank_matches_exact_counts_both_modes() {
        let graph = test_graph();
        let seeds = full_seeds(&graph);
        let n = graph.num_nodes();
        let factor =
            LowRankFactor::compute(&graph, &FactorConfig::with_rank(n), Threads::Serial).unwrap();
        for nb in [false, true] {
            let exact = compute_path_counts(&graph, &seeds, 5, nb, Threads::Serial).unwrap();
            let lowrank = lowrank_path_counts(&factor, &seeds, 5, nb).unwrap();
            for (l, (e, a)) in exact.iter().zip(lowrank.iter()).enumerate() {
                assert!(
                    e.approx_eq(a, 1e-7),
                    "full-rank counts diverge at length {} (nb={nb})",
                    l + 1
                );
            }
        }
    }

    #[test]
    fn partial_labels_match_exact_at_full_rank() {
        let graph = test_graph();
        let seeds = SeedLabels::new(vec![Some(0), None, Some(1), None, None, Some(0)], 2).unwrap();
        let factor =
            LowRankFactor::compute(&graph, &FactorConfig::with_rank(6), Threads::Serial).unwrap();
        let exact = compute_path_counts(&graph, &seeds, 4, true, Threads::Serial).unwrap();
        let lowrank = lowrank_path_counts(&factor, &seeds, 4, true).unwrap();
        for (e, a) in exact.iter().zip(lowrank.iter()) {
            assert!(e.approx_eq(a, 1e-8));
        }
    }

    #[test]
    fn prefix_is_stable_in_max_length() {
        let graph = test_graph();
        let seeds = full_seeds(&graph);
        let factor =
            LowRankFactor::compute(&graph, &FactorConfig::with_rank(4), Threads::Serial).unwrap();
        let long = lowrank_path_counts(&factor, &seeds, 5, true).unwrap();
        let short = lowrank_path_counts(&factor, &seeds, 2, true).unwrap();
        for (l, s) in long.iter().zip(short.iter()) {
            assert_eq!(l.data(), s.data(), "prefix must be bit-identical");
        }
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let graph = test_graph();
        let seeds = full_seeds(&graph);
        let factor =
            LowRankFactor::compute(&graph, &FactorConfig::with_rank(3), Threads::Serial).unwrap();
        assert!(lowrank_path_counts(&factor, &seeds, 0, true).is_err());
        let wrong = SeedLabels::new(vec![Some(0), None], 2).unwrap();
        assert!(lowrank_path_counts(&factor, &wrong, 3, true).is_err());
    }
}
