//! Nelder–Mead downhill-simplex minimization.
//!
//! Used by the Holdout baseline (Section 4.1), whose objective — the negative labeling
//! accuracy over holdout sets — is a step function of the parameters and therefore has
//! no useful gradient. The paper uses SciPy's Nelder–Mead for exactly this reason.

use crate::error::{CoreError, Result};

/// Configuration for the Nelder–Mead optimizer.
#[derive(Debug, Clone)]
pub struct NelderMeadConfig {
    /// Maximum number of objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the spread of simplex values.
    pub value_tolerance: f64,
    /// Convergence tolerance on the simplex diameter.
    pub simplex_tolerance: f64,
    /// Initial simplex edge length around the starting point.
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_evaluations: 2000,
            value_tolerance: 1e-8,
            simplex_tolerance: 1e-8,
            initial_step: 0.1,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NelderMeadOutcome {
    /// The best point found.
    pub x: Vec<f64>,
    /// The objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
    /// Whether the simplex collapsed below the tolerances before the budget ran out.
    pub converged: bool,
}

/// Minimize a black-box function with the Nelder–Mead simplex algorithm
/// (reflection / expansion / contraction / shrink with the standard coefficients).
///
/// A convenience wrapper over [`nelder_mead_batch`] that evaluates each batch
/// serially in index order — callers whose objective evaluations are independent and
/// expensive (e.g. the Holdout estimator's full propagations) can instead supply a
/// batch evaluator that fans the candidate points out across threads.
pub fn nelder_mead<F>(
    mut objective: F,
    x0: &[f64],
    config: &NelderMeadConfig,
) -> Result<NelderMeadOutcome>
where
    F: FnMut(&[f64]) -> f64,
{
    nelder_mead_batch(
        |points: &[Vec<f64>]| points.iter().map(|p| objective(p)).collect(),
        x0,
        config,
    )
}

/// [`nelder_mead`] with a *batch* objective evaluator.
///
/// The algorithm's independently evaluable candidate groups — the `dim + 1` initial
/// simplex vertices and the `dim` shrunk points of every shrink step — are handed to
/// `evaluate` as one slice; the sequential decision points (reflection, expansion,
/// contraction) arrive as single-point batches. `evaluate` must return one value per
/// point, in point order. Because the *set* of evaluated points, their order, and the
/// evaluation count are identical to the serial algorithm for any correct evaluator,
/// a batch evaluator that runs the points in parallel and reassembles the results in
/// index order (e.g. via `fg_sparse::parallel::run_ordered_cells`) is bit-identical
/// to the serial run.
pub fn nelder_mead_batch<F>(
    mut evaluate: F,
    x0: &[f64],
    config: &NelderMeadConfig,
) -> Result<NelderMeadOutcome>
where
    F: FnMut(&[Vec<f64>]) -> Vec<f64>,
{
    let dim = x0.len();
    if dim == 0 {
        return Err(CoreError::InvalidConfig(
            "cannot optimize a zero-dimensional function".into(),
        ));
    }
    if config.max_evaluations < dim + 1 {
        return Err(CoreError::InvalidConfig(
            "max_evaluations must allow at least the initial simplex".into(),
        ));
    }
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    fn eval_batch<F: FnMut(&[Vec<f64>]) -> Vec<f64>>(
        evaluate: &mut F,
        points: Vec<Vec<f64>>,
        evaluations: &mut usize,
    ) -> Vec<f64> {
        *evaluations += points.len();
        let values = evaluate(&points);
        assert_eq!(
            values.len(),
            points.len(),
            "batch evaluator must return one value per point"
        );
        values
    }
    fn eval_one<F: FnMut(&[Vec<f64>]) -> Vec<f64>>(
        evaluate: &mut F,
        point: &[f64],
        evaluations: &mut usize,
    ) -> f64 {
        eval_batch(evaluate, vec![point.to_vec()], evaluations)[0]
    }

    let mut evaluations = 0usize;

    // Initial simplex: x0 plus a step along each coordinate — dim + 1 independent
    // points, evaluated as one batch.
    let mut points: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    points.push(x0.to_vec());
    for i in 0..dim {
        let mut p = x0.to_vec();
        p[i] += config.initial_step;
        points.push(p);
    }
    let values = eval_batch(&mut evaluate, points.clone(), &mut evaluations);
    let mut simplex: Vec<(Vec<f64>, f64)> = points.into_iter().zip(values).collect();

    let mut converged = false;
    while evaluations < config.max_evaluations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best_value = simplex[0].1;
        let worst_value = simplex[dim].1;
        // Convergence: value spread and simplex diameter both small.
        let diameter = simplex
            .iter()
            .skip(1)
            .map(|(p, _)| {
                p.iter()
                    .zip(simplex[0].0.iter())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if (worst_value - best_value).abs() <= config.value_tolerance
            && diameter <= config.simplex_tolerance
        {
            converged = true;
            break;
        }

        // Centroid of all but the worst point.
        let mut centroid = vec![0.0; dim];
        for (p, _) in simplex.iter().take(dim) {
            for (c, &x) in centroid.iter_mut().zip(p.iter()) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= dim as f64;
        }
        let worst = simplex[dim].clone();

        // Reflection.
        let reflected: Vec<f64> = centroid
            .iter()
            .zip(worst.0.iter())
            .map(|(&c, &w)| c + ALPHA * (c - w))
            .collect();
        let reflected_value = eval_one(&mut evaluate, &reflected, &mut evaluations);

        if reflected_value < simplex[0].1 {
            // Expansion.
            let expanded: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(&c, &w)| c + GAMMA * (c - w))
                .collect();
            let expanded_value = eval_one(&mut evaluate, &expanded, &mut evaluations);
            simplex[dim] = if expanded_value < reflected_value {
                (expanded, expanded_value)
            } else {
                (reflected, reflected_value)
            };
        } else if reflected_value < simplex[dim - 1].1 {
            simplex[dim] = (reflected, reflected_value);
        } else {
            // Contraction (toward the better of worst / reflected).
            let (base, base_value) = if reflected_value < worst.1 {
                (&reflected, reflected_value)
            } else {
                (&worst.0, worst.1)
            };
            let contracted: Vec<f64> = centroid
                .iter()
                .zip(base.iter())
                .map(|(&c, &b)| c + RHO * (b - c))
                .collect();
            let contracted_value = eval_one(&mut evaluate, &contracted, &mut evaluations);
            if contracted_value < base_value {
                simplex[dim] = (contracted, contracted_value);
            } else {
                // Shrink toward the best point: dim independent points, one batch.
                let best = simplex[0].0.clone();
                let shrunk_points: Vec<Vec<f64>> = simplex
                    .iter()
                    .skip(1)
                    .map(|(p, _)| {
                        best.iter()
                            .zip(p.iter())
                            .map(|(&b, &x)| b + SIGMA * (x - b))
                            .collect()
                    })
                    .collect();
                let shrunk_values =
                    eval_batch(&mut evaluate, shrunk_points.clone(), &mut evaluations);
                for (entry, shrunk) in simplex
                    .iter_mut()
                    .skip(1)
                    .zip(shrunk_points.into_iter().zip(shrunk_values))
                {
                    *entry = shrunk;
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, value) = simplex.swap_remove(0);
    Ok(NelderMeadOutcome {
        x,
        value,
        evaluations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic_bowl() {
        let outcome = nelder_mead(
            |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadConfig::default(),
        )
        .unwrap();
        assert!(outcome.converged);
        assert!((outcome.x[0] - 1.0).abs() < 1e-3);
        assert!((outcome.x[1] + 2.0).abs() < 1e-3);
        assert!(outcome.value < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock_reasonably() {
        let cfg = NelderMeadConfig {
            max_evaluations: 5000,
            ..NelderMeadConfig::default()
        };
        let outcome = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            &cfg,
        )
        .unwrap();
        assert!(outcome.value < 1e-3, "value {}", outcome.value);
    }

    #[test]
    fn handles_step_functions() {
        // A staircase objective (like negative accuracy): the optimizer should still
        // find a point in the lowest-valued region.
        let outcome = nelder_mead(
            |x| {
                if x[0] > 0.4 && x[0] < 0.6 {
                    0.0
                } else {
                    1.0
                }
            },
            &[0.45],
            &NelderMeadConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.value, 0.0);
    }

    #[test]
    fn respects_evaluation_budget() {
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[10.0],
            &NelderMeadConfig {
                max_evaluations: 50,
                ..NelderMeadConfig::default()
            },
        )
        .unwrap();
        assert!(count <= 55); // small overshoot allowed for the final simplex operations
    }

    #[test]
    fn batch_evaluator_is_bit_identical_to_serial_for_any_cell_order() {
        // Evaluate each batch through the parallel cell runner at several thread
        // counts: the evaluated points, their count, and the outcome must match the
        // serial closure exactly (this is the contract Holdout's parallel candidate
        // evaluation relies on).
        let objective =
            |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2) + x[2].abs();
        let cfg = NelderMeadConfig {
            max_evaluations: 400,
            ..NelderMeadConfig::default()
        };
        let serial = nelder_mead(objective, &[-1.2, 1.0, 0.5], &cfg).unwrap();
        for threads in [
            fg_sparse::Threads::Serial,
            fg_sparse::Threads::Fixed(2),
            fg_sparse::Threads::Fixed(4),
            fg_sparse::Threads::Auto,
        ] {
            let batched = nelder_mead_batch(
                |points: &[Vec<f64>]| {
                    fg_sparse::parallel::run_ordered_cells(points.len(), threads, |i| {
                        Ok::<f64, std::convert::Infallible>(objective(&points[i]))
                    })
                    .expect("objective is infallible")
                },
                &[-1.2, 1.0, 0.5],
                &cfg,
            )
            .unwrap();
            assert_eq!(serial.x, batched.x, "{threads:?}");
            assert_eq!(serial.value, batched.value, "{threads:?}");
            assert_eq!(serial.evaluations, batched.evaluations, "{threads:?}");
            assert_eq!(serial.converged, batched.converged, "{threads:?}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(nelder_mead(|_| 0.0, &[], &NelderMeadConfig::default()).is_err());
        let cfg = NelderMeadConfig {
            max_evaluations: 1,
            ..NelderMeadConfig::default()
        };
        assert!(nelder_mead(|x: &[f64]| x[0], &[0.0, 1.0, 2.0], &cfg).is_err());
    }
}
