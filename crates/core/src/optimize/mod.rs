//! Optimizers used by the estimation step.
//!
//! The paper uses off-the-shelf SciPy optimizers (SLSQP for the gradient-based energies,
//! Nelder–Mead for the gradient-free Holdout baseline). We provide the two equivalents:
//!
//! * [`gradient_descent`] — gradient descent with Armijo backtracking line search over
//!   the free-parameter vector; the doubly-stochastic constraints are enforced by the
//!   parameterization itself (Eq. 6), so the problem is unconstrained.
//! * [`mod@nelder_mead`] — a derivative-free downhill-simplex search used when only
//!   function evaluations are available (the Holdout baseline runs label propagation as
//!   a black-box subroutine).

pub mod gradient_descent;
pub mod nelder_mead;

pub use gradient_descent::{minimize, GradientDescentConfig, OptimizationOutcome};
pub use nelder_mead::{nelder_mead, nelder_mead_batch, NelderMeadConfig, NelderMeadOutcome};
