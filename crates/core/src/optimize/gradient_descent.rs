//! Gradient descent with Armijo backtracking line search.
//!
//! Minimizes an [`EnergyFunction`] over the free-parameter vector. Because the
//! doubly-stochastic and symmetry constraints are baked into the parameterization
//! (Eq. 6 of the paper), the search itself is unconstrained — exactly the second,
//! graph-size-independent step of the paper's two-step estimation (Fig. 2).

use crate::energy::EnergyFunction;
use crate::error::{CoreError, Result};
use fg_sparse::vector;

/// Configuration for the gradient-descent optimizer.
#[derive(Debug, Clone)]
pub struct GradientDescentConfig {
    /// Maximum number of descent iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the gradient's Euclidean norm.
    pub gradient_tolerance: f64,
    /// Convergence tolerance on the decrease of the objective between iterations.
    pub value_tolerance: f64,
    /// Initial step size tried at every iteration.
    pub initial_step: f64,
    /// Armijo sufficient-decrease constant in `(0, 1)`.
    pub armijo_c: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Smallest step size tried before giving up on an iteration.
    pub min_step: f64,
}

impl Default for GradientDescentConfig {
    fn default() -> Self {
        GradientDescentConfig {
            max_iterations: 500,
            gradient_tolerance: 1e-8,
            value_tolerance: 1e-12,
            initial_step: 1.0,
            armijo_c: 1e-4,
            backtrack: 0.5,
            min_step: 1e-14,
        }
    }
}

/// Result of a gradient-descent run.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The best free-parameter vector found.
    pub x: Vec<f64>,
    /// The objective value at `x`.
    pub value: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Number of objective evaluations (including line-search probes).
    pub evaluations: usize,
    /// Whether a convergence criterion was met before the iteration budget ran out.
    pub converged: bool,
}

/// Minimize `energy` starting from `x0`.
pub fn minimize<E: EnergyFunction + ?Sized>(
    energy: &E,
    x0: &[f64],
    config: &GradientDescentConfig,
) -> Result<OptimizationOutcome> {
    if config.max_iterations == 0 {
        return Err(CoreError::InvalidConfig(
            "max_iterations must be positive".into(),
        ));
    }
    if !(0.0..1.0).contains(&config.armijo_c) || !(0.0..1.0).contains(&config.backtrack) {
        return Err(CoreError::InvalidConfig(
            "armijo_c and backtrack must lie in (0, 1)".into(),
        ));
    }
    let mut x = x0.to_vec();
    let mut value = energy.value(&x)?;
    let mut evaluations = 1usize;
    if !value.is_finite() {
        return Err(CoreError::OptimizationFailed(
            "objective is not finite at the starting point".into(),
        ));
    }

    let mut iterations = 0;
    let mut converged = false;
    // The step size persists across iterations: after a successful step it is doubled,
    // after backtracking the reduced value carries over. This lets the search traverse
    // the nearly flat region around the uniform starting point (where the distance-
    // smoothed DCE gradient is very small) without thousands of micro-steps.
    let mut step = config.initial_step;
    let max_step = config.initial_step * 64.0;
    for _ in 0..config.max_iterations {
        let grad = energy.gradient(&x)?;
        let grad_norm = vector::norm2(&grad);
        iterations += 1;
        if !grad_norm.is_finite() {
            return Err(CoreError::OptimizationFailed(
                "gradient is not finite".into(),
            ));
        }
        if grad_norm <= config.gradient_tolerance {
            converged = true;
            break;
        }
        // Backtracking line search along the negative gradient.
        let mut improved = false;
        while step >= config.min_step {
            let candidate = vector::axpy(&x, -step, &grad);
            let cand_value = energy.value(&candidate)?;
            evaluations += 1;
            if cand_value.is_finite()
                && cand_value <= value - config.armijo_c * step * grad_norm * grad_norm
            {
                let decrease = value - cand_value;
                x = candidate;
                value = cand_value;
                improved = true;
                if decrease <= config.value_tolerance {
                    converged = true;
                }
                // Be more ambitious next iteration.
                step = (step * 2.0).min(max_step);
                break;
            }
            step *= config.backtrack;
        }
        if !improved {
            // No step produced a sufficient decrease: we are at (numerical) convergence.
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }

    Ok(OptimizationOutcome {
        x,
        value,
        iterations,
        evaluations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::MceEnergy;
    use crate::param::{free_to_matrix, uniform_start};
    use fg_sparse::DenseMatrix;

    /// A simple standalone quadratic energy for testing the optimizer in isolation.
    struct Quadratic {
        target: Vec<f64>,
        k: usize,
    }

    impl EnergyFunction for Quadratic {
        fn k(&self) -> usize {
            self.k
        }
        fn value(&self, free: &[f64]) -> crate::error::Result<f64> {
            Ok(free
                .iter()
                .zip(self.target.iter())
                .map(|(x, t)| (x - t) * (x - t))
                .sum())
        }
        fn gradient(&self, free: &[f64]) -> crate::error::Result<Vec<f64>> {
            Ok(free
                .iter()
                .zip(self.target.iter())
                .map(|(x, t)| 2.0 * (x - t))
                .collect())
        }
    }

    #[test]
    fn quadratic_is_minimized() {
        let q = Quadratic {
            target: vec![0.3, -0.2, 0.7],
            k: 3,
        };
        let outcome = minimize(&q, &[0.0, 0.0, 0.0], &GradientDescentConfig::default()).unwrap();
        assert!(outcome.converged);
        assert!(outcome.value < 1e-10);
        for (x, t) in outcome.x.iter().zip(q.target.iter()) {
            assert!((x - t).abs() < 1e-5);
        }
    }

    #[test]
    fn mce_energy_recovers_target_matrix() {
        let target = DenseMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let energy = MceEnergy::new(target.clone()).unwrap();
        let outcome = minimize(
            &energy,
            &uniform_start(3),
            &GradientDescentConfig::default(),
        )
        .unwrap();
        let estimated = free_to_matrix(&outcome.x, 3).unwrap();
        assert!(estimated.approx_eq(&target, 1e-4));
    }

    #[test]
    fn zero_iterations_rejected() {
        let q = Quadratic {
            target: vec![0.0],
            k: 2,
        };
        let cfg = GradientDescentConfig {
            max_iterations: 0,
            ..GradientDescentConfig::default()
        };
        assert!(minimize(&q, &[1.0], &cfg).is_err());
    }

    #[test]
    fn invalid_line_search_constants_rejected() {
        let q = Quadratic {
            target: vec![0.0],
            k: 2,
        };
        let cfg = GradientDescentConfig {
            armijo_c: 1.5,
            ..GradientDescentConfig::default()
        };
        assert!(minimize(&q, &[1.0], &cfg).is_err());
    }

    #[test]
    fn starting_at_the_minimum_converges_immediately() {
        let q = Quadratic {
            target: vec![0.5, 0.5],
            k: 2,
        };
        let outcome = minimize(&q, &[0.5, 0.5], &GradientDescentConfig::default()).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.iterations, 1);
        assert!(outcome.value < 1e-15);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let q = Quadratic {
            target: vec![100.0; 3],
            k: 3,
        };
        let cfg = GradientDescentConfig {
            max_iterations: 3,
            ..GradientDescentConfig::default()
        };
        let outcome = minimize(&q, &[0.0; 3], &cfg).unwrap();
        assert!(outcome.iterations <= 3);
    }
}
