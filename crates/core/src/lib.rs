//! # fg-core — Factorized Graph Representations for SSL from Sparse Data
//!
//! Rust implementation of the compatibility-estimation methods from
//! *"Factorized Graph Representations for Semi-Supervised Learning from Sparse Data"*
//! (Krishna Kumar P., Paul Langton, Wolfgang Gatterbauer — SIGMOD 2020).
//!
//! Given an undirected graph in which only a tiny fraction of nodes carry class labels,
//! and in which classes may attract or repel each other arbitrarily (homophily,
//! heterophily, or any mix), this crate estimates the class-compatibility matrix `H`
//! directly from the sparsely labeled graph and then labels the remaining nodes with
//! linearized belief propagation — no domain expert or heuristic required.
//!
//! ## The two-step approach
//!
//! 1. **Factorized graph summarization** ([`paths`]): compute the observed class
//!    statistics of length-ℓ non-backtracking paths between labeled nodes in
//!    `O(m·k·ℓmax)` without ever materializing `Wℓ`.
//! 2. **Graph-size-independent optimization** ([`energy`], [`optimize`],
//!    [`estimators`]): fit a symmetric doubly-stochastic `H` to those `k x k` sketches
//!    with an explicit gradient, restarting from multiple points (DCEr).
//!
//! ## Quick example
//!
//! The [`Pipeline`] builder combines any estimator with any propagation backend:
//!
//! ```
//! use fg_core::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A synthetic graph with planted heterophilous compatibilities.
//! let config = GeneratorConfig::balanced(1000, 10.0, 3, 8.0).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let synthetic = generate(&config, &mut rng).unwrap();
//!
//! // Only 5% of the nodes are labeled.
//! let seeds = synthetic.labeling.stratified_sample(0.05, &mut rng);
//!
//! // Estimate the compatibilities with DCEr, then label the remaining nodes with
//! // LinBP (the default backend; swap in LoopyBp, Harmonic, or RandomWalk freely).
//! let report = Pipeline::on(&synthetic.graph)
//!     .seeds(&seeds)
//!     .estimator(DceWithRestarts::default())
//!     .propagator(LinBp::default())
//!     .run()
//!     .unwrap();
//!
//! let accuracy = report.accuracy(&synthetic.labeling, &seeds);
//! assert!(accuracy > 1.0 / 3.0); // well above random
//! assert_eq!(report.estimator, "DCEr(r=10,l=5,lambda=10)");
//! assert_eq!(report.propagator, "LinBP");
//! println!("{}", report.to_json()); // timings, iterations, convergence, ε
//! ```
//!
//! Comparison runs that evaluate several estimators on one seeded graph share a
//! cached [`EstimationContext`], so the `O(m·k·ℓmax)` summarization runs once:
//!
//! ```no_run
//! # use fg_core::prelude::*;
//! # fn demo(graph: &Graph, seeds: &SeedLabels) -> fg_core::Result<()> {
//! let ctx = EstimationContext::new(graph, seeds).threads(Threads::Auto);
//! ctx.warm(&SummaryConfig::with_max_length(5))?; // one O(m·k·lmax) summarization
//! for estimator in [estimator_by_name("mce").unwrap(), estimator_by_name("dcer").unwrap()] {
//!     let report = Pipeline::on(graph)
//!         .seeds(seeds)
//!         .context(&ctx)
//!         .estimator(estimator)
//!         .run()?;
//!     println!("{}", report.to_json()); // summarize vs optimize timings split out
//! }
//! assert_eq!(ctx.summary_computations(), 1); // every request came from the cache
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod energy;
pub mod error;
pub mod estimators;
pub mod incremental;
pub mod lowrank_counts;
pub mod normalization;
pub mod optimize;
pub mod param;
pub mod paths;
pub mod pipeline;
pub mod store;

pub use context::{EstimationContext, SummaryCache};
pub use energy::{distance_weights, DceEnergy, EnergyFunction, LceEnergy, MceEnergy};
pub use error::{CoreError, Result};
pub use estimators::registry::{
    estimator_by_name, estimator_by_name_with, estimator_names, estimator_registry,
    EstimatorOptions, EstimatorSpec,
};
pub use estimators::{
    CompatibilityEstimator, DceConfig, DceWithRestarts, DistantCompatibilityEstimation,
    GoldStandard, HoldoutConfig, HoldoutEstimation, LinearCompatibilityEstimation,
    MyopicCompatibilityEstimation, TwoValueHeuristic,
};
pub use incremental::{validate_mutations, ApplyOutcome, DeltaStats, DeltaSummary, SeedMutation};
pub use lowrank_counts::lowrank_path_counts;
pub use normalization::NormalizationVariant;
pub use optimize::{
    minimize, nelder_mead, GradientDescentConfig, NelderMeadConfig, NelderMeadOutcome,
    OptimizationOutcome,
};
pub use param::{
    free_parameter_positions, free_to_matrix, matrix_to_free, num_free_parameters,
    project_gradient, restart_points, uniform_start,
};
pub use paths::{
    explicit_adjacency_power, explicit_nb_power, statistics_from_explicit, summarize,
    summarize_with, CountingBackend, GraphSummary, SummaryConfig, DEFAULT_LOWRANK_RANK,
};
pub use pipeline::{Pipeline, PipelineReport};
pub use store::{
    FactorStoreMeta, GcOutcome, GraphStoreMeta, HStoreMeta, StoreEntry, StoreMeta, StoredCounts,
    SummaryStore,
};

/// Convenience re-exports covering the most common end-to-end usage: graph generation,
/// estimation, propagation, and metrics.
pub mod prelude {
    pub use crate::context::{EstimationContext, SummaryCache};
    pub use crate::estimators::registry::{estimator_by_name, EstimatorOptions};
    pub use crate::estimators::{
        CompatibilityEstimator, DceConfig, DceWithRestarts, DistantCompatibilityEstimation,
        GoldStandard, HoldoutEstimation, LinearCompatibilityEstimation,
        MyopicCompatibilityEstimation, TwoValueHeuristic,
    };
    pub use crate::incremental::{DeltaSummary, SeedMutation};
    pub use crate::normalization::NormalizationVariant;
    pub use crate::paths::{summarize, summarize_with, CountingBackend, SummaryConfig};
    pub use crate::pipeline::{Pipeline, PipelineReport};
    pub use crate::store::SummaryStore;
    pub use fg_graph::{
        generate, measure_compatibilities, CompatibilityMatrix, DegreeDistribution, Fingerprint,
        GeneratorConfig, Graph, Labeling, SeedLabels,
    };
    pub use fg_propagation::{
        harmonic_functions, multi_rank_walk, propagate, Harmonic, HarmonicConfig, LinBp,
        LinBpConfig, LoopyBp, PropagationOutcome, Propagator, RandomWalk, RandomWalkConfig,
    };
    pub use fg_sparse::{DenseMatrix, Threads};
}
