//! End-to-end estimation + propagation pipeline.
//!
//! The paper's headline workflow (Problem 1.2): given a sparsely labeled graph with
//! unknown compatibilities, first *estimate* `H` (a cheap preprocessing step), then
//! *propagate* the seed labels with LinBP using the estimate. This module wires the two
//! stages together and records the timings reported in the scalability experiments.

use crate::error::Result;
use crate::estimators::CompatibilityEstimator;
use fg_graph::{Graph, Labeling, SeedLabels};
use fg_propagation::{propagate, LinBpConfig, PropagationResult};
use fg_sparse::DenseMatrix;
use std::time::{Duration, Instant};

/// Result of an end-to-end pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Name of the estimator that produced `estimated_h`.
    pub estimator: &'static str,
    /// The estimated compatibility matrix.
    pub estimated_h: DenseMatrix,
    /// The propagation result obtained with the estimate.
    pub propagation: PropagationResult,
    /// Wall-clock time of the estimation step.
    pub estimation_time: Duration,
    /// Wall-clock time of the propagation step.
    pub propagation_time: Duration,
}

impl PipelineResult {
    /// End-to-end macro-averaged accuracy on the unlabeled nodes.
    pub fn accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        self.propagation.accuracy(truth, seeds)
    }

    /// L2 (Frobenius) distance between the estimate and a reference matrix
    /// (typically the gold standard).
    pub fn l2_from(&self, reference: &DenseMatrix) -> Result<f64> {
        Ok(self.estimated_h.frobenius_distance(reference)?)
    }
}

/// Estimate `H` with the given estimator and then label the remaining nodes with LinBP.
pub fn estimate_and_propagate<E: CompatibilityEstimator + ?Sized>(
    estimator: &E,
    graph: &Graph,
    seeds: &SeedLabels,
    propagation_config: &LinBpConfig,
) -> Result<PipelineResult> {
    let est_start = Instant::now();
    let estimated_h = estimator.estimate(graph, seeds)?;
    let estimation_time = est_start.elapsed();

    let prop_start = Instant::now();
    let propagation = propagate(graph, seeds, &estimated_h, propagation_config)?;
    let propagation_time = prop_start.elapsed();

    Ok(PipelineResult {
        estimator: estimator.name(),
        estimated_h,
        propagation,
        estimation_time,
        propagation_time,
    })
}

/// Propagate with an explicitly supplied compatibility matrix (no estimation step).
/// Used for the gold-standard and heuristic comparisons.
pub fn propagate_with(
    name: &'static str,
    h: &DenseMatrix,
    graph: &Graph,
    seeds: &SeedLabels,
    propagation_config: &LinBpConfig,
) -> Result<PipelineResult> {
    let prop_start = Instant::now();
    let propagation = propagate(graph, seeds, h, propagation_config)?;
    let propagation_time = prop_start.elapsed();
    Ok(PipelineResult {
        estimator: name,
        estimated_h: h.clone(),
        propagation,
        estimation_time: Duration::ZERO,
        propagation_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{DceWithRestarts, GoldStandard};
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_dcer_matches_gold_standard_closely() {
        let cfg = GeneratorConfig::balanced(2000, 15.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.03, &mut rng);
        let linbp = LinBpConfig::default();

        let gs = GoldStandard::new(syn.labeling.clone());
        let gs_result = estimate_and_propagate(&gs, &syn.graph, &seeds, &linbp).unwrap();
        let dcer = DceWithRestarts::default();
        let dcer_result = estimate_and_propagate(&dcer, &syn.graph, &seeds, &linbp).unwrap();

        let gs_acc = gs_result.accuracy(&syn.labeling, &seeds);
        let dcer_acc = dcer_result.accuracy(&syn.labeling, &seeds);
        assert!(
            dcer_acc > gs_acc - 0.08,
            "DCEr accuracy {dcer_acc} should be close to GS accuracy {gs_acc}"
        );
        assert!(gs_acc > 0.5, "GS accuracy {gs_acc} suspiciously low");
        assert_eq!(dcer_result.estimator, "DCEr");
        assert!(dcer_result.estimation_time > Duration::ZERO);
    }

    #[test]
    fn propagate_with_explicit_matrix() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let result = propagate_with(
            "GS",
            syn.planted_h.as_dense(),
            &syn.graph,
            &seeds,
            &LinBpConfig::default(),
        )
        .unwrap();
        assert_eq!(result.estimation_time, Duration::ZERO);
        assert_eq!(result.estimator, "GS");
        let l2 = result.l2_from(syn.planted_h.as_dense()).unwrap();
        assert!(l2 < 1e-12);
    }
}
