//! End-to-end estimation + propagation pipeline.
//!
//! The paper's headline workflow (Problem 1.2): given a sparsely labeled graph with
//! unknown compatibilities, first *estimate* `H` (a cheap preprocessing step), then
//! *propagate* the seed labels using the estimate. The [`Pipeline`] builder wires any
//! [`CompatibilityEstimator`] to any [`Propagator`] backend:
//!
//! ```text
//! Pipeline::on(&graph)
//!     .seeds(&seeds)
//!     .estimator(DceWithRestarts::default())
//!     .propagator(LinBp::default())      // or LoopyBp / Harmonic / RandomWalk
//!     .run()?
//! ```
//!
//! The result is a [`PipelineReport`] with per-stage wall-clock timings, the
//! propagation outcome (iterations, convergence, `ε`), and accuracy hooks — the
//! numbers reported in the paper's scalability experiments.

use crate::context::EstimationContext;
use crate::error::{CoreError, Result};
use crate::estimators::CompatibilityEstimator;
use crate::store::SummaryStore;
use fg_graph::{Graph, Labeling, SeedLabels};
use fg_obs::{Span, Trace};
use fg_propagation::{LinBp, PropagationOutcome, Propagator};
use fg_sparse::{DenseMatrix, Threads};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of an end-to-end [`Pipeline`] run: which stages ran, what they produced,
/// and how long each took.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Name of the estimation stage (estimator name, the label given to explicit
    /// compatibilities, or `"none"` when the backend ignores `H`).
    pub estimator: String,
    /// Name of the propagation backend that labeled the nodes.
    pub propagator: String,
    /// The compatibility matrix the propagation stage consumed.
    pub estimated_h: DenseMatrix,
    /// The unified propagation outcome (beliefs, predictions, iterations,
    /// convergence, `ε`).
    pub outcome: PropagationOutcome,
    /// Wall-clock time of the estimation stage (zero when `H` was supplied
    /// explicitly or not needed). Always `summarize_time + optimize_time`.
    pub estimation_time: Duration,
    /// Wall-clock time of the graph-summarization half of the estimation stage (the
    /// `O(m·k·ℓmax)` part; zero for estimators that consume no factorized summary and
    /// near-zero when a shared [`EstimationContext`] already holds the summary).
    pub summarize_time: Duration,
    /// Wall-clock time of the optimization half of the estimation stage (the
    /// graph-size-independent `k x k` fit).
    pub optimize_time: Duration,
    /// Wall-clock time of the propagation stage.
    pub propagation_time: Duration,
    /// How many `O(m·k·ℓmax)` summarizations this run actually performed (cache and
    /// store misses during the estimation stage). Zero when the summary came from a
    /// pre-warmed shared context or the persistent store — the warm-path proof the
    /// CI cache job asserts.
    pub summary_computations: usize,
    /// How many summary requests this run answered from a persistent
    /// [`SummaryStore`] instead of recomputing.
    pub summary_store_hits: usize,
    /// Whether this run served the estimated `H` itself from a persistent
    /// [`SummaryStore`] (`1`) instead of optimizing (`0`) — the warm path that skips
    /// *both* halves of the estimation stage. Only content-addressable estimators
    /// (see [`CompatibilityEstimator::content_addressable`]) participate.
    pub optimize_store_hits: usize,
    /// Macro-averaged accuracy on the unlabeled nodes (unweighted mean of per-class
    /// recalls), recorded by [`PipelineReport::evaluate`] when ground truth is
    /// available.
    pub accuracy: Option<f64>,
    /// Micro (plain) accuracy on the unlabeled nodes — the paper's "fraction of the
    /// remaining nodes that receive correct labels" — recorded by
    /// [`PipelineReport::evaluate`] alongside the macro value.
    pub micro_accuracy: Option<f64>,
    /// Fraction of unlabeled nodes whose belief row carries no information, so the
    /// abstain-aware labeling declines to predict. Recorded by
    /// [`PipelineReport::evaluate_abstain`].
    pub abstention_rate: Option<f64>,
    /// Macro-averaged accuracy on the unlabeled nodes with abstentions charged as
    /// misses (the abstain-aware counterpart of [`accuracy`](PipelineReport::accuracy)
    /// that does not inflate class-0 recall). Recorded by
    /// [`PipelineReport::evaluate_abstain`] when ground truth is available.
    pub abstaining_macro_accuracy: Option<f64>,
    /// The span capture of this run when tracing was requested via
    /// [`Pipeline::trace`]: every `pipeline → estimate → summarize → spmm` scope
    /// with monotonic timings. Render it with [`Trace::chrome_json`]
    /// (`chrome://tracing` / Perfetto) or read the aggregated span tree in
    /// [`PipelineReport::to_json`]'s `span_tree` field. Tracing only observes
    /// wall-clock time — predictions are byte-identical with it on or off.
    pub trace: Option<Trace>,
}

impl PipelineReport {
    /// End-to-end macro-averaged accuracy on the unlabeled nodes (computed on the
    /// fly; use [`PipelineReport::evaluate`] to also record it in the report).
    pub fn accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        self.outcome.accuracy(truth, seeds)
    }

    /// End-to-end micro accuracy on the unlabeled nodes (computed on the fly; use
    /// [`PipelineReport::evaluate`] to also record it in the report).
    pub fn micro_accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        self.outcome.micro_accuracy(truth, seeds)
    }

    /// Compute both accuracy variants against ground truth, record them in the
    /// report (so they appear in [`PipelineReport::to_json`]), and return the
    /// macro-averaged value.
    pub fn evaluate(&mut self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        let acc = self.accuracy(truth, seeds);
        self.accuracy = Some(acc);
        self.micro_accuracy = Some(self.micro_accuracy(truth, seeds));
        acc
    }

    /// Record the abstain-aware metrics: the abstention rate over the unlabeled
    /// nodes (always computable) and, when ground truth is supplied, the
    /// macro-averaged accuracy with abstentions charged as misses. Both appear in
    /// [`PipelineReport::to_json`] once recorded; returns the abstention rate.
    pub fn evaluate_abstain(&mut self, seeds: &SeedLabels, truth: Option<&Labeling>) -> f64 {
        let abstaining = self.outcome.predictions_or_abstain();
        let rate = fg_propagation::abstention_rate(&abstaining, &seeds.unlabeled_nodes());
        self.abstention_rate = Some(rate);
        if let Some(truth) = truth {
            self.abstaining_macro_accuracy = Some(self.outcome.abstaining_accuracy(truth, seeds));
        }
        rate
    }

    /// L2 (Frobenius) distance between the consumed compatibility matrix and a
    /// reference matrix (typically the gold standard).
    pub fn l2_from(&self, reference: &DenseMatrix) -> Result<f64> {
        Ok(self.estimated_h.frobenius_distance(reference)?)
    }

    /// Total wall-clock time across both stages.
    pub fn total_time(&self) -> Duration {
        self.estimation_time + self.propagation_time
    }

    /// Serialize the report (stage names, timings, iterations, convergence info, and
    /// the recorded accuracy if any) as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"estimator\":{}", json_string(&self.estimator)),
            format!("\"propagator\":{}", json_string(&self.propagator)),
            format!(
                "\"estimation_seconds\":{:.6}",
                self.estimation_time.as_secs_f64()
            ),
            format!(
                "\"summarize_seconds\":{:.6}",
                self.summarize_time.as_secs_f64()
            ),
            format!(
                "\"optimize_seconds\":{:.6}",
                self.optimize_time.as_secs_f64()
            ),
            format!(
                "\"propagation_seconds\":{:.6}",
                self.propagation_time.as_secs_f64()
            ),
            format!("\"summary_computations\":{}", self.summary_computations),
            format!("\"summary_store_hits\":{}", self.summary_store_hits),
            format!("\"optimize_store_hits\":{}", self.optimize_store_hits),
            format!("\"iterations\":{}", self.outcome.iterations),
            format!("\"converged\":{}", self.outcome.converged),
            format!(
                "\"epsilon\":{}",
                match self.outcome.epsilon {
                    Some(e) => format!("{e}"),
                    None => "null".to_string(),
                }
            ),
            format!("\"nodes\":{}", self.outcome.predictions.len()),
            format!("\"classes\":{}", self.estimated_h.rows()),
        ];
        if let Some(acc) = self.accuracy {
            fields.push(format!("\"accuracy\":{acc}"));
        }
        if let Some(acc) = self.micro_accuracy {
            fields.push(format!("\"micro_accuracy\":{acc}"));
        }
        if let Some(rate) = self.abstention_rate {
            fields.push(format!("\"abstention_rate\":{rate}"));
        }
        if let Some(acc) = self.abstaining_macro_accuracy {
            fields.push(format!("\"abstaining_macro_accuracy\":{acc}"));
        }
        if let Some(trace) = &self.trace {
            let nodes: Vec<String> = trace
                .aggregate()
                .iter()
                .map(|node| {
                    format!(
                        "{{\"path\":{},\"depth\":{},\"count\":{},\"seconds\":{:.6}}}",
                        json_string(&node.path),
                        node.depth,
                        node.count,
                        node.total_ns as f64 / 1e9
                    )
                })
                .collect();
            fields.push(format!("\"span_tree\":[{}]", nodes.join(",")));
        }
        format!("{{{}}}", fields.join(","))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// How the propagation stage obtains its compatibility matrix.
enum HSource<'a> {
    /// Run a [`CompatibilityEstimator`] on the seeded graph.
    Estimate(Box<dyn CompatibilityEstimator + 'a>),
    /// Use an explicitly supplied matrix (the gold-standard / heuristic comparisons).
    Explicit(String, &'a DenseMatrix),
}

/// Fluent builder for an estimation + propagation run.
///
/// Required: a graph ([`Pipeline::on`]) and seed labels ([`Pipeline::seeds`]).
/// The `H` source is either an [`estimator`](Pipeline::estimator) or explicit
/// [`compatibilities`](Pipeline::compatibilities); backends that ignore `H`
/// (harmonic functions, random walks) need neither. The propagation backend
/// defaults to [`LinBp`] with default configuration.
pub struct Pipeline<'a> {
    graph: &'a Graph,
    seeds: Option<&'a SeedLabels>,
    h_source: Option<HSource<'a>>,
    estimator_label: Option<String>,
    propagator: Option<Box<dyn Propagator + 'a>>,
    propagator_label: Option<String>,
    threads: Option<Threads>,
    estimation_threads: Option<Threads>,
    context: Option<&'a EstimationContext<'a>>,
    summary_cache: Option<Arc<crate::context::SummaryCache>>,
    summary_store: Option<Arc<SummaryStore>>,
    trace: bool,
}

impl<'a> Pipeline<'a> {
    /// Start a pipeline on the given graph.
    pub fn on(graph: &'a Graph) -> Self {
        Pipeline {
            graph,
            seeds: None,
            h_source: None,
            estimator_label: None,
            propagator: None,
            propagator_label: None,
            threads: None,
            estimation_threads: None,
            context: None,
            summary_cache: None,
            summary_store: None,
            trace: false,
        }
    }

    /// The observed seed labels (required).
    pub fn seeds(mut self, seeds: &'a SeedLabels) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Estimate `H` with the given estimator. Accepts owned estimators, references,
    /// and boxed trait objects alike. Replaces any previously set `H` source.
    pub fn estimator(mut self, estimator: impl CompatibilityEstimator + 'a) -> Self {
        self.h_source = Some(HSource::Estimate(Box::new(estimator)));
        self
    }

    /// Skip estimation and propagate with an explicitly supplied compatibility
    /// matrix, labeled `name` in the report (e.g. `"GS"`). Replaces any previously
    /// set `H` source.
    pub fn compatibilities(mut self, name: impl Into<String>, h: &'a DenseMatrix) -> Self {
        self.h_source = Some(HSource::Explicit(name.into(), h));
        self
    }

    /// Override the estimator name recorded in the report (e.g. `"DCEr(r=10)"`).
    pub fn estimator_label(mut self, label: impl Into<String>) -> Self {
        self.estimator_label = Some(label.into());
        self
    }

    /// The propagation backend (defaults to [`LinBp`] with default configuration).
    /// Accepts owned backends, references, and boxed trait objects alike.
    pub fn propagator(mut self, propagator: impl Propagator + 'a) -> Self {
        self.propagator = Some(Box::new(propagator));
        self
    }

    /// Override the propagator name recorded in the report (e.g. `"LinBP(s=0.1)"`).
    pub fn propagator_label(mut self, label: impl Into<String>) -> Self {
        self.propagator_label = Some(label.into());
        self
    }

    /// Run the propagation stage under the given [`Threads`] policy. The parallel
    /// kernels are bit-identical to the serial ones, so this changes wall-clock time
    /// only, never the reported beliefs or predictions. When not called, the backend
    /// keeps whatever policy its own config carries.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Run the estimation stage under the given [`Threads`] policy (summarization and
    /// any other parallel estimator kernels). Like [`Pipeline::threads`] this changes
    /// wall-clock time only — the parallel kernels are bit-identical to the serial
    /// ones. When a shared [`context`](Pipeline::context) is supplied, the context's
    /// own policy governs the cached summarization and this setting only reaches the
    /// estimator's non-context kernels.
    pub fn estimation_threads(mut self, threads: Threads) -> Self {
        self.estimation_threads = Some(threads);
        self
    }

    /// Run the estimation stage against a shared [`EstimationContext`], so several
    /// pipelines (e.g. one per estimator in a comparison run) reuse one cached graph
    /// summary instead of each re-summarizing the graph. The context must describe
    /// the same graph and seed labels this pipeline runs on **by content**: matching
    /// is by [`Fingerprint`](fg_graph::Fingerprint), so a context built on an
    /// independently loaded copy of the same data is accepted;
    /// [`run`](Pipeline::run) rejects a context whose fingerprints differ.
    pub fn context(mut self, context: &'a EstimationContext<'a>) -> Self {
        self.context = Some(context);
        self
    }

    /// Attach a persistent [`SummaryStore`] to the estimation stage: when no shared
    /// [`context`](Pipeline::context) is supplied, the pipeline's private
    /// [`EstimationContext`] uses it as a read-through / write-back tier, so repeated
    /// invocations on the same dataset (even across processes) skip summarization
    /// entirely with bit-identical results. Ignored when a shared context is
    /// supplied — the context's own store configuration governs.
    pub fn summary_store(mut self, store: Arc<SummaryStore>) -> Self {
        self.summary_store = Some(store);
        self
    }

    /// Share an in-memory [`SummaryCache`](crate::context::SummaryCache) across
    /// pipelines on *different* `(graph, seeds)` pairs: the pipeline's private
    /// [`EstimationContext`] is built on this cache instead of a fresh one, so runs
    /// that happen to load the same dataset deduplicate their summarization (keyed by
    /// content fingerprint) while runs on distinct datasets overlap. This is the
    /// manifest-runner / serving-session variant of [`context`](Pipeline::context),
    /// which shares a *fully built* context for one fixed pair. Ignored when a
    /// shared context is supplied. The report's counters stay per-key, so sharing a
    /// cache never changes the numbers a run reports for itself.
    pub fn summary_cache(mut self, cache: Arc<crate::context::SummaryCache>) -> Self {
        self.summary_cache = Some(cache);
        self
    }

    /// Capture a hierarchical span trace of this run ([`fg_obs::start_capture`] /
    /// [`fg_obs::finish_capture`] around the stages), recorded into
    /// [`PipelineReport::trace`]. The capture is process-wide, so concurrent
    /// pipelines with tracing enabled would interleave into one capture — the
    /// intended owner is a single CLI invocation (`fg classify --trace-out`) or
    /// test. Tracing never changes results (a root test pins the predictions
    /// byte-identical with tracing on and off).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Execute both stages and collect the [`PipelineReport`].
    pub fn run(self) -> Result<PipelineReport> {
        let capture = self.trace;
        if capture {
            fg_obs::start_capture();
        }
        let result = self.run_stages();
        // Disarm on every path (including errors) so a failed traced run never
        // leaves the process-wide collector armed.
        let trace = if capture {
            Some(fg_obs::finish_capture())
        } else {
            None
        };
        let mut report = result?;
        report.trace = trace;
        Ok(report)
    }

    fn run_stages(self) -> Result<PipelineReport> {
        let pipeline_span = Span::enter("pipeline");
        let seeds = self.seeds.ok_or_else(|| {
            CoreError::InvalidConfig("Pipeline requires seed labels: call .seeds(...)".into())
        })?;
        let mut propagator: Box<dyn Propagator + 'a> = match self.propagator {
            Some(p) => p,
            None => Box::new(LinBp::default()),
        };
        if let Some(threads) = self.threads {
            propagator = propagator.with_threads(threads);
        }

        if let Some(ctx) = self.context {
            // A shared context must describe this pipeline's inputs, or its cached
            // statistics would silently belong to a different problem. Matching is by
            // content fingerprint — pointer equality is only a fast path that skips
            // hashing — so separately loaded copies of the same data are accepted.
            let graph_matches = std::ptr::eq(ctx.graph(), self.graph)
                || ctx.graph_fingerprint() == self.graph.fingerprint();
            let seeds_matches =
                std::ptr::eq(ctx.seeds(), seeds) || ctx.seed_fingerprint() == seeds.fingerprint();
            if !graph_matches || !seeds_matches {
                return Err(CoreError::InvalidConfig(
                    "the shared EstimationContext was built on a different graph or \
                     seed set (content fingerprints do not match) than this pipeline \
                     runs on"
                        .into(),
                ));
            }
        }

        // An uninformative placeholder for backends that never read H.
        let uniform_h = |seeds: &SeedLabels| {
            let k = seeds.k();
            DenseMatrix::filled(k, k, 1.0 / k as f64)
        };
        let (h, estimator_name, summarize_time, optimize_time, computations, store_hits, h_hits) =
            match self.h_source {
                Some(HSource::Estimate(estimator)) if !propagator.uses_compatibilities() => {
                    // The backend ignores H: skip the (potentially expensive)
                    // estimation stage entirely and record that it was skipped.
                    let base = self.estimator_label.unwrap_or_else(|| estimator.name());
                    (
                        uniform_h(seeds),
                        format!("{base} (skipped)"),
                        Duration::ZERO,
                        Duration::ZERO,
                        0,
                        0,
                        0,
                    )
                }
                Some(HSource::Estimate(estimator)) => {
                    let estimator: Box<dyn CompatibilityEstimator + 'a> =
                        match self.estimation_threads {
                            Some(threads) => estimator.with_threads(threads),
                            None => estimator,
                        };
                    let name = self.estimator_label.unwrap_or_else(|| estimator.name());
                    // Every estimation run goes through a context (a private one when
                    // no shared context was supplied) so the summarize and optimize
                    // halves can be timed separately: warming the summary first makes
                    // the subsequent estimate call a pure optimization.
                    let owned_ctx;
                    let ctx: &EstimationContext<'_> = match self.context {
                        Some(shared) => shared,
                        None => {
                            let threads = self.estimation_threads.unwrap_or(Threads::Serial);
                            let mut built = match &self.summary_cache {
                                Some(cache) => EstimationContext::with_cache(
                                    self.graph,
                                    seeds,
                                    Arc::clone(cache),
                                ),
                                None => EstimationContext::new(self.graph, seeds),
                            }
                            .threads(threads);
                            if let Some(store) = &self.summary_store {
                                built = built.store(Arc::clone(store));
                            }
                            owned_ctx = built;
                            &owned_ctx
                        }
                    };
                    // The persistent store keys estimated matrices by the canonical
                    // (un-overridden) estimator name; a hit skips both halves of the
                    // estimation stage with a bit-identical H. Non-content-addressable
                    // estimators (gold standard, heuristic) never touch the store.
                    let h_store = ctx
                        .summary_store()
                        .filter(|_| estimator.content_addressable())
                        .map(Arc::clone);
                    let store_key = estimator.name();
                    let stored_h = h_store.as_ref().and_then(|store| {
                        match store.load_h(
                            ctx.graph_fingerprint(),
                            ctx.seed_fingerprint(),
                            &store_key,
                        ) {
                            Ok(found) => found,
                            Err(e) => {
                                // Loud-rejection policy: warn, re-estimate, overwrite.
                                eprintln!("warning: {e}; re-estimating");
                                None
                            }
                        }
                    });
                    if let Some(h) = stored_h {
                        (h, name, Duration::ZERO, Duration::ZERO, 0, 0, 1)
                    } else {
                        // Counter deltas around this run, so the report stays
                        // meaningful for shared contexts with cumulative counters.
                        let estimate_span = Span::enter("estimate");
                        let computations_before = ctx.summary_computations();
                        let store_hits_before = ctx.store_hits();
                        let summarize_start = Instant::now();
                        if let Some(summary_config) = estimator.summary_requirements() {
                            ctx.warm(&summary_config)?;
                        }
                        let summarize_time = summarize_start.elapsed();
                        let optimize_span = Span::enter("optimize");
                        let optimize_start = Instant::now();
                        let h = estimator.estimate_with_context(ctx)?;
                        let optimize_time = optimize_start.elapsed();
                        drop(optimize_span);
                        drop(estimate_span);
                        if let Some(store) = &h_store {
                            // Best effort: a full disk never costs correctness.
                            if let Err(e) = store.save_h(
                                ctx.graph_fingerprint(),
                                ctx.seed_fingerprint(),
                                &store_key,
                                &h,
                            ) {
                                eprintln!("warning: cannot persist the estimate: {e}");
                            }
                        }
                        (
                            h,
                            name,
                            summarize_time,
                            optimize_time,
                            ctx.summary_computations() - computations_before,
                            ctx.store_hits() - store_hits_before,
                            0,
                        )
                    }
                }
                Some(HSource::Explicit(name, h)) => (
                    h.clone(),
                    self.estimator_label.unwrap_or(name),
                    Duration::ZERO,
                    Duration::ZERO,
                    0,
                    0,
                    0,
                ),
                None if !propagator.uses_compatibilities() => (
                    uniform_h(seeds),
                    "none".to_string(),
                    Duration::ZERO,
                    Duration::ZERO,
                    0,
                    0,
                    0,
                ),
                None => {
                    return Err(CoreError::InvalidConfig(format!(
                        "propagation backend '{}' needs a compatibility matrix: call \
                         .estimator(...) or .compatibilities(...)",
                        propagator.name()
                    )));
                }
            };

        let propagate_span = Span::enter("propagate");
        let prop_start = Instant::now();
        let outcome = propagator
            .propagate(self.graph, seeds, &h)
            .map_err(CoreError::Graph)?;
        let propagation_time = prop_start.elapsed();
        drop(propagate_span);
        drop(pipeline_span);

        Ok(PipelineReport {
            estimator: estimator_name,
            propagator: self.propagator_label.unwrap_or_else(|| propagator.name()),
            estimated_h: h,
            outcome,
            estimation_time: summarize_time + optimize_time,
            summarize_time,
            optimize_time,
            propagation_time,
            summary_computations: computations,
            summary_store_hits: store_hits,
            optimize_store_hits: h_hits,
            accuracy: None,
            micro_accuracy: None,
            abstention_rate: None,
            abstaining_macro_accuracy: None,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{DceWithRestarts, GoldStandard};
    use fg_graph::{generate, GeneratorConfig};
    use fg_propagation::{Harmonic, LinBpConfig, LoopyBp, RandomWalk};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_dcer_matches_gold_standard_closely() {
        let cfg = GeneratorConfig::balanced(2000, 15.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.03, &mut rng);

        let gs_result = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(GoldStandard::new(syn.labeling.clone()))
            .run()
            .unwrap();
        let dcer_result = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .run()
            .unwrap();

        let gs_acc = gs_result.accuracy(&syn.labeling, &seeds);
        let dcer_acc = dcer_result.accuracy(&syn.labeling, &seeds);
        assert!(
            dcer_acc > gs_acc - 0.08,
            "DCEr accuracy {dcer_acc} should be close to GS accuracy {gs_acc}"
        );
        assert!(gs_acc > 0.5, "GS accuracy {gs_acc} suspiciously low");
        assert_eq!(dcer_result.estimator, "DCEr(r=10,l=5,lambda=10)");
        assert_eq!(dcer_result.propagator, "LinBP");
        assert!(dcer_result.estimation_time > Duration::ZERO);
        // The estimation stage is split into its summarize and optimize halves.
        assert!(dcer_result.summarize_time > Duration::ZERO);
        assert!(dcer_result.optimize_time > Duration::ZERO);
        assert_eq!(
            dcer_result.estimation_time,
            dcer_result.summarize_time + dcer_result.optimize_time
        );
    }

    #[test]
    fn explicit_compatibilities_skip_estimation() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let result = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .compatibilities("GS", syn.planted_h.as_dense())
            .run()
            .unwrap();
        assert_eq!(result.estimation_time, Duration::ZERO);
        assert_eq!(result.estimator, "GS");
        let l2 = result.l2_from(syn.planted_h.as_dense()).unwrap();
        assert!(l2 < 1e-12);
    }

    #[test]
    fn any_estimator_propagator_combination_runs() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let backends: Vec<Box<dyn Propagator>> = vec![
            Box::new(LinBp::default()),
            Box::new(LoopyBp::default()),
            Box::new(Harmonic::default()),
            Box::new(RandomWalk::default()),
        ];
        for backend in backends {
            let name = backend.name();
            let report = Pipeline::on(&syn.graph)
                .seeds(&seeds)
                .estimator(DceWithRestarts::default())
                .propagator(backend)
                .run()
                .unwrap();
            assert_eq!(report.propagator, name);
            assert_eq!(report.outcome.predictions.len(), syn.graph.num_nodes());
        }
    }

    #[test]
    fn compatibility_free_backends_need_no_estimator() {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(27);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let report = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .propagator(Harmonic::default())
            .run()
            .unwrap();
        assert_eq!(report.estimator, "none");
        assert_eq!(report.estimation_time, Duration::ZERO);
    }

    #[test]
    fn estimation_is_skipped_for_compatibility_free_backends() {
        // An estimator combined with a backend that ignores H must not pay the
        // estimation cost; the report says so explicitly.
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let report = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .propagator(RandomWalk::default())
            .run()
            .unwrap();
        assert_eq!(report.estimator, "DCEr(r=10,l=5,lambda=10) (skipped)");
        assert_eq!(report.estimation_time, Duration::ZERO);
        // The label override is preserved in the skip notice.
        let labeled = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .estimator_label("DCEr(r=10)")
            .propagator(Harmonic::default())
            .run()
            .unwrap();
        assert_eq!(labeled.estimator, "DCEr(r=10) (skipped)");
    }

    #[test]
    fn threads_policy_does_not_change_results() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        for backend in fg_propagation::all_propagators() {
            let name = backend.name();
            let serial = Pipeline::on(&syn.graph)
                .seeds(&seeds)
                .estimator(DceWithRestarts::default())
                .propagator(&backend)
                .run()
                .unwrap();
            let threaded = Pipeline::on(&syn.graph)
                .seeds(&seeds)
                .estimator(DceWithRestarts::default())
                .propagator(&backend)
                .threads(Threads::Fixed(4))
                .run()
                .unwrap();
            assert_eq!(
                serial.outcome.beliefs.data(),
                threaded.outcome.beliefs.data(),
                "{name}"
            );
            assert_eq!(serial.outcome.predictions, threaded.outcome.predictions);
            assert_eq!(serial.propagator, threaded.propagator, "{name}");
        }
    }

    #[test]
    fn evaluate_records_micro_and_macro() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = SeedLabels::new(vec![Some(0), None, None, Some(1)], 2).unwrap();
        let truth = Labeling::new(vec![0, 0, 1, 1], 2).unwrap();
        let h = DenseMatrix::from_rows(&[vec![0.8, 0.2], vec![0.2, 0.8]]).unwrap();
        let mut report = Pipeline::on(&graph)
            .seeds(&seeds)
            .compatibilities("planted", &h)
            .run()
            .unwrap();
        assert!(report.accuracy.is_none() && report.micro_accuracy.is_none());
        report.evaluate(&truth, &seeds);
        assert!(report.accuracy.is_some());
        assert!(report.micro_accuracy.is_some());
        let json = report.to_json();
        assert!(json.contains("\"accuracy\":"));
        assert!(json.contains("\"micro_accuracy\":"));
    }

    #[test]
    fn builder_validates_inputs() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = SeedLabels::new(vec![Some(0), None, None, Some(1)], 2).unwrap();
        // Missing seeds.
        assert!(matches!(
            Pipeline::on(&graph).run(),
            Err(CoreError::InvalidConfig(_))
        ));
        // LinBP without any H source.
        assert!(matches!(
            Pipeline::on(&graph).seeds(&seeds).run(),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn labels_override_stage_names_and_serialize() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = SeedLabels::new(vec![Some(0), None, None, Some(1)], 2).unwrap();
        let truth = Labeling::new(vec![0, 0, 1, 1], 2).unwrap();
        let h = DenseMatrix::from_rows(&[vec![0.8, 0.2], vec![0.2, 0.8]]).unwrap();
        let mut report = Pipeline::on(&graph)
            .seeds(&seeds)
            .compatibilities("planted", &h)
            .estimator_label("planted \"exact\"")
            .propagator(LinBp::new(LinBpConfig::default()))
            .propagator_label("LinBP(default)")
            .run()
            .unwrap();
        assert_eq!(report.estimator, "planted \"exact\"");
        assert_eq!(report.propagator, "LinBP(default)");
        report.evaluate(&truth, &seeds);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"estimator\":\"planted \\\"exact\\\"\""));
        assert!(json.contains("\"propagator\":\"LinBP(default)\""));
        assert!(json.contains("\"accuracy\":"));
        assert!(json.contains("\"iterations\":"));
        assert!(json.contains("\"converged\":"));
        assert!(json.contains("\"epsilon\":"));
    }

    #[test]
    fn shared_context_summarizes_once_across_estimators() {
        use crate::estimators::{DistantCompatibilityEstimation, MyopicCompatibilityEstimation};

        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);

        let ctx = EstimationContext::new(&syn.graph, &seeds);
        // Warm to the largest requirement so the MCE / DCE / DCEr comparison run
        // shares exactly one summarization.
        ctx.warm(&DceWithRestarts::default().config.summary_config())
            .unwrap();

        let estimators: Vec<Box<dyn CompatibilityEstimator>> = vec![
            Box::new(MyopicCompatibilityEstimation::default()),
            Box::new(DistantCompatibilityEstimation::default()),
            Box::new(DceWithRestarts::default()),
        ];
        for estimator in estimators {
            let fresh = estimator.estimate(&syn.graph, &seeds).unwrap();
            let report = Pipeline::on(&syn.graph)
                .seeds(&seeds)
                .context(&ctx)
                .estimator(estimator)
                .run()
                .unwrap();
            // Context-served estimates are bit-identical to fresh ones.
            assert_eq!(
                report.estimated_h.data(),
                fresh.data(),
                "{}",
                report.estimator
            );
        }
        assert_eq!(ctx.summary_computations(), 1);
    }

    #[test]
    fn context_on_equal_content_is_accepted_across_allocations() {
        // Fingerprint matching: a context built on *clones* of the pipeline's graph
        // and seeds (different pointers, same content) is accepted and its cache is
        // reused — the old pointer-identity rejection is gone.
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let graph_copy = syn.graph.clone();
        let seeds_copy = seeds.clone();
        let ctx = EstimationContext::new(&graph_copy, &seeds_copy);
        ctx.warm(&DceWithRestarts::default().config.summary_config())
            .unwrap();

        let report = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .context(&ctx)
            .estimator(DceWithRestarts::default())
            .run()
            .unwrap();
        // Served entirely from the pre-warmed shared cache: zero computations in
        // this run, and the estimate equals a fresh standalone one bit-for-bit.
        assert_eq!(report.summary_computations, 0);
        assert_eq!(ctx.summary_computations(), 1);
        let fresh = DceWithRestarts::default()
            .estimate(&syn.graph, &seeds)
            .unwrap();
        assert_eq!(report.estimated_h.data(), fresh.data());
    }

    #[test]
    fn summary_store_makes_second_run_computation_free() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(73);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let dir = std::env::temp_dir().join("fg_pipeline_store");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(crate::store::SummaryStore::open(&dir).unwrap());

        let cold = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .summary_store(Arc::clone(&store))
            .run()
            .unwrap();
        assert_eq!(cold.summary_computations, 1);
        assert_eq!(cold.summary_store_hits, 0);
        assert_eq!(cold.optimize_store_hits, 0);

        // Fully warm: the persisted H estimate answers the whole estimation stage,
        // so neither the summary nor the optimizer runs.
        let warm = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .summary_store(Arc::clone(&store))
            .run()
            .unwrap();
        assert_eq!(warm.summary_computations, 0);
        assert_eq!(warm.summary_store_hits, 0);
        assert_eq!(warm.optimize_store_hits, 1);
        assert_eq!(warm.estimation_time, Duration::ZERO);
        // The warm path is bit-identical: same estimate, same predictions.
        assert_eq!(warm.estimated_h.data(), cold.estimated_h.data());
        assert_eq!(warm.outcome.predictions, cold.outcome.predictions);
        assert_eq!(warm.outcome.beliefs.data(), cold.outcome.beliefs.data());
        let json = warm.to_json();
        assert!(json.contains("\"summary_computations\":0"));
        assert!(json.contains("\"optimize_store_hits\":1"));

        // With only the H entry removed, the run falls back to the stored summary
        // (the pre-existing warm tier) and re-optimizes to the same matrix.
        let name = DceWithRestarts::default().name();
        assert!(store
            .remove_h(syn.graph.fingerprint(), seeds.fingerprint(), &name)
            .unwrap());
        let half_warm = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .summary_store(Arc::clone(&store))
            .run()
            .unwrap();
        assert_eq!(half_warm.summary_computations, 0);
        assert_eq!(half_warm.summary_store_hits, 1);
        assert_eq!(half_warm.optimize_store_hits, 0);
        assert_eq!(half_warm.estimated_h.data(), cold.estimated_h.data());
        // ... and it re-persisted the estimate for the next run.
        assert!(store
            .load_h(syn.graph.fingerprint(), seeds.fingerprint(), &name)
            .unwrap()
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_content_addressable_estimators_bypass_the_h_store() {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(79);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let dir = std::env::temp_dir().join("fg_pipeline_h_gs");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(crate::store::SummaryStore::open(&dir).unwrap());

        // The gold standard reads the full labeling, which the (graph, seeds, name)
        // key cannot see — two runs must both measure, and nothing lands on disk.
        for _ in 0..2 {
            let report = Pipeline::on(&syn.graph)
                .seeds(&seeds)
                .estimator(GoldStandard::new(syn.labeling.clone()))
                .summary_store(Arc::clone(&store))
                .run()
                .unwrap();
            assert_eq!(report.optimize_store_hits, 0);
        }
        assert!(store
            .load_h(syn.graph.fingerprint(), seeds.fingerprint(), "GS")
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_context_is_rejected() {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(63);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let other_seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let ctx = EstimationContext::new(&syn.graph, &other_seeds);
        let result = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .context(&ctx)
            .estimator(DceWithRestarts::default())
            .run();
        assert!(matches!(result, Err(CoreError::InvalidConfig(_))));
    }

    #[test]
    fn estimation_threads_do_not_change_results() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(65);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let serial = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .run()
            .unwrap();
        let threaded = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .estimation_threads(Threads::Fixed(4))
            .run()
            .unwrap();
        assert_eq!(serial.estimated_h.data(), threaded.estimated_h.data());
        assert_eq!(serial.outcome.predictions, threaded.outcome.predictions);
        assert_eq!(serial.estimator, threaded.estimator);
    }

    #[test]
    fn json_reports_summarize_and_optimize_timings() {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(67);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let report = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.contains("\"summarize_seconds\":"));
        assert!(json.contains("\"optimize_seconds\":"));
        assert!(json.contains("\"estimation_seconds\":"));
    }

    #[test]
    fn boxed_and_borrowed_estimators_work() {
        let cfg = GeneratorConfig::balanced(200, 8.0, 2, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(37);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let owned = DceWithRestarts::default();
        let by_ref = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(&owned)
            .run()
            .unwrap();
        let boxed: Box<dyn CompatibilityEstimator> = Box::new(DceWithRestarts::default());
        let by_box = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(boxed)
            .run()
            .unwrap();
        assert_eq!(by_ref.estimator, by_box.estimator);
    }
}
