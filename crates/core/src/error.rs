//! Error type for compatibility estimation.

use std::fmt;

/// Errors produced by the estimation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Configuration of an estimator or optimizer is invalid.
    InvalidConfig(String),
    /// The optimization failed (e.g. produced non-finite values).
    OptimizationFailed(String),
    /// The input (graph / seed labels) is unusable for estimation.
    InvalidInput(String),
    /// A persistent summary-store file is unusable: missing directory, I/O failure,
    /// or a corrupt / mismatched cache file (bad magic, failed checksum, or embedded
    /// fingerprints that disagree with the request).
    Store(String),
    /// Error bubbled up from the graph layer.
    Graph(fg_graph::GraphError),
    /// Error bubbled up from the linear-algebra layer.
    Sparse(fg_sparse::SparseError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::OptimizationFailed(msg) => write!(f, "optimization failed: {msg}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::Store(msg) => write!(f, "summary store error: {msg}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Sparse(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fg_graph::GraphError> for CoreError {
    fn from(e: fg_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<fg_sparse::SparseError> for CoreError {
    fn from(e: fg_sparse::SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("configuration"));
        assert!(CoreError::OptimizationFailed("y".into())
            .to_string()
            .contains("optimization"));
        assert!(CoreError::InvalidInput("z".into())
            .to_string()
            .contains("input"));
    }

    #[test]
    fn conversions_preserve_source() {
        let e: CoreError = fg_sparse::SparseError::NotSquare { rows: 1, cols: 2 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let g: CoreError = fg_graph::GraphError::InvalidLabels("bad".into()).into();
        assert!(g.to_string().contains("graph error"));
    }
}
