//! Persistent, content-addressed storage for factorized graph summaries.
//!
//! The raw path-count matrices (`k x k` per length, ℓmax of them) are tiny compared
//! to the `O(m·k·ℓmax)` work of computing them, so the [`SummaryStore`] persists them
//! to disk keyed by the *content* of their inputs — the
//! [`Fingerprint`]s of the graph and seed set plus the counting mode. A second
//! process (or a later `fg` invocation) that loads the same dataset recomputes the
//! fingerprints, finds the file, and skips summarization entirely; the
//! [`EstimationContext`](crate::EstimationContext) uses the store as a
//! read-through / write-back tier below its in-memory cache.
//!
//! # File format (version 1)
//!
//! One file per `(graph, seeds, counting mode)` triple, named
//! `<graph_fp>-<seed_fp>-<nb|all>.fgsum`, all integers and floats little-endian:
//!
//! | field      | size          | content                                          |
//! |------------|---------------|--------------------------------------------------|
//! | magic      | 6 bytes       | `FGSUMM`                                         |
//! | version    | `u16`         | `1`                                              |
//! | graph_fp   | `u128`        | [`Graph::fingerprint`](fg_graph::Graph::fingerprint) |
//! | seed_fp    | `u128`        | [`SeedLabels::fingerprint`](fg_graph::SeedLabels::fingerprint) |
//! | mode       | `u8`          | `1` = non-backtracking counts, `0` = plain paths |
//! | k          | `u32`         | number of classes                                |
//! | lmax       | `u32`         | number of stored lengths                         |
//! | counts     | `lmax·k²` f64 | `M(1)..M(lmax)`, row-major, exact bit patterns   |
//! | checksum   | `u128`        | fingerprint hash of every preceding byte         |
//!
//! Because `f64` bit patterns round-trip exactly through the encoding, a loaded
//! summary is **bit-identical** to the freshly computed one — the store never changes
//! a result, only whether it is recomputed.
//!
//! # `H`-estimate entries (version 1)
//!
//! The store also persists *estimated compatibility matrices* so warm runs skip the
//! optimization stage too. One `.fgh` file per `(graph, seeds, estimator name)`
//! triple, named `<graph_fp>-<seed_fp>-<name digest>.fgh`:
//!
//! | field      | size       | content                                          |
//! |------------|------------|--------------------------------------------------|
//! | magic      | 6 bytes    | `FGHEST`                                         |
//! | version    | `u16`      | `1`                                              |
//! | graph_fp   | `u128`     | graph fingerprint                                |
//! | seed_fp    | `u128`     | seed-set fingerprint                             |
//! | name_len   | `u32`      | byte length of the estimator name                |
//! | k          | `u32`      | number of classes                                |
//! | name       | `name_len` | the parameterized estimator name, UTF-8          |
//! | h          | `k²` f64   | the estimate, row-major, exact bit patterns      |
//! | checksum   | `u128`     | domain-separated hash of every preceding byte    |
//!
//! The full estimator name is embedded (the file name only carries a digest of it)
//! and validated on load, so an estimate can never be served to a differently
//! parameterized estimator. The same loud-rejection policy applies.
//!
//! # Constructed-graph entries (version 1)
//!
//! Finally, the store persists *constructed* graphs so warm `fg construct` runs skip
//! the `O(n²·d)` build. One `.fgg` file per `(feature matrix, builder spec)` pair,
//! named `<features_fp>-<spec digest>.fgg`: magic `FGGRPH`, version, the feature
//! matrix's content fingerprint, the embedded builder spec, node/edge counts, the
//! sorted weighted edge list with exact `f64` weight bit patterns, and a
//! domain-separated checksum. A loaded graph has the same content fingerprint as
//! the freshly built one.
//!
//! # Low-rank factor entries (version 1)
//!
//! The store also persists the spectral factors behind the low-rank counting
//! backend, so warm runs skip the eigensolve — the only edge-proportional cost
//! of that backend. One `.fgv` file per `(graph, factor config)` pair, named
//! `<graph_fp>-<factor_fp>.fgv` where the factor fingerprint is derived from
//! `(graph fingerprint, rank, solver parameters)`:
//!
//! | field      | size          | content                                       |
//! |------------|---------------|-----------------------------------------------|
//! | magic      | 6 bytes       | `FGVFAC`                                      |
//! | version    | `u16`         | `1`                                           |
//! | graph_fp   | `u128`        | graph fingerprint                             |
//! | factor_fp  | `u128`        | [`fg_graph::factor_fingerprint`]              |
//! | rank       | `u32`         | retained rank `r`                             |
//! | max_iter   | `u64`         | eigensolver iteration budget                  |
//! | tol        | `f64`         | eigensolver tolerance, exact bit pattern      |
//! | seed       | `u64`         | eigensolver starting-block seed               |
//! | nodes      | `u64`         | node count `n`                                |
//! | iterations | `u64`         | subspace-iteration rounds the solve used      |
//! | V          | `n·r` f64     | eigenvector block, row-major, exact bits      |
//! | lambda     | `r` f64       | eigenvalues, magnitude-descending             |
//! | G          | `r²` f64      | projected degree correction `Vᵀ(D−I)V`        |
//! | degrees    | `n` f64       | per-node weighted degrees                     |
//! | checksum   | `u128`        | domain-separated hash of every preceding byte |
//!
//! Because all four solver parameters are embedded and validated (and enter the
//! factor fingerprint), a stored factor can never be served to a differently
//! configured solve. The loaded factor is bit-identical to the computed one.
//!
//! # Failure policy
//!
//! Corrupt or mismatched files (wrong magic or version, truncated payload, failed
//! checksum, embedded fingerprints that disagree with the request) are *rejected
//! loudly*: [`SummaryStore::load`] returns [`CoreError::Store`] instead of silently
//! serving bad data. The [`EstimationContext`](crate::EstimationContext) reacts by
//! warning on stderr, recomputing from scratch, and overwriting the bad file — a
//! damaged cache can cost time, never correctness.

use crate::error::{CoreError, Result};
use fg_graph::{factor_fingerprint, FactorConfig, Fingerprint, FingerprintBuilder, LowRankFactor};
use fg_sparse::DenseMatrix;
use std::fs;
use std::path::{Path, PathBuf};

/// File-format magic bytes.
const MAGIC: &[u8; 6] = b"FGSUMM";
/// Current file-format version.
pub const STORE_FORMAT_VERSION: u16 = 1;
/// File extension used by the store.
pub const STORE_EXTENSION: &str = "fgsum";
/// Magic bytes of a persisted *estimated compatibility matrix* (`H`) entry.
const H_MAGIC: &[u8; 6] = b"FGHEST";
/// Current `H`-entry format version.
pub const H_STORE_FORMAT_VERSION: u16 = 1;
/// File extension used by persisted `H` estimates.
pub const H_STORE_EXTENSION: &str = "fgh";
/// Magic bytes of a persisted *constructed graph* entry.
const G_MAGIC: &[u8; 6] = b"FGGRPH";
/// Current constructed-graph entry format version.
pub const GRAPH_STORE_FORMAT_VERSION: u16 = 1;
/// File extension used by persisted constructed graphs.
pub const GRAPH_STORE_EXTENSION: &str = "fgg";
/// Magic bytes of a persisted *low-rank factor* entry.
const V_MAGIC: &[u8; 6] = b"FGVFAC";
/// Current low-rank factor entry format version.
pub const FACTOR_STORE_FORMAT_VERSION: u16 = 1;
/// File extension used by persisted low-rank factors.
pub const FACTOR_STORE_EXTENSION: &str = "fgv";
/// Fixed header size: magic + version + two fingerprints + mode + k + lmax.
const HEADER_LEN: usize = 6 + 2 + 16 + 16 + 1 + 4 + 4;
/// Fixed `H`-entry header size: magic + version + two fingerprints + name length +
/// k (the variable-length estimator name follows the fixed part).
const H_HEADER_LEN: usize = 6 + 2 + 16 + 16 + 4 + 4;
/// Fixed constructed-graph header size: magic + version + features fingerprint +
/// builder-name length + node count + edge count (the variable-length builder name
/// follows the fixed part).
const G_HEADER_LEN: usize = 6 + 2 + 16 + 4 + 8 + 8;
/// Fixed low-rank factor header size: magic + version + two fingerprints + rank +
/// max_iter + tol + seed + node count + iteration count.
const V_HEADER_LEN: usize = 6 + 2 + 16 + 16 + 4 + 8 + 8 + 8 + 8 + 8;
/// Trailing checksum size.
const CHECKSUM_LEN: usize = 16;
/// Per-process counter disambiguating concurrent temp-file writes (see
/// [`SummaryStore::save`]).
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A directory of persisted graph summaries (see the [module docs](self) for the
/// format and failure policy).
#[derive(Debug, Clone)]
pub struct SummaryStore {
    dir: PathBuf,
}

/// Raw counts loaded from the store: the variant-independent `M(1)..M(lmax)`
/// matrices plus the class count they were computed with.
#[derive(Debug, Clone)]
pub struct StoredCounts {
    /// The raw count matrices, index 0 holding `ℓ = 1`.
    pub counts: Vec<DenseMatrix>,
    /// Number of classes `k` (each matrix is `k x k`).
    pub k: usize,
}

/// Parsed header of a stored summary, for `fg cache ls`-style listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Fingerprint of the summarized graph.
    pub graph_fp: Fingerprint,
    /// Fingerprint of the seed set.
    pub seed_fp: Fingerprint,
    /// Whether the counts are non-backtracking.
    pub non_backtracking: bool,
    /// Number of classes.
    pub k: usize,
    /// Number of stored path lengths.
    pub max_length: usize,
}

/// Parsed header of a persisted `H` estimate, for `fg cache ls`-style listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HStoreMeta {
    /// Fingerprint of the graph the estimate was computed on.
    pub graph_fp: Fingerprint,
    /// Fingerprint of the seed set the estimate was computed from.
    pub seed_fp: Fingerprint,
    /// The parameterized estimator name (e.g. `DCEr(r=10,l=5,lambda=10)`) — part of
    /// the key, since different estimators yield different matrices.
    pub estimator: String,
    /// Number of classes (`H` is `k x k`).
    pub k: usize,
}

/// Parsed header of a persisted constructed graph, for `fg cache ls`-style
/// listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStoreMeta {
    /// Fingerprint of the feature matrix the graph was constructed from.
    pub features_fp: Fingerprint,
    /// The parameterized builder spec (e.g. `Knn(k=10,metric=euclidean,...)`) —
    /// part of the key, since different builders yield different graphs.
    pub builder: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
}

/// Parsed header of a persisted low-rank factor, for `fg cache ls`-style
/// listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorStoreMeta {
    /// Fingerprint of the graph the factor was computed from.
    pub graph_fp: Fingerprint,
    /// The factor's own fingerprint, derived from `(graph, rank, solver params)`.
    pub factor_fp: Fingerprint,
    /// Retained rank `r`.
    pub rank: usize,
    /// Number of graph nodes `n`.
    pub nodes: usize,
}

/// What a [`SummaryStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Files deleted.
    pub removed: usize,
    /// Files kept.
    pub kept: usize,
    /// Bytes freed by the deletions.
    pub bytes_removed: u64,
    /// Bytes still in the store after the pass.
    pub bytes_kept: u64,
}

/// One file in the store directory, with its header if it parses.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// File name (not the full path).
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Parsed summary (`.fgsum`) header, or `None` when the file is a different
    /// entry kind or unreadable / corrupt.
    pub meta: Option<StoreMeta>,
    /// Parsed `H`-estimate (`.fgh`) header, or `None` when the file is a different
    /// entry kind or unreadable / corrupt.
    pub h_meta: Option<HStoreMeta>,
    /// Parsed constructed-graph (`.fgg`) header, or `None` when the file is a
    /// different entry kind or unreadable / corrupt.
    pub graph_meta: Option<GraphStoreMeta>,
    /// Parsed low-rank factor (`.fgv`) header, or `None` when the file is a
    /// different entry kind or unreadable / corrupt.
    pub factor_meta: Option<FactorStoreMeta>,
}

fn io_err(action: &str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Store(format!("cannot {action} {}: {e}", path.display()))
}

fn corrupt(path: &Path, reason: &str) -> CoreError {
    CoreError::Store(format!(
        "rejecting corrupt summary file {}: {reason}",
        path.display()
    ))
}

impl SummaryStore {
    /// Open (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SummaryStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create store directory", &dir, e))?;
        Ok(SummaryStore { dir })
    }

    /// The default store location used by the CLI when `--summary-cache` is given
    /// without a directory: `target/experiments/summaries`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/experiments/summaries")
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a `(graph, seeds, mode)` triple is stored under.
    pub fn path_for(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
    ) -> PathBuf {
        let mode = if non_backtracking { "nb" } else { "all" };
        self.dir.join(format!(
            "{}-{}-{mode}.{STORE_EXTENSION}",
            graph_fp.to_hex(),
            seed_fp.to_hex()
        ))
    }

    /// Persist raw count matrices for a `(graph, seeds, mode)` triple, overwriting any
    /// existing file (written via a temporary file + rename so readers never observe a
    /// partial write). Every matrix must be `k x k`.
    pub fn save(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
        k: usize,
        counts: &[DenseMatrix],
    ) -> Result<PathBuf> {
        if counts.is_empty() {
            return Err(CoreError::Store(
                "refusing to persist an empty summary".into(),
            ));
        }
        for (i, m) in counts.iter().enumerate() {
            if m.rows() != k || m.cols() != k {
                return Err(CoreError::Store(format!(
                    "count matrix for length {} is {}x{} but k = {k}",
                    i + 1,
                    m.rows(),
                    m.cols()
                )));
            }
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + counts.len() * k * k * 8 + CHECKSUM_LEN);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&graph_fp.as_u128().to_le_bytes());
        bytes.extend_from_slice(&seed_fp.as_u128().to_le_bytes());
        bytes.push(u8::from(non_backtracking));
        bytes.extend_from_slice(&(k as u32).to_le_bytes());
        bytes.extend_from_slice(&(counts.len() as u32).to_le_bytes());
        for m in counts {
            for &v in m.data() {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let checksum = checksum_of(&bytes);
        bytes.extend_from_slice(&checksum.as_u128().to_le_bytes());

        let path = self.path_for(graph_fp, seed_fp, non_backtracking);
        // The temporary name is unique per (process, save call): two writers racing
        // to upgrade the same key — e.g. sessions extending a stored prefix to
        // different lmax — each write their own temp file and the atomic renames
        // land whole files in either order, so readers only ever observe a valid
        // summary (one of the two, never an interleaving).
        let tmp = path.with_extension(format!(
            "{STORE_EXTENSION}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))?;
        Ok(path)
    }

    /// Load the persisted counts for a `(graph, seeds, mode)` triple.
    ///
    /// Returns `Ok(None)` when no file exists, `Ok(Some(..))` with the bit-exact
    /// stored counts, and [`CoreError::Store`] when the file exists but is corrupt or
    /// describes different inputs than requested (the loud-rejection policy).
    pub fn load(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
    ) -> Result<Option<StoredCounts>> {
        let path = self.path_for(graph_fp, seed_fp, non_backtracking);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let (meta, payload_start) = parse_header(&bytes).map_err(|r| corrupt(&path, r))?;
        if bytes.len() < payload_start + CHECKSUM_LEN {
            return Err(corrupt(&path, "truncated payload"));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored_checksum = Fingerprint::from_u128(u128::from_le_bytes(
            checksum_bytes.try_into().expect("checksum is 16 bytes"),
        ));
        if checksum_of(body) != stored_checksum {
            return Err(corrupt(&path, "checksum mismatch"));
        }
        if meta.graph_fp != graph_fp || meta.seed_fp != seed_fp {
            return Err(corrupt(
                &path,
                "embedded fingerprints do not match the requested graph/seeds",
            ));
        }
        if meta.non_backtracking != non_backtracking {
            return Err(corrupt(&path, "embedded counting mode does not match"));
        }
        let k = meta.k;
        let expected_payload = meta.max_length * k * k * 8;
        let payload = &body[HEADER_LEN..];
        if payload.len() != expected_payload {
            return Err(corrupt(&path, "payload length disagrees with header"));
        }
        let mut counts = Vec::with_capacity(meta.max_length);
        for l in 0..meta.max_length {
            let mut data = Vec::with_capacity(k * k);
            for e in 0..k * k {
                let offset = (l * k * k + e) * 8;
                let raw = u64::from_le_bytes(
                    payload[offset..offset + 8]
                        .try_into()
                        .expect("8-byte slice"),
                );
                data.push(f64::from_bits(raw));
            }
            counts.push(
                DenseMatrix::from_vec(k, k, data)
                    .map_err(|e| corrupt(&path, &format!("invalid matrix: {e}")))?,
            );
        }
        Ok(Some(StoredCounts { counts, k }))
    }

    /// List every store file — `.fgsum` summaries, `.fgh` persisted `H` estimates,
    /// `.fgg` constructed graphs, `.fgv` low-rank factors, plus any `.tmp`
    /// leftovers of interrupted writes — with its parsed header (all meta fields
    /// `None` marks unreadable / corrupt / stale-temporary files). Sorted by file
    /// name for stable output.
    pub fn entries(&self) -> Result<Vec<StoreEntry>> {
        let mut entries = Vec::new();
        let dir_iter = match fs::read_dir(&self.dir) {
            Ok(iter) => iter,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
            Err(e) => return Err(io_err("read store directory", &self.dir, e)),
        };
        let store_suffix = format!(".{STORE_EXTENSION}");
        let h_suffix = format!(".{H_STORE_EXTENSION}");
        let g_suffix = format!(".{GRAPH_STORE_EXTENSION}");
        let v_suffix = format!(".{FACTOR_STORE_EXTENSION}");
        let tmp_markers = [
            format!(".{STORE_EXTENSION}."),
            format!(".{H_STORE_EXTENSION}."),
            format!(".{GRAPH_STORE_EXTENSION}."),
            format!(".{FACTOR_STORE_EXTENSION}."),
        ];
        for item in dir_iter {
            let item = item.map_err(|e| io_err("read store directory", &self.dir, e))?;
            let path = item.path();
            let file = item.file_name().to_string_lossy().into_owned();
            let is_store_file = file.ends_with(&store_suffix);
            let is_h_file = file.ends_with(&h_suffix);
            let is_g_file = file.ends_with(&g_suffix);
            let is_v_file = file.ends_with(&v_suffix);
            // A crash between `fs::write` and `fs::rename` strands a temp file
            // (`*.fgsum.<pid>-<seq>.tmp`, same pattern for `.fgh` / `.fgg` /
            // `.fgv`, or the pre-unique `*.fgsum.tmp` spelling); listing it
            // (always as corrupt) keeps it visible and clearable.
            let is_tmp_file = !is_store_file
                && !is_h_file
                && !is_g_file
                && !is_v_file
                && file.ends_with(".tmp")
                && tmp_markers.iter().any(|m| file.contains(m));
            if !is_store_file && !is_h_file && !is_g_file && !is_v_file && !is_tmp_file {
                continue;
            }
            let bytes = item.metadata().map(|m| m.len()).unwrap_or(0);
            let meta = if is_store_file {
                fs::read(&path)
                    .ok()
                    .and_then(|bytes| parse_header(&bytes).ok().map(|(meta, _)| meta))
            } else {
                None
            };
            let h_meta = if is_h_file {
                fs::read(&path)
                    .ok()
                    .and_then(|bytes| parse_h_header(&bytes).ok().map(|(meta, _)| meta))
            } else {
                None
            };
            let graph_meta = if is_g_file {
                fs::read(&path)
                    .ok()
                    .and_then(|bytes| parse_graph_header(&bytes).ok().map(|(meta, _)| meta))
            } else {
                None
            };
            let factor_meta = if is_v_file {
                fs::read(&path)
                    .ok()
                    .and_then(|bytes| parse_factor_header(&bytes).ok().map(|(meta, _)| meta))
            } else {
                None
            };
            entries.push(StoreEntry {
                file,
                bytes,
                meta,
                h_meta,
                graph_meta,
                factor_meta,
            });
        }
        entries.sort_by(|a, b| a.file.cmp(&b.file));
        Ok(entries)
    }

    /// Delete the stored summary for one `(graph, seeds, mode)` triple, returning
    /// whether a file was removed. Long-lived sessions use this to prune the entry
    /// of a superseded seed set (whose fingerprint will never be requested again)
    /// when they persist its replacement.
    pub fn remove(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
    ) -> Result<bool> {
        let path = self.path_for(graph_fp, seed_fp, non_backtracking);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    /// The file path an estimated `H` is stored under. The parameterized estimator
    /// name contains characters that are awkward in file names (`(`, `=`, `,`), so
    /// the name is folded into a hex digest for the path while the full string is
    /// embedded in (and validated against) the file itself.
    pub fn path_for_h(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        estimator: &str,
    ) -> PathBuf {
        self.dir.join(format!(
            "{}-{}-{}.{H_STORE_EXTENSION}",
            graph_fp.to_hex(),
            seed_fp.to_hex(),
            name_digest(estimator)
        ))
    }

    /// Persist an estimated compatibility matrix `H` keyed by
    /// `(graph, seeds, estimator name)`, overwriting any existing entry (written via
    /// a unique temporary file + atomic rename, like [`SummaryStore::save`]). The
    /// matrix must be square.
    pub fn save_h(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        estimator: &str,
        h: &DenseMatrix,
    ) -> Result<PathBuf> {
        let k = h.rows();
        if k == 0 || h.cols() != k {
            return Err(CoreError::Store(format!(
                "refusing to persist a {}x{} estimate (H must be square and non-empty)",
                h.rows(),
                h.cols()
            )));
        }
        let name = estimator.as_bytes();
        if name.is_empty() || name.len() > u32::MAX as usize {
            return Err(CoreError::Store(
                "estimator name must be non-empty to key a persisted estimate".into(),
            ));
        }
        let mut bytes = Vec::with_capacity(H_HEADER_LEN + name.len() + k * k * 8 + CHECKSUM_LEN);
        bytes.extend_from_slice(H_MAGIC);
        bytes.extend_from_slice(&H_STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&graph_fp.as_u128().to_le_bytes());
        bytes.extend_from_slice(&seed_fp.as_u128().to_le_bytes());
        bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&(k as u32).to_le_bytes());
        bytes.extend_from_slice(name);
        for &v in h.data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let checksum = h_checksum_of(&bytes);
        bytes.extend_from_slice(&checksum.as_u128().to_le_bytes());

        let path = self.path_for_h(graph_fp, seed_fp, estimator);
        let tmp = path.with_extension(format!(
            "{H_STORE_EXTENSION}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))?;
        Ok(path)
    }

    /// Load the persisted `H` estimate for a `(graph, seeds, estimator)` triple.
    ///
    /// Returns `Ok(None)` when no file exists, `Ok(Some(..))` with the bit-exact
    /// stored matrix, and [`CoreError::Store`] when the file exists but is corrupt
    /// or keyed to different inputs than requested (the loud-rejection policy).
    pub fn load_h(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        estimator: &str,
    ) -> Result<Option<DenseMatrix>> {
        let path = self.path_for_h(graph_fp, seed_fp, estimator);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let (meta, payload_start) = parse_h_header(&bytes).map_err(|r| corrupt(&path, r))?;
        if bytes.len() < payload_start + CHECKSUM_LEN {
            return Err(corrupt(&path, "truncated payload"));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored_checksum = Fingerprint::from_u128(u128::from_le_bytes(
            checksum_bytes.try_into().expect("checksum is 16 bytes"),
        ));
        if h_checksum_of(body) != stored_checksum {
            return Err(corrupt(&path, "checksum mismatch"));
        }
        if meta.graph_fp != graph_fp || meta.seed_fp != seed_fp {
            return Err(corrupt(
                &path,
                "embedded fingerprints do not match the requested graph/seeds",
            ));
        }
        if meta.estimator != estimator {
            return Err(corrupt(
                &path,
                "embedded estimator name does not match the request",
            ));
        }
        let k = meta.k;
        let payload = &body[payload_start..];
        if payload.len() != k * k * 8 {
            return Err(corrupt(&path, "payload length disagrees with header"));
        }
        let mut data = Vec::with_capacity(k * k);
        for e in 0..k * k {
            let raw = u64::from_le_bytes(
                payload[e * 8..(e + 1) * 8]
                    .try_into()
                    .expect("8-byte slice"),
            );
            data.push(f64::from_bits(raw));
        }
        let h = DenseMatrix::from_vec(k, k, data)
            .map_err(|e| corrupt(&path, &format!("invalid matrix: {e}")))?;
        Ok(Some(h))
    }

    /// Delete the persisted `H` estimate for one `(graph, seeds, estimator)` triple,
    /// returning whether a file was removed.
    pub fn remove_h(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        estimator: &str,
    ) -> Result<bool> {
        let path = self.path_for_h(graph_fp, seed_fp, estimator);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    /// The file path a constructed graph is stored under, keyed by the feature
    /// matrix's content fingerprint and (a digest of) the parameterized builder
    /// spec; the full spec string is embedded in the file and validated on load.
    pub fn path_for_graph(&self, features_fp: Fingerprint, builder: &str) -> PathBuf {
        self.dir.join(format!(
            "{}-{}.{GRAPH_STORE_EXTENSION}",
            features_fp.to_hex(),
            name_digest(builder)
        ))
    }

    /// Persist a constructed graph keyed by `(features fingerprint, builder spec)`,
    /// overwriting any existing entry (unique temporary file + atomic rename, like
    /// [`SummaryStore::save`]). Warm `fg construct` runs load the finished edge
    /// list instead of repeating the `O(n²·d)` build.
    pub fn save_graph(
        &self,
        features_fp: Fingerprint,
        builder: &str,
        graph: &fg_graph::Graph,
    ) -> Result<PathBuf> {
        let name = builder.as_bytes();
        if name.is_empty() || name.len() > u32::MAX as usize {
            return Err(CoreError::Store(
                "builder spec must be non-empty to key a persisted graph".into(),
            ));
        }
        let edges: Vec<(usize, usize, f64)> = graph.edges().collect();
        let mut bytes =
            Vec::with_capacity(G_HEADER_LEN + name.len() + edges.len() * 24 + CHECKSUM_LEN);
        bytes.extend_from_slice(G_MAGIC);
        bytes.extend_from_slice(&GRAPH_STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&features_fp.as_u128().to_le_bytes());
        bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&(graph.num_nodes() as u64).to_le_bytes());
        bytes.extend_from_slice(&(edges.len() as u64).to_le_bytes());
        bytes.extend_from_slice(name);
        for (u, v, w) in edges {
            bytes.extend_from_slice(&(u as u64).to_le_bytes());
            bytes.extend_from_slice(&(v as u64).to_le_bytes());
            bytes.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        let checksum = graph_checksum_of(&bytes);
        bytes.extend_from_slice(&checksum.as_u128().to_le_bytes());

        let path = self.path_for_graph(features_fp, builder);
        let tmp = path.with_extension(format!(
            "{GRAPH_STORE_EXTENSION}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))?;
        Ok(path)
    }

    /// Load the persisted constructed graph for a `(features, builder)` pair.
    ///
    /// Returns `Ok(None)` when no file exists, `Ok(Some(..))` with a graph whose
    /// edge weights are bit-exact, and [`CoreError::Store`] when the file exists
    /// but is corrupt or keyed to different inputs (the loud-rejection policy).
    pub fn load_graph(
        &self,
        features_fp: Fingerprint,
        builder: &str,
    ) -> Result<Option<fg_graph::Graph>> {
        let path = self.path_for_graph(features_fp, builder);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let (meta, payload_start) = parse_graph_header(&bytes).map_err(|r| corrupt(&path, r))?;
        if bytes.len() < payload_start + CHECKSUM_LEN {
            return Err(corrupt(&path, "truncated payload"));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored_checksum = Fingerprint::from_u128(u128::from_le_bytes(
            checksum_bytes.try_into().expect("checksum is 16 bytes"),
        ));
        if graph_checksum_of(body) != stored_checksum {
            return Err(corrupt(&path, "checksum mismatch"));
        }
        if meta.features_fp != features_fp {
            return Err(corrupt(
                &path,
                "embedded fingerprints do not match the requested features",
            ));
        }
        if meta.builder != builder {
            return Err(corrupt(&path, "embedded builder spec does not match"));
        }
        let payload = &body[payload_start..];
        if payload.len() != meta.edges * 24 {
            return Err(corrupt(&path, "payload length disagrees with header"));
        }
        let mut edges = Vec::with_capacity(meta.edges);
        for e in 0..meta.edges {
            let at = |off: usize| e * 24 + off;
            let u = u64::from_le_bytes(payload[at(0)..at(8)].try_into().expect("8-byte slice"))
                as usize;
            let v = u64::from_le_bytes(payload[at(8)..at(16)].try_into().expect("8-byte slice"))
                as usize;
            let w = f64::from_bits(u64::from_le_bytes(
                payload[at(16)..at(24)].try_into().expect("8-byte slice"),
            ));
            edges.push((u, v, w));
        }
        let graph = fg_graph::Graph::from_weighted_edges(meta.nodes, &edges)
            .map_err(|e| corrupt(&path, &format!("invalid graph: {e}")))?;
        Ok(Some(graph))
    }

    /// Delete the persisted constructed graph for one `(features, builder)` pair,
    /// returning whether a file was removed.
    pub fn remove_graph(&self, features_fp: Fingerprint, builder: &str) -> Result<bool> {
        let path = self.path_for_graph(features_fp, builder);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    /// The file path a low-rank factor is stored under, keyed by the graph
    /// fingerprint and the factor fingerprint (which folds in the rank and every
    /// solver parameter).
    pub fn path_for_factor(&self, graph_fp: Fingerprint, config: &FactorConfig) -> PathBuf {
        self.dir.join(format!(
            "{}-{}.{FACTOR_STORE_EXTENSION}",
            graph_fp.to_hex(),
            factor_fingerprint(graph_fp, config).to_hex()
        ))
    }

    /// Persist a computed low-rank factor keyed by `(graph, factor config)`,
    /// overwriting any existing entry (unique temporary file + atomic rename,
    /// like [`SummaryStore::save`]). Warm runs of the low-rank counting backend
    /// load the factor instead of repeating the eigensolve — the backend's only
    /// edge-proportional cost.
    pub fn save_factor(&self, factor: &LowRankFactor) -> Result<PathBuf> {
        let graph_fp = factor.graph_fingerprint();
        let config = factor.config();
        let n = factor.num_nodes();
        let r = factor.rank();
        let payload_values = n * r + r + r * r + n;
        let mut bytes = Vec::with_capacity(V_HEADER_LEN + payload_values * 8 + CHECKSUM_LEN);
        bytes.extend_from_slice(V_MAGIC);
        bytes.extend_from_slice(&FACTOR_STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&graph_fp.as_u128().to_le_bytes());
        bytes.extend_from_slice(&factor.fingerprint().as_u128().to_le_bytes());
        bytes.extend_from_slice(&(r as u32).to_le_bytes());
        bytes.extend_from_slice(&(config.max_iter as u64).to_le_bytes());
        bytes.extend_from_slice(&config.tol.to_bits().to_le_bytes());
        bytes.extend_from_slice(&config.seed.to_le_bytes());
        bytes.extend_from_slice(&(n as u64).to_le_bytes());
        bytes.extend_from_slice(&(factor.iterations() as u64).to_le_bytes());
        for &v in factor.v().data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &v in factor.lambda() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &v in factor.g().data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &v in factor.degrees() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let checksum = factor_checksum_of(&bytes);
        bytes.extend_from_slice(&checksum.as_u128().to_le_bytes());

        let path = self.path_for_factor(graph_fp, config);
        let tmp = path.with_extension(format!(
            "{FACTOR_STORE_EXTENSION}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))?;
        Ok(path)
    }

    /// Load the persisted low-rank factor for a `(graph, factor config)` pair.
    ///
    /// Returns `Ok(None)` when no file exists, `Ok(Some(..))` with the bit-exact
    /// stored factor, and [`CoreError::Store`] when the file exists but is
    /// corrupt or keyed to different inputs than requested (the loud-rejection
    /// policy).
    pub fn load_factor(
        &self,
        graph_fp: Fingerprint,
        config: &FactorConfig,
    ) -> Result<Option<LowRankFactor>> {
        let path = self.path_for_factor(graph_fp, config);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let (meta, payload_start) = parse_factor_header(&bytes).map_err(|r| corrupt(&path, r))?;
        if bytes.len() < payload_start + CHECKSUM_LEN {
            return Err(corrupt(&path, "truncated payload"));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored_checksum = Fingerprint::from_u128(u128::from_le_bytes(
            checksum_bytes.try_into().expect("checksum is 16 bytes"),
        ));
        if factor_checksum_of(body) != stored_checksum {
            return Err(corrupt(&path, "checksum mismatch"));
        }
        if meta.graph_fp != graph_fp {
            return Err(corrupt(
                &path,
                "embedded fingerprint does not match the requested graph",
            ));
        }
        if meta.factor_fp != factor_fingerprint(graph_fp, config) {
            return Err(corrupt(
                &path,
                "embedded factor fingerprint does not match the requested solver config",
            ));
        }
        let (n, r) = (meta.nodes, meta.rank);
        let payload = &body[payload_start..];
        if payload.len() != (n * r + r + r * r + n) * 8 {
            return Err(corrupt(&path, "payload length disagrees with header"));
        }
        let mut values = Vec::with_capacity(payload.len() / 8);
        for chunk in payload.chunks_exact(8) {
            values.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().expect("8-byte slice"),
            )));
        }
        let mut rest = values;
        let degrees = rest.split_off(n * r + r + r * r);
        let g_data = rest.split_off(n * r + r);
        let lambda = rest.split_off(n * r);
        let v = DenseMatrix::from_vec(n, r, rest)
            .map_err(|e| corrupt(&path, &format!("invalid V matrix: {e}")))?;
        let g = DenseMatrix::from_vec(r, r, g_data)
            .map_err(|e| corrupt(&path, &format!("invalid G matrix: {e}")))?;
        // The iteration count sits in the last header field (validated by the
        // checksum like everything else).
        let iterations = u64::from_le_bytes(
            body[V_HEADER_LEN - 8..V_HEADER_LEN]
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        LowRankFactor::from_parts(v, lambda, g, degrees, graph_fp, *config, iterations)
            .map(Some)
            .map_err(|e| corrupt(&path, &format!("invalid factor: {e}")))
    }

    /// Delete the persisted low-rank factor for one `(graph, factor config)`
    /// pair, returning whether a file was removed.
    pub fn remove_factor(&self, graph_fp: Fingerprint, config: &FactorConfig) -> Result<bool> {
        let path = self.path_for_factor(graph_fp, config);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    /// Delete every store file (including stale `.fgsum.tmp` leftovers), returning
    /// how many were removed.
    pub fn clear(&self) -> Result<usize> {
        let mut removed = 0;
        for entry in self.entries()? {
            let path = self.dir.join(&entry.file);
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Garbage-collect the store: drop every file older than `max_age` (by
    /// modification time), then — least-recently-modified first — drop files until
    /// the directory total is at or below `max_bytes`. Recently used summaries
    /// survive because every load refreshes nothing but every *save* refreshes the
    /// mtime; the eviction order is therefore LRU-by-write, with stale temp files
    /// aging out like any other file. At least one bound must be given. Files that
    /// vanish mid-collection (a concurrent `clear` or gc) are counted as removed.
    pub fn gc(
        &self,
        max_bytes: Option<u64>,
        max_age: Option<std::time::Duration>,
    ) -> Result<GcOutcome> {
        if max_bytes.is_none() && max_age.is_none() {
            return Err(CoreError::Store(
                "gc needs at least one bound (max_bytes or max_age)".into(),
            ));
        }
        let now = std::time::SystemTime::now();
        // Collect (mtime, name, bytes); unreadable metadata sorts oldest so broken
        // files are evicted first. Ties break on the file name for determinism.
        let mut files: Vec<(std::time::SystemTime, String, u64)> = self
            .entries()?
            .into_iter()
            .map(|entry| {
                let mtime = fs::metadata(self.dir.join(&entry.file))
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::UNIX_EPOCH);
                (mtime, entry.file, entry.bytes)
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        let mut outcome = GcOutcome::default();
        let mut survivors: Vec<(String, u64)> = Vec::new();
        for (mtime, file, bytes) in files {
            let expired = match max_age {
                Some(age) => now.duration_since(mtime).is_ok_and(|d| d > age),
                None => false,
            };
            if expired {
                self.remove_for_gc(&file, bytes, &mut outcome)?;
            } else {
                survivors.push((file, bytes));
            }
        }
        if let Some(cap) = max_bytes {
            let mut total: u64 = survivors.iter().map(|(_, b)| b).sum();
            let mut survivors = survivors.into_iter();
            for (file, bytes) in survivors.by_ref() {
                if total <= cap {
                    outcome.kept += 1;
                    outcome.bytes_kept += bytes;
                    continue;
                }
                self.remove_for_gc(&file, bytes, &mut outcome)?;
                total -= bytes;
            }
        } else {
            for (_, bytes) in &survivors {
                outcome.kept += 1;
                outcome.bytes_kept += bytes;
            }
        }
        Ok(outcome)
    }

    fn remove_for_gc(&self, file: &str, bytes: u64, outcome: &mut GcOutcome) -> Result<()> {
        let path = self.dir.join(file);
        match fs::remove_file(&path) {
            // A file deleted by a concurrent clear/gc still counts as removed.
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("remove", &path, e)),
        }
        outcome.removed += 1;
        outcome.bytes_removed += bytes;
        Ok(())
    }
}

/// Checksum over the encoded bytes, using the same FNV-1a 128 core as the
/// fingerprints (domain-tagged so a checksum can never alias a fingerprint).
fn checksum_of(bytes: &[u8]) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-summary-store-v1");
    h.write_bytes(bytes);
    h.finish()
}

/// Checksum over an encoded `H` entry, domain-separated from both the fingerprint
/// hashes and the summary-store checksum.
fn h_checksum_of(bytes: &[u8]) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-h-store-v1");
    h.write_bytes(bytes);
    h.finish()
}

/// Checksum over an encoded constructed-graph entry, domain-separated from every
/// other hash in the workspace.
fn graph_checksum_of(bytes: &[u8]) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-graph-store-v1");
    h.write_bytes(bytes);
    h.finish()
}

/// Checksum over an encoded low-rank factor entry, domain-separated from every
/// other hash in the workspace.
fn factor_checksum_of(bytes: &[u8]) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-v-store-v1");
    h.write_bytes(bytes);
    h.finish()
}

/// Hex digest of an estimator name or builder spec, used only for file naming
/// (the authoritative name is embedded in the entry and validated on load).
fn name_digest(name: &str) -> String {
    let mut h = FingerprintBuilder::new(b"fg-h-store-name-v1");
    h.write_bytes(name.as_bytes());
    h.finish().to_hex()
}

/// Parse and validate an `H`-entry header; returns the metadata and the payload
/// offset (past the variable-length estimator name). Errors are static
/// descriptions suitable for [`corrupt`].
fn parse_h_header(bytes: &[u8]) -> std::result::Result<(HStoreMeta, usize), &'static str> {
    if bytes.len() < H_HEADER_LEN + CHECKSUM_LEN {
        return Err("file too short for an estimate header");
    }
    if &bytes[0..6] != H_MAGIC {
        return Err("bad magic bytes");
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if version != H_STORE_FORMAT_VERSION {
        return Err("unsupported format version");
    }
    let graph_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[8..24].try_into().expect("16 bytes"),
    ));
    let seed_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[24..40].try_into().expect("16 bytes"),
    ));
    let name_len = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes")) as usize;
    let k = u32::from_le_bytes(bytes[44..48].try_into().expect("4 bytes")) as usize;
    if k == 0 || name_len == 0 {
        return Err("header declares an empty estimate");
    }
    let payload_start = match H_HEADER_LEN.checked_add(name_len) {
        Some(end) => end,
        None => return Err("estimator name length overflows"),
    };
    if bytes.len() < payload_start + CHECKSUM_LEN {
        return Err("file too short for the declared estimator name");
    }
    let estimator = std::str::from_utf8(&bytes[H_HEADER_LEN..payload_start])
        .map_err(|_| "estimator name is not valid UTF-8")?
        .to_string();
    Ok((
        HStoreMeta {
            graph_fp,
            seed_fp,
            estimator,
            k,
        },
        payload_start,
    ))
}

/// Parse and validate a constructed-graph header; returns the metadata and the
/// payload offset (past the variable-length builder spec). Errors are static
/// descriptions suitable for [`corrupt`].
fn parse_graph_header(bytes: &[u8]) -> std::result::Result<(GraphStoreMeta, usize), &'static str> {
    if bytes.len() < G_HEADER_LEN + CHECKSUM_LEN {
        return Err("file too short for a graph header");
    }
    if &bytes[0..6] != G_MAGIC {
        return Err("bad magic bytes");
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if version != GRAPH_STORE_FORMAT_VERSION {
        return Err("unsupported format version");
    }
    let features_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[8..24].try_into().expect("16 bytes"),
    ));
    let name_len = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes")) as usize;
    let nodes = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes")) as usize;
    let edges = u64::from_le_bytes(bytes[36..44].try_into().expect("8 bytes")) as usize;
    if name_len == 0 {
        return Err("header declares an empty builder spec");
    }
    let payload_start = match G_HEADER_LEN.checked_add(name_len) {
        Some(end) => end,
        None => return Err("builder spec length overflows"),
    };
    if bytes.len() < payload_start + CHECKSUM_LEN {
        return Err("file too short for the declared builder spec");
    }
    let builder = std::str::from_utf8(&bytes[G_HEADER_LEN..payload_start])
        .map_err(|_| "builder spec is not valid UTF-8")?
        .to_string();
    Ok((
        GraphStoreMeta {
            features_fp,
            builder,
            nodes,
            edges,
        },
        payload_start,
    ))
}

/// Parse and validate a low-rank factor header; returns the metadata and the
/// payload offset. Errors are static descriptions suitable for [`corrupt`].
fn parse_factor_header(
    bytes: &[u8],
) -> std::result::Result<(FactorStoreMeta, usize), &'static str> {
    if bytes.len() < V_HEADER_LEN + CHECKSUM_LEN {
        return Err("file too short for a factor header");
    }
    if &bytes[0..6] != V_MAGIC {
        return Err("bad magic bytes");
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if version != FACTOR_STORE_FORMAT_VERSION {
        return Err("unsupported format version");
    }
    let graph_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[8..24].try_into().expect("16 bytes"),
    ));
    let factor_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[24..40].try_into().expect("16 bytes"),
    ));
    let rank = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes")) as usize;
    let nodes = u64::from_le_bytes(bytes[68..76].try_into().expect("8 bytes")) as usize;
    if rank == 0 || nodes == 0 || rank > nodes {
        return Err("header declares an impossible rank/node combination");
    }
    Ok((
        FactorStoreMeta {
            graph_fp,
            factor_fp,
            rank,
            nodes,
        },
        V_HEADER_LEN,
    ))
}

/// Parse and validate the fixed-size header; returns the metadata and the payload
/// offset. Errors are static descriptions suitable for [`corrupt`].
fn parse_header(bytes: &[u8]) -> std::result::Result<(StoreMeta, usize), &'static str> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err("file too short for a summary header");
    }
    if &bytes[0..6] != MAGIC {
        return Err("bad magic bytes");
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if version != STORE_FORMAT_VERSION {
        return Err("unsupported format version");
    }
    let graph_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[8..24].try_into().expect("16 bytes"),
    ));
    let seed_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[24..40].try_into().expect("16 bytes"),
    ));
    let non_backtracking = match bytes[40] {
        0 => false,
        1 => true,
        _ => return Err("invalid counting-mode byte"),
    };
    let k = u32::from_le_bytes(bytes[41..45].try_into().expect("4 bytes")) as usize;
    let max_length = u32::from_le_bytes(bytes[45..49].try_into().expect("4 bytes")) as usize;
    if k == 0 || max_length == 0 {
        return Err("header declares an empty summary");
    }
    Ok((
        StoreMeta {
            graph_fp,
            seed_fp,
            non_backtracking,
            k,
            max_length,
        },
        HEADER_LEN,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> SummaryStore {
        let dir = std::env::temp_dir().join(format!("fg_summary_store_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        SummaryStore::open(dir).unwrap()
    }

    fn sample_counts() -> Vec<DenseMatrix> {
        vec![
            DenseMatrix::from_rows(&[vec![1.0, 2.5], vec![2.5, 0.125]]).unwrap(),
            DenseMatrix::from_rows(&[vec![-0.0, 1e-300], vec![3.0, f64::MAX]]).unwrap(),
        ]
    }

    fn fps() -> (Fingerprint, Fingerprint) {
        (
            Fingerprint::from_u128(0xabcd_1234),
            Fingerprint::from_u128(0x5678_def0),
        )
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let store = temp_store("round_trip");
        let (g, s) = fps();
        let counts = sample_counts();
        store.save(g, s, true, 2, &counts).unwrap();
        let loaded = store.load(g, s, true).unwrap().unwrap();
        assert_eq!(loaded.k, 2);
        assert_eq!(loaded.counts.len(), 2);
        for (a, b) in counts.iter().zip(&loaded.counts) {
            // Bit-exact: compare raw bit patterns, not approximate values.
            let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
        // The other counting mode is a separate (absent) file.
        assert!(store.load(g, s, false).unwrap().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn missing_file_is_none_not_error() {
        let store = temp_store("missing");
        let (g, s) = fps();
        assert!(store.load(g, s, true).unwrap().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_files_are_rejected_loudly() {
        let store = temp_store("corrupt");
        let (g, s) = fps();
        let path = store.save(g, s, true, 2, &sample_counts()).unwrap();

        // Flip one payload byte: checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.load(g, s, true).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation is caught.
        let good = {
            store.save(g, s, true, 2, &sample_counts()).unwrap();
            std::fs::read(&path).unwrap()
        };
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(store.load(g, s, true).is_err());

        // Wrong magic is caught.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        let err = store.load(g, s, true).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // A file copied under the wrong name (mismatched fingerprints) is caught.
        std::fs::write(&path, &good).unwrap();
        let other = Fingerprint::from_u128(0x9999);
        let wrong_name = store.path_for(g, other, true);
        std::fs::copy(&path, &wrong_name).unwrap();
        let err = store.load(g, other, true).unwrap_err();
        assert!(err.to_string().contains("fingerprints"), "{err}");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn save_validates_shapes() {
        let store = temp_store("shapes");
        let (g, s) = fps();
        assert!(store.save(g, s, true, 2, &[]).is_err());
        let wrong = vec![DenseMatrix::zeros(2, 3)];
        assert!(store.save(g, s, true, 2, &wrong).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_enforces_age_then_lru_size_cap() {
        let store = temp_store("gc");
        let (g, s) = fps();
        // Three files with distinct mtimes (oldest first).
        let p1 = store.save(g, s, false, 2, &sample_counts()).unwrap();
        let p2 = store.save(g, s, true, 2, &sample_counts()).unwrap();
        let other = Fingerprint::from_u128(0x77);
        let p3 = store.save(g, other, true, 2, &sample_counts()).unwrap();
        let hour = std::time::Duration::from_secs(3600);
        let old = std::time::SystemTime::now() - 10 * hour;
        set_mtime(&p1, old);
        set_mtime(&p2, old + hour);
        let bytes = std::fs::metadata(&p3).unwrap().len();

        // Age bound alone: the two back-dated files expire, the fresh one stays.
        let outcome = store.gc(None, Some(2 * hour)).unwrap();
        assert_eq!(outcome.removed, 2);
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.bytes_kept, bytes);
        assert!(store.load(g, other, true).unwrap().is_some());

        // Size cap alone: rebuild two files, cap to one file's size — the older
        // (least recently written) one goes.
        let p1 = store.save(g, s, true, 2, &sample_counts()).unwrap();
        set_mtime(&p1, old);
        let outcome = store.gc(Some(bytes), None).unwrap();
        assert_eq!(outcome.removed, 1);
        assert_eq!(outcome.kept, 1);
        assert!(!p1.exists());
        assert!(p3.exists());

        // max-bytes 0 empties the store; no bounds at all is an error.
        let outcome = store.gc(Some(0), None).unwrap();
        assert_eq!(outcome.kept, 0);
        assert!(store.entries().unwrap().is_empty());
        assert!(store.gc(None, None).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    /// Backdate a file's mtime (best-effort via filetime-free std APIs: rewrite the
    /// file then set the time with `File::set_modified`).
    fn set_mtime(path: &std::path::Path, to: std::time::SystemTime) {
        let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        f.set_modified(to).unwrap();
    }

    #[test]
    fn concurrent_prefix_upgrades_leave_a_valid_file() {
        // Two writers repeatedly persist the same key with different lmax (the
        // "two sessions extend the same stored summary" race). Unique temp names +
        // atomic renames mean a reader must always see one of the two valid files,
        // never an interleaving.
        let store = std::sync::Arc::new(temp_store("race"));
        let (g, s) = fps();
        let short = sample_counts();
        let long: Vec<DenseMatrix> = short
            .iter()
            .cloned()
            .chain(std::iter::once(
                DenseMatrix::from_rows(&[vec![9.0, 8.0], vec![7.0, 6.0]]).unwrap(),
            ))
            .collect();
        let rounds = 60;
        std::thread::scope(|scope| {
            let writer = |counts: Vec<DenseMatrix>| {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        store.save(g, s, true, 2, &counts).unwrap();
                    }
                })
            };
            let a = writer(short.clone());
            let b = writer(long.clone());
            // A concurrent reader must never observe corruption (absent is fine
            // in the first instants).
            for _ in 0..rounds {
                if let Some(loaded) = store.load(g, s, true).unwrap() {
                    assert!(loaded.counts.len() == 2 || loaded.counts.len() == 3);
                }
            }
            a.join().unwrap();
            b.join().unwrap();
        });
        let final_counts = store.load(g, s, true).unwrap().unwrap();
        assert!(final_counts.counts.len() == 2 || final_counts.counts.len() == 3);
        let reference = if final_counts.counts.len() == 2 {
            &short
        } else {
            &long
        };
        for (a, b) in reference.iter().zip(&final_counts.counts) {
            assert_eq!(
                a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        // No temp files were stranded by the race.
        assert!(store
            .entries()
            .unwrap()
            .iter()
            .all(|e| !e.file.ends_with(".tmp")));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn h_save_load_round_trip_is_bit_exact() {
        let store = temp_store("h_round_trip");
        let (g, s) = fps();
        let h = DenseMatrix::from_rows(&[vec![0.75, 0.25], vec![0.25, 0.75]]).unwrap();
        store.save_h(g, s, "Holdout(b=3)", &h).unwrap();
        let loaded = store.load_h(g, s, "Holdout(b=3)").unwrap().unwrap();
        let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&h), bits(&loaded));
        // A differently parameterized estimator is a separate (absent) entry.
        assert!(store.load_h(g, s, "Holdout(b=5)").unwrap().is_none());
        // Overwrites replace the entry in place.
        let h2 = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        store.save_h(g, s, "Holdout(b=3)", &h2).unwrap();
        let loaded = store.load_h(g, s, "Holdout(b=3)").unwrap().unwrap();
        assert_eq!(bits(&h2), bits(&loaded));
        // remove_h deletes exactly the requested entry.
        assert!(store.remove_h(g, s, "Holdout(b=3)").unwrap());
        assert!(!store.remove_h(g, s, "Holdout(b=3)").unwrap());
        assert!(store.load_h(g, s, "Holdout(b=3)").unwrap().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn h_entries_are_validated_loudly() {
        let store = temp_store("h_corrupt");
        let (g, s) = fps();
        let h = DenseMatrix::from_rows(&[vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let path = store.save_h(g, s, "DCE(l=5)", &h).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped payload byte (inside the matrix data, past the embedded name so
        // the UTF-8 check cannot fire first): checksum catches it.
        let mut bad = good.clone();
        let idx = bad.len() - CHECKSUM_LEN - 4;
        bad[idx] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let err = store.load_h(g, s, "DCE(l=5)").unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation is caught.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(store.load_h(g, s, "DCE(l=5)").is_err());

        // Wrong magic is caught.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        let err = store.load_h(g, s, "DCE(l=5)").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // A file copied under another key's name (mismatched fingerprints) is caught.
        std::fs::write(&path, &good).unwrap();
        let other = Fingerprint::from_u128(0x4242);
        std::fs::copy(&path, store.path_for_h(g, other, "DCE(l=5)")).unwrap();
        let err = store.load_h(g, other, "DCE(l=5)").unwrap_err();
        assert!(err.to_string().contains("fingerprints"), "{err}");

        // A file copied under another estimator's name is caught by the embedded name.
        std::fs::copy(&path, store.path_for_h(g, s, "DCEr(r=10)")).unwrap();
        let err = store.load_h(g, s, "DCEr(r=10)").unwrap_err();
        assert!(err.to_string().contains("estimator name"), "{err}");

        // Shape / key validation on save.
        assert!(store
            .save_h(g, s, "DCE(l=5)", &DenseMatrix::zeros(2, 3))
            .is_err());
        assert!(store.save_h(g, s, "", &DenseMatrix::zeros(2, 2)).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn graph_save_load_round_trip_preserves_the_fingerprint() {
        let store = temp_store("graph_round_trip");
        let features_fp = Fingerprint::from_u128(0xfeed_beef);
        let spec = "Knn(k=2,metric=euclidean,weighting=heat,sym=union)";
        let graph = fg_graph::Graph::from_weighted_edges(
            5,
            &[(0, 1, 0.5), (1, 2, 1.0), (2, 3, 0.125), (3, 4, 1e-300)],
        )
        .unwrap();
        store.save_graph(features_fp, spec, &graph).unwrap();
        let loaded = store.load_graph(features_fp, spec).unwrap().unwrap();
        // Content fingerprints match: the stored graph is the built graph.
        assert_eq!(loaded.fingerprint(), graph.fingerprint());
        assert_eq!(loaded.num_nodes(), 5);
        assert_eq!(loaded.num_edges(), 4);
        // A different builder spec is a separate (absent) entry.
        assert!(store.load_graph(features_fp, "Knn(k=3)").unwrap().is_none());
        // remove_graph deletes exactly the requested entry.
        assert!(store.remove_graph(features_fp, spec).unwrap());
        assert!(!store.remove_graph(features_fp, spec).unwrap());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn graph_entries_are_validated_listed_and_cleared() {
        let store = temp_store("graph_corrupt");
        let features_fp = Fingerprint::from_u128(0xc0ffee);
        let spec = "SparseReg(k=4,alpha=0.1,iters=50,sym=union)";
        let graph = fg_graph::Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let path = store.save_graph(features_fp, spec, &graph).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped payload byte (past the embedded spec): checksum catches it.
        let mut bad = good.clone();
        let idx = bad.len() - CHECKSUM_LEN - 4;
        bad[idx] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let err = store.load_graph(features_fp, spec).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // A file copied under another key's name is caught.
        std::fs::write(&path, &good).unwrap();
        let other = Fingerprint::from_u128(0xdead);
        std::fs::copy(&path, store.path_for_graph(other, spec)).unwrap();
        let err = store.load_graph(other, spec).unwrap_err();
        assert!(err.to_string().contains("fingerprints"), "{err}");

        // Entries list the graph with its parsed metadata; clear removes it.
        let entries = store.entries().unwrap();
        let g_entry = entries
            .iter()
            .find(|e| {
                e.file.ends_with(&format!(".{GRAPH_STORE_EXTENSION}")) && e.graph_meta.is_some()
            })
            .unwrap();
        let meta = g_entry.graph_meta.as_ref().unwrap();
        assert_eq!(meta.features_fp, features_fp);
        assert_eq!(meta.builder, spec);
        assert_eq!(meta.nodes, 3);
        assert_eq!(meta.edges, 2);
        assert_eq!(store.clear().unwrap(), 2);
        assert!(store.entries().unwrap().is_empty());
        // Empty builder specs are rejected on save.
        assert!(store.save_graph(features_fp, "", &graph).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn h_entries_are_listed_cleared_and_gced() {
        let store = temp_store("h_entries");
        let (g, s) = fps();
        store.save(g, s, true, 2, &sample_counts()).unwrap();
        let h = DenseMatrix::from_rows(&[vec![0.6, 0.4], vec![0.4, 0.6]]).unwrap();
        store.save_h(g, s, "LCE(l=3)", &h).unwrap();
        // A stranded `.fgh` temp file is listed (as corrupt) and clearable.
        std::fs::write(
            store
                .dir()
                .join(format!("stale.{H_STORE_EXTENSION}.7-0.tmp")),
            b"half a write",
        )
        .unwrap();

        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 3);
        let h_entry = entries
            .iter()
            .find(|e| e.file.ends_with(&format!(".{H_STORE_EXTENSION}")))
            .unwrap();
        let meta = h_entry.h_meta.as_ref().unwrap();
        assert_eq!(meta.graph_fp, g);
        assert_eq!(meta.seed_fp, s);
        assert_eq!(meta.estimator, "LCE(l=3)");
        assert_eq!(meta.k, 2);
        assert!(h_entry.meta.is_none());

        // gc with max-bytes 0 removes `.fgh` files alongside `.fgsum`.
        let outcome = store.gc(Some(0), None).unwrap();
        assert_eq!(outcome.kept, 0);
        assert!(store.entries().unwrap().is_empty());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn factor_save_load_round_trip_is_bit_exact() {
        let store = temp_store("factor_round_trip");
        let graph = fg_graph::Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
        )
        .unwrap();
        let config = FactorConfig::with_rank(4);
        let factor = LowRankFactor::compute(&graph, &config, fg_sparse::Threads::Serial).unwrap();
        store.save_factor(&factor).unwrap();
        let loaded = store
            .load_factor(graph.fingerprint(), &config)
            .unwrap()
            .unwrap();
        let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(factor.v()), bits(loaded.v()));
        assert_eq!(bits(factor.g()), bits(loaded.g()));
        let fbits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(fbits(factor.lambda()), fbits(loaded.lambda()));
        assert_eq!(fbits(factor.degrees()), fbits(loaded.degrees()));
        assert_eq!(factor.iterations(), loaded.iterations());
        assert_eq!(factor.fingerprint(), loaded.fingerprint());
        // A different rank is a separate (absent) entry.
        assert!(store
            .load_factor(graph.fingerprint(), &FactorConfig::with_rank(3))
            .unwrap()
            .is_none());
        // remove_factor deletes exactly the requested entry.
        assert!(store.remove_factor(graph.fingerprint(), &config).unwrap());
        assert!(!store.remove_factor(graph.fingerprint(), &config).unwrap());
        assert!(store
            .load_factor(graph.fingerprint(), &config)
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn factor_entries_are_validated_listed_and_cleared() {
        let store = temp_store("factor_corrupt");
        let graph =
            fg_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let config = FactorConfig::with_rank(3);
        let factor = LowRankFactor::compute(&graph, &config, fg_sparse::Threads::Serial).unwrap();
        let path = store.save_factor(&factor).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped payload byte: checksum catches it.
        let mut bad = good.clone();
        let idx = bad.len() - CHECKSUM_LEN - 4;
        bad[idx] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let err = store.load_factor(graph.fingerprint(), &config).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation is caught.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(store.load_factor(graph.fingerprint(), &config).is_err());

        // Wrong magic is caught.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        let err = store.load_factor(graph.fingerprint(), &config).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // A file copied under another solver config's name is caught by the
        // embedded factor fingerprint.
        std::fs::write(&path, &good).unwrap();
        let other = FactorConfig {
            seed: 0x1234,
            ..config
        };
        std::fs::copy(&path, store.path_for_factor(graph.fingerprint(), &other)).unwrap();
        let err = store.load_factor(graph.fingerprint(), &other).unwrap_err();
        assert!(err.to_string().contains("factor fingerprint"), "{err}");

        // Entries list the factor with its parsed metadata; clear removes it.
        let entries = store.entries().unwrap();
        let f_entry = entries
            .iter()
            .find(|e| {
                e.file.ends_with(&format!(".{FACTOR_STORE_EXTENSION}")) && e.factor_meta.is_some()
            })
            .unwrap();
        let meta = f_entry.factor_meta.as_ref().unwrap();
        assert_eq!(meta.graph_fp, graph.fingerprint());
        assert_eq!(meta.factor_fp, factor.fingerprint());
        assert_eq!(meta.rank, 3);
        assert_eq!(meta.nodes, 5);
        assert!(store.clear().unwrap() >= 2);
        assert!(store.entries().unwrap().is_empty());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn entries_and_clear() {
        let store = temp_store("entries");
        let (g, s) = fps();
        store.save(g, s, true, 2, &sample_counts()).unwrap();
        store.save(g, s, false, 2, &sample_counts()).unwrap();
        // A stray corrupt file is listed with meta = None and still cleared.
        std::fs::write(store.dir().join(format!("junk.{STORE_EXTENSION}")), b"nope").unwrap();
        // So is a temp file stranded by an interrupted save.
        std::fs::write(
            store.dir().join(format!("stale.{STORE_EXTENSION}.tmp")),
            b"half a write",
        )
        .unwrap();
        // Non-store files are ignored.
        std::fs::write(store.dir().join("README.txt"), b"not a summary").unwrap();

        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 4);
        let parsed: Vec<_> = entries.iter().filter(|e| e.meta.is_some()).collect();
        assert_eq!(parsed.len(), 2);
        for entry in &parsed {
            let meta = entry.meta.as_ref().unwrap();
            assert_eq!(meta.graph_fp, g);
            assert_eq!(meta.seed_fp, s);
            assert_eq!(meta.k, 2);
            assert_eq!(meta.max_length, 2);
        }
        assert_eq!(store.clear().unwrap(), 4);
        assert!(store.entries().unwrap().is_empty());
        // The non-store file survives a clear.
        assert!(store.dir().join("README.txt").exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
