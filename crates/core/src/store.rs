//! Persistent, content-addressed storage for factorized graph summaries.
//!
//! The raw path-count matrices (`k x k` per length, ℓmax of them) are tiny compared
//! to the `O(m·k·ℓmax)` work of computing them, so the [`SummaryStore`] persists them
//! to disk keyed by the *content* of their inputs — the
//! [`Fingerprint`]s of the graph and seed set plus the counting mode. A second
//! process (or a later `fg` invocation) that loads the same dataset recomputes the
//! fingerprints, finds the file, and skips summarization entirely; the
//! [`EstimationContext`](crate::EstimationContext) uses the store as a
//! read-through / write-back tier below its in-memory cache.
//!
//! # File format (version 1)
//!
//! One file per `(graph, seeds, counting mode)` triple, named
//! `<graph_fp>-<seed_fp>-<nb|all>.fgsum`, all integers and floats little-endian:
//!
//! | field      | size          | content                                          |
//! |------------|---------------|--------------------------------------------------|
//! | magic      | 6 bytes       | `FGSUMM`                                         |
//! | version    | `u16`         | `1`                                              |
//! | graph_fp   | `u128`        | [`Graph::fingerprint`](fg_graph::Graph::fingerprint) |
//! | seed_fp    | `u128`        | [`SeedLabels::fingerprint`](fg_graph::SeedLabels::fingerprint) |
//! | mode       | `u8`          | `1` = non-backtracking counts, `0` = plain paths |
//! | k          | `u32`         | number of classes                                |
//! | lmax       | `u32`         | number of stored lengths                         |
//! | counts     | `lmax·k²` f64 | `M(1)..M(lmax)`, row-major, exact bit patterns   |
//! | checksum   | `u128`        | fingerprint hash of every preceding byte         |
//!
//! Because `f64` bit patterns round-trip exactly through the encoding, a loaded
//! summary is **bit-identical** to the freshly computed one — the store never changes
//! a result, only whether it is recomputed.
//!
//! # Failure policy
//!
//! Corrupt or mismatched files (wrong magic or version, truncated payload, failed
//! checksum, embedded fingerprints that disagree with the request) are *rejected
//! loudly*: [`SummaryStore::load`] returns [`CoreError::Store`] instead of silently
//! serving bad data. The [`EstimationContext`](crate::EstimationContext) reacts by
//! warning on stderr, recomputing from scratch, and overwriting the bad file — a
//! damaged cache can cost time, never correctness.

use crate::error::{CoreError, Result};
use fg_graph::{Fingerprint, FingerprintBuilder};
use fg_sparse::DenseMatrix;
use std::fs;
use std::path::{Path, PathBuf};

/// File-format magic bytes.
const MAGIC: &[u8; 6] = b"FGSUMM";
/// Current file-format version.
pub const STORE_FORMAT_VERSION: u16 = 1;
/// File extension used by the store.
pub const STORE_EXTENSION: &str = "fgsum";
/// Fixed header size: magic + version + two fingerprints + mode + k + lmax.
const HEADER_LEN: usize = 6 + 2 + 16 + 16 + 1 + 4 + 4;
/// Trailing checksum size.
const CHECKSUM_LEN: usize = 16;
/// Per-process counter disambiguating concurrent temp-file writes (see
/// [`SummaryStore::save`]).
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A directory of persisted graph summaries (see the [module docs](self) for the
/// format and failure policy).
#[derive(Debug, Clone)]
pub struct SummaryStore {
    dir: PathBuf,
}

/// Raw counts loaded from the store: the variant-independent `M(1)..M(lmax)`
/// matrices plus the class count they were computed with.
#[derive(Debug, Clone)]
pub struct StoredCounts {
    /// The raw count matrices, index 0 holding `ℓ = 1`.
    pub counts: Vec<DenseMatrix>,
    /// Number of classes `k` (each matrix is `k x k`).
    pub k: usize,
}

/// Parsed header of a stored summary, for `fg cache ls`-style listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Fingerprint of the summarized graph.
    pub graph_fp: Fingerprint,
    /// Fingerprint of the seed set.
    pub seed_fp: Fingerprint,
    /// Whether the counts are non-backtracking.
    pub non_backtracking: bool,
    /// Number of classes.
    pub k: usize,
    /// Number of stored path lengths.
    pub max_length: usize,
}

/// What a [`SummaryStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Files deleted.
    pub removed: usize,
    /// Files kept.
    pub kept: usize,
    /// Bytes freed by the deletions.
    pub bytes_removed: u64,
    /// Bytes still in the store after the pass.
    pub bytes_kept: u64,
}

/// One file in the store directory, with its header if it parses.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// File name (not the full path).
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Parsed header, or `None` when the file is unreadable / corrupt.
    pub meta: Option<StoreMeta>,
}

fn io_err(action: &str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Store(format!("cannot {action} {}: {e}", path.display()))
}

fn corrupt(path: &Path, reason: &str) -> CoreError {
    CoreError::Store(format!(
        "rejecting corrupt summary file {}: {reason}",
        path.display()
    ))
}

impl SummaryStore {
    /// Open (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SummaryStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create store directory", &dir, e))?;
        Ok(SummaryStore { dir })
    }

    /// The default store location used by the CLI when `--summary-cache` is given
    /// without a directory: `target/experiments/summaries`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/experiments/summaries")
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a `(graph, seeds, mode)` triple is stored under.
    pub fn path_for(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
    ) -> PathBuf {
        let mode = if non_backtracking { "nb" } else { "all" };
        self.dir.join(format!(
            "{}-{}-{mode}.{STORE_EXTENSION}",
            graph_fp.to_hex(),
            seed_fp.to_hex()
        ))
    }

    /// Persist raw count matrices for a `(graph, seeds, mode)` triple, overwriting any
    /// existing file (written via a temporary file + rename so readers never observe a
    /// partial write). Every matrix must be `k x k`.
    pub fn save(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
        k: usize,
        counts: &[DenseMatrix],
    ) -> Result<PathBuf> {
        if counts.is_empty() {
            return Err(CoreError::Store(
                "refusing to persist an empty summary".into(),
            ));
        }
        for (i, m) in counts.iter().enumerate() {
            if m.rows() != k || m.cols() != k {
                return Err(CoreError::Store(format!(
                    "count matrix for length {} is {}x{} but k = {k}",
                    i + 1,
                    m.rows(),
                    m.cols()
                )));
            }
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + counts.len() * k * k * 8 + CHECKSUM_LEN);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&graph_fp.as_u128().to_le_bytes());
        bytes.extend_from_slice(&seed_fp.as_u128().to_le_bytes());
        bytes.push(u8::from(non_backtracking));
        bytes.extend_from_slice(&(k as u32).to_le_bytes());
        bytes.extend_from_slice(&(counts.len() as u32).to_le_bytes());
        for m in counts {
            for &v in m.data() {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let checksum = checksum_of(&bytes);
        bytes.extend_from_slice(&checksum.as_u128().to_le_bytes());

        let path = self.path_for(graph_fp, seed_fp, non_backtracking);
        // The temporary name is unique per (process, save call): two writers racing
        // to upgrade the same key — e.g. sessions extending a stored prefix to
        // different lmax — each write their own temp file and the atomic renames
        // land whole files in either order, so readers only ever observe a valid
        // summary (one of the two, never an interleaving).
        let tmp = path.with_extension(format!(
            "{STORE_EXTENSION}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))?;
        Ok(path)
    }

    /// Load the persisted counts for a `(graph, seeds, mode)` triple.
    ///
    /// Returns `Ok(None)` when no file exists, `Ok(Some(..))` with the bit-exact
    /// stored counts, and [`CoreError::Store`] when the file exists but is corrupt or
    /// describes different inputs than requested (the loud-rejection policy).
    pub fn load(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
    ) -> Result<Option<StoredCounts>> {
        let path = self.path_for(graph_fp, seed_fp, non_backtracking);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let (meta, payload_start) = parse_header(&bytes).map_err(|r| corrupt(&path, r))?;
        if bytes.len() < payload_start + CHECKSUM_LEN {
            return Err(corrupt(&path, "truncated payload"));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored_checksum = Fingerprint::from_u128(u128::from_le_bytes(
            checksum_bytes.try_into().expect("checksum is 16 bytes"),
        ));
        if checksum_of(body) != stored_checksum {
            return Err(corrupt(&path, "checksum mismatch"));
        }
        if meta.graph_fp != graph_fp || meta.seed_fp != seed_fp {
            return Err(corrupt(
                &path,
                "embedded fingerprints do not match the requested graph/seeds",
            ));
        }
        if meta.non_backtracking != non_backtracking {
            return Err(corrupt(&path, "embedded counting mode does not match"));
        }
        let k = meta.k;
        let expected_payload = meta.max_length * k * k * 8;
        let payload = &body[HEADER_LEN..];
        if payload.len() != expected_payload {
            return Err(corrupt(&path, "payload length disagrees with header"));
        }
        let mut counts = Vec::with_capacity(meta.max_length);
        for l in 0..meta.max_length {
            let mut data = Vec::with_capacity(k * k);
            for e in 0..k * k {
                let offset = (l * k * k + e) * 8;
                let raw = u64::from_le_bytes(
                    payload[offset..offset + 8]
                        .try_into()
                        .expect("8-byte slice"),
                );
                data.push(f64::from_bits(raw));
            }
            counts.push(
                DenseMatrix::from_vec(k, k, data)
                    .map_err(|e| corrupt(&path, &format!("invalid matrix: {e}")))?,
            );
        }
        Ok(Some(StoredCounts { counts, k }))
    }

    /// List every store file — `.fgsum` plus any `.fgsum.tmp` left behind by an
    /// interrupted write — with its parsed header (`meta: None` marks unreadable /
    /// corrupt / stale-temporary files). Sorted by file name for stable output.
    pub fn entries(&self) -> Result<Vec<StoreEntry>> {
        let mut entries = Vec::new();
        let dir_iter = match fs::read_dir(&self.dir) {
            Ok(iter) => iter,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
            Err(e) => return Err(io_err("read store directory", &self.dir, e)),
        };
        let store_suffix = format!(".{STORE_EXTENSION}");
        let tmp_marker = format!(".{STORE_EXTENSION}.");
        for item in dir_iter {
            let item = item.map_err(|e| io_err("read store directory", &self.dir, e))?;
            let path = item.path();
            let file = item.file_name().to_string_lossy().into_owned();
            let is_store_file = file.ends_with(&store_suffix);
            // A crash between `fs::write` and `fs::rename` strands a temp file
            // (`*.fgsum.<pid>-<seq>.tmp`, or the pre-unique `*.fgsum.tmp` spelling);
            // listing it (always as corrupt) keeps it visible and clearable.
            let is_tmp_file =
                !is_store_file && file.ends_with(".tmp") && file.contains(&tmp_marker);
            if !is_store_file && !is_tmp_file {
                continue;
            }
            let bytes = item.metadata().map(|m| m.len()).unwrap_or(0);
            let meta = if is_store_file {
                fs::read(&path)
                    .ok()
                    .and_then(|bytes| parse_header(&bytes).ok().map(|(meta, _)| meta))
            } else {
                None
            };
            entries.push(StoreEntry { file, bytes, meta });
        }
        entries.sort_by(|a, b| a.file.cmp(&b.file));
        Ok(entries)
    }

    /// Delete the stored summary for one `(graph, seeds, mode)` triple, returning
    /// whether a file was removed. Long-lived sessions use this to prune the entry
    /// of a superseded seed set (whose fingerprint will never be requested again)
    /// when they persist its replacement.
    pub fn remove(
        &self,
        graph_fp: Fingerprint,
        seed_fp: Fingerprint,
        non_backtracking: bool,
    ) -> Result<bool> {
        let path = self.path_for(graph_fp, seed_fp, non_backtracking);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    /// Delete every store file (including stale `.fgsum.tmp` leftovers), returning
    /// how many were removed.
    pub fn clear(&self) -> Result<usize> {
        let mut removed = 0;
        for entry in self.entries()? {
            let path = self.dir.join(&entry.file);
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Garbage-collect the store: drop every file older than `max_age` (by
    /// modification time), then — least-recently-modified first — drop files until
    /// the directory total is at or below `max_bytes`. Recently used summaries
    /// survive because every load refreshes nothing but every *save* refreshes the
    /// mtime; the eviction order is therefore LRU-by-write, with stale temp files
    /// aging out like any other file. At least one bound must be given. Files that
    /// vanish mid-collection (a concurrent `clear` or gc) are counted as removed.
    pub fn gc(
        &self,
        max_bytes: Option<u64>,
        max_age: Option<std::time::Duration>,
    ) -> Result<GcOutcome> {
        if max_bytes.is_none() && max_age.is_none() {
            return Err(CoreError::Store(
                "gc needs at least one bound (max_bytes or max_age)".into(),
            ));
        }
        let now = std::time::SystemTime::now();
        // Collect (mtime, name, bytes); unreadable metadata sorts oldest so broken
        // files are evicted first. Ties break on the file name for determinism.
        let mut files: Vec<(std::time::SystemTime, String, u64)> = self
            .entries()?
            .into_iter()
            .map(|entry| {
                let mtime = fs::metadata(self.dir.join(&entry.file))
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::UNIX_EPOCH);
                (mtime, entry.file, entry.bytes)
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        let mut outcome = GcOutcome::default();
        let mut survivors: Vec<(String, u64)> = Vec::new();
        for (mtime, file, bytes) in files {
            let expired = match max_age {
                Some(age) => now.duration_since(mtime).is_ok_and(|d| d > age),
                None => false,
            };
            if expired {
                self.remove_for_gc(&file, bytes, &mut outcome)?;
            } else {
                survivors.push((file, bytes));
            }
        }
        if let Some(cap) = max_bytes {
            let mut total: u64 = survivors.iter().map(|(_, b)| b).sum();
            let mut survivors = survivors.into_iter();
            for (file, bytes) in survivors.by_ref() {
                if total <= cap {
                    outcome.kept += 1;
                    outcome.bytes_kept += bytes;
                    continue;
                }
                self.remove_for_gc(&file, bytes, &mut outcome)?;
                total -= bytes;
            }
        } else {
            for (_, bytes) in &survivors {
                outcome.kept += 1;
                outcome.bytes_kept += bytes;
            }
        }
        Ok(outcome)
    }

    fn remove_for_gc(&self, file: &str, bytes: u64, outcome: &mut GcOutcome) -> Result<()> {
        let path = self.dir.join(file);
        match fs::remove_file(&path) {
            // A file deleted by a concurrent clear/gc still counts as removed.
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("remove", &path, e)),
        }
        outcome.removed += 1;
        outcome.bytes_removed += bytes;
        Ok(())
    }
}

/// Checksum over the encoded bytes, using the same FNV-1a 128 core as the
/// fingerprints (domain-tagged so a checksum can never alias a fingerprint).
fn checksum_of(bytes: &[u8]) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-summary-store-v1");
    h.write_bytes(bytes);
    h.finish()
}

/// Parse and validate the fixed-size header; returns the metadata and the payload
/// offset. Errors are static descriptions suitable for [`corrupt`].
fn parse_header(bytes: &[u8]) -> std::result::Result<(StoreMeta, usize), &'static str> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err("file too short for a summary header");
    }
    if &bytes[0..6] != MAGIC {
        return Err("bad magic bytes");
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if version != STORE_FORMAT_VERSION {
        return Err("unsupported format version");
    }
    let graph_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[8..24].try_into().expect("16 bytes"),
    ));
    let seed_fp = Fingerprint::from_u128(u128::from_le_bytes(
        bytes[24..40].try_into().expect("16 bytes"),
    ));
    let non_backtracking = match bytes[40] {
        0 => false,
        1 => true,
        _ => return Err("invalid counting-mode byte"),
    };
    let k = u32::from_le_bytes(bytes[41..45].try_into().expect("4 bytes")) as usize;
    let max_length = u32::from_le_bytes(bytes[45..49].try_into().expect("4 bytes")) as usize;
    if k == 0 || max_length == 0 {
        return Err("header declares an empty summary");
    }
    Ok((
        StoreMeta {
            graph_fp,
            seed_fp,
            non_backtracking,
            k,
            max_length,
        },
        HEADER_LEN,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> SummaryStore {
        let dir = std::env::temp_dir().join(format!("fg_summary_store_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        SummaryStore::open(dir).unwrap()
    }

    fn sample_counts() -> Vec<DenseMatrix> {
        vec![
            DenseMatrix::from_rows(&[vec![1.0, 2.5], vec![2.5, 0.125]]).unwrap(),
            DenseMatrix::from_rows(&[vec![-0.0, 1e-300], vec![3.0, f64::MAX]]).unwrap(),
        ]
    }

    fn fps() -> (Fingerprint, Fingerprint) {
        (
            Fingerprint::from_u128(0xabcd_1234),
            Fingerprint::from_u128(0x5678_def0),
        )
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let store = temp_store("round_trip");
        let (g, s) = fps();
        let counts = sample_counts();
        store.save(g, s, true, 2, &counts).unwrap();
        let loaded = store.load(g, s, true).unwrap().unwrap();
        assert_eq!(loaded.k, 2);
        assert_eq!(loaded.counts.len(), 2);
        for (a, b) in counts.iter().zip(&loaded.counts) {
            // Bit-exact: compare raw bit patterns, not approximate values.
            let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
        // The other counting mode is a separate (absent) file.
        assert!(store.load(g, s, false).unwrap().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn missing_file_is_none_not_error() {
        let store = temp_store("missing");
        let (g, s) = fps();
        assert!(store.load(g, s, true).unwrap().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_files_are_rejected_loudly() {
        let store = temp_store("corrupt");
        let (g, s) = fps();
        let path = store.save(g, s, true, 2, &sample_counts()).unwrap();

        // Flip one payload byte: checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.load(g, s, true).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation is caught.
        let good = {
            store.save(g, s, true, 2, &sample_counts()).unwrap();
            std::fs::read(&path).unwrap()
        };
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(store.load(g, s, true).is_err());

        // Wrong magic is caught.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        let err = store.load(g, s, true).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // A file copied under the wrong name (mismatched fingerprints) is caught.
        std::fs::write(&path, &good).unwrap();
        let other = Fingerprint::from_u128(0x9999);
        let wrong_name = store.path_for(g, other, true);
        std::fs::copy(&path, &wrong_name).unwrap();
        let err = store.load(g, other, true).unwrap_err();
        assert!(err.to_string().contains("fingerprints"), "{err}");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn save_validates_shapes() {
        let store = temp_store("shapes");
        let (g, s) = fps();
        assert!(store.save(g, s, true, 2, &[]).is_err());
        let wrong = vec![DenseMatrix::zeros(2, 3)];
        assert!(store.save(g, s, true, 2, &wrong).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_enforces_age_then_lru_size_cap() {
        let store = temp_store("gc");
        let (g, s) = fps();
        // Three files with distinct mtimes (oldest first).
        let p1 = store.save(g, s, false, 2, &sample_counts()).unwrap();
        let p2 = store.save(g, s, true, 2, &sample_counts()).unwrap();
        let other = Fingerprint::from_u128(0x77);
        let p3 = store.save(g, other, true, 2, &sample_counts()).unwrap();
        let hour = std::time::Duration::from_secs(3600);
        let old = std::time::SystemTime::now() - 10 * hour;
        set_mtime(&p1, old);
        set_mtime(&p2, old + hour);
        let bytes = std::fs::metadata(&p3).unwrap().len();

        // Age bound alone: the two back-dated files expire, the fresh one stays.
        let outcome = store.gc(None, Some(2 * hour)).unwrap();
        assert_eq!(outcome.removed, 2);
        assert_eq!(outcome.kept, 1);
        assert_eq!(outcome.bytes_kept, bytes);
        assert!(store.load(g, other, true).unwrap().is_some());

        // Size cap alone: rebuild two files, cap to one file's size — the older
        // (least recently written) one goes.
        let p1 = store.save(g, s, true, 2, &sample_counts()).unwrap();
        set_mtime(&p1, old);
        let outcome = store.gc(Some(bytes), None).unwrap();
        assert_eq!(outcome.removed, 1);
        assert_eq!(outcome.kept, 1);
        assert!(!p1.exists());
        assert!(p3.exists());

        // max-bytes 0 empties the store; no bounds at all is an error.
        let outcome = store.gc(Some(0), None).unwrap();
        assert_eq!(outcome.kept, 0);
        assert!(store.entries().unwrap().is_empty());
        assert!(store.gc(None, None).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    /// Backdate a file's mtime (best-effort via filetime-free std APIs: rewrite the
    /// file then set the time with `File::set_modified`).
    fn set_mtime(path: &std::path::Path, to: std::time::SystemTime) {
        let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        f.set_modified(to).unwrap();
    }

    #[test]
    fn concurrent_prefix_upgrades_leave_a_valid_file() {
        // Two writers repeatedly persist the same key with different lmax (the
        // "two sessions extend the same stored summary" race). Unique temp names +
        // atomic renames mean a reader must always see one of the two valid files,
        // never an interleaving.
        let store = std::sync::Arc::new(temp_store("race"));
        let (g, s) = fps();
        let short = sample_counts();
        let long: Vec<DenseMatrix> = short
            .iter()
            .cloned()
            .chain(std::iter::once(
                DenseMatrix::from_rows(&[vec![9.0, 8.0], vec![7.0, 6.0]]).unwrap(),
            ))
            .collect();
        let rounds = 60;
        std::thread::scope(|scope| {
            let writer = |counts: Vec<DenseMatrix>| {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        store.save(g, s, true, 2, &counts).unwrap();
                    }
                })
            };
            let a = writer(short.clone());
            let b = writer(long.clone());
            // A concurrent reader must never observe corruption (absent is fine
            // in the first instants).
            for _ in 0..rounds {
                if let Some(loaded) = store.load(g, s, true).unwrap() {
                    assert!(loaded.counts.len() == 2 || loaded.counts.len() == 3);
                }
            }
            a.join().unwrap();
            b.join().unwrap();
        });
        let final_counts = store.load(g, s, true).unwrap().unwrap();
        assert!(final_counts.counts.len() == 2 || final_counts.counts.len() == 3);
        let reference = if final_counts.counts.len() == 2 {
            &short
        } else {
            &long
        };
        for (a, b) in reference.iter().zip(&final_counts.counts) {
            assert_eq!(
                a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        // No temp files were stranded by the race.
        assert!(store
            .entries()
            .unwrap()
            .iter()
            .all(|e| !e.file.ends_with(".tmp")));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn entries_and_clear() {
        let store = temp_store("entries");
        let (g, s) = fps();
        store.save(g, s, true, 2, &sample_counts()).unwrap();
        store.save(g, s, false, 2, &sample_counts()).unwrap();
        // A stray corrupt file is listed with meta = None and still cleared.
        std::fs::write(store.dir().join(format!("junk.{STORE_EXTENSION}")), b"nope").unwrap();
        // So is a temp file stranded by an interrupted save.
        std::fs::write(
            store.dir().join(format!("stale.{STORE_EXTENSION}.tmp")),
            b"half a write",
        )
        .unwrap();
        // Non-store files are ignored.
        std::fs::write(store.dir().join("README.txt"), b"not a summary").unwrap();

        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 4);
        let parsed: Vec<_> = entries.iter().filter(|e| e.meta.is_some()).collect();
        assert_eq!(parsed.len(), 2);
        for entry in &parsed {
            let meta = entry.meta.as_ref().unwrap();
            assert_eq!(meta.graph_fp, g);
            assert_eq!(meta.seed_fp, s);
            assert_eq!(meta.k, 2);
            assert_eq!(meta.max_length, 2);
        }
        assert_eq!(store.clear().unwrap(), 4);
        assert!(store.entries().unwrap().is_empty());
        // The non-store file survives a clear.
        assert!(store.dir().join("README.txt").exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
