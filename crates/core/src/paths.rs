//! Factorized path summation (Sections 4.4–4.6 of the paper).
//!
//! The estimators never touch the graph directly: they consume a handful of `k x k`
//! "observed statistics" matrices `P̂(ℓ)` that summarize how often classes co-occur at
//! the two ends of length-ℓ paths between labeled nodes. This module computes those
//! sketches:
//!
//! * the raw count matrices `M(ℓ) = Xᵀ W(ℓ) X` for plain paths and
//!   `M(ℓ)_NB = Xᵀ W(ℓ)_NB X` for **non-backtracking** paths, using the recurrence of
//!   Proposition 4.3 — `W(ℓ)_NB = W·W(ℓ-1)_NB − (D−I)·W(ℓ-2)_NB` — pushed through the
//!   thin `n x k` matrix `X` so no `n x n` intermediate is ever materialized
//!   (Algorithm 4.4, cost `O(m·k·ℓmax)`, Proposition 4.5);
//! * the normalized statistics `P̂(ℓ)` via any of the three normalization variants;
//! * the *explicit* (unfactorized) powers `Wℓ` / `W(ℓ)_NB`, used only by the Fig. 5b
//!   baseline that demonstrates why factorization matters.

use crate::error::{CoreError, Result};
use crate::normalization::NormalizationVariant;
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{CsrMatrix, DenseMatrix, Threads};

/// Configuration for graph summarization.
#[derive(Debug, Clone)]
pub struct SummaryConfig {
    /// Maximum path length `ℓmax` to summarize (the paper uses 5).
    pub max_length: usize,
    /// Count only non-backtracking paths (the consistent estimator of Theorem 4.1).
    pub non_backtracking: bool,
    /// Normalization variant applied to the raw counts.
    pub variant: NormalizationVariant,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            max_length: 5,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
        }
    }
}

impl SummaryConfig {
    /// Convenience constructor with the given maximum path length.
    pub fn with_max_length(max_length: usize) -> Self {
        SummaryConfig {
            max_length,
            ..SummaryConfig::default()
        }
    }
}

/// The factorized graph representation: per path length `ℓ = 1..ℓmax`, the raw count
/// matrix `M(ℓ)` and its normalized form `P̂(ℓ)`.
#[derive(Debug, Clone)]
pub struct GraphSummary {
    /// Raw class-to-class path-count matrices, index 0 holds `ℓ = 1`.
    pub counts: Vec<DenseMatrix>,
    /// Normalized observed statistics matrices, index 0 holds `ℓ = 1`.
    pub statistics: Vec<DenseMatrix>,
    /// Number of classes.
    pub k: usize,
    /// Whether non-backtracking counting was used.
    pub non_backtracking: bool,
}

impl GraphSummary {
    /// The observed statistics matrix for path length `length` (1-based).
    pub fn statistic(&self, length: usize) -> Option<&DenseMatrix> {
        if length == 0 {
            None
        } else {
            self.statistics.get(length - 1)
        }
    }

    /// The raw count matrix for path length `length` (1-based).
    pub fn count(&self, length: usize) -> Option<&DenseMatrix> {
        if length == 0 {
            None
        } else {
            self.counts.get(length - 1)
        }
    }

    /// Maximum summarized path length.
    pub fn max_length(&self) -> usize {
        self.statistics.len()
    }
}

/// Scale each row `i` of a dense matrix by `factors[i]` (multiplication by a diagonal
/// matrix from the left, without building the diagonal matrix).
fn scale_rows(m: &DenseMatrix, factors: &[f64]) -> DenseMatrix {
    let mut out = m.clone();
    for (i, &f) in factors.iter().enumerate() {
        for v in out.row_mut(i) {
            *v *= f;
        }
    }
    out
}

/// Accumulate `M = Xᵀ N` where `X` is the one-hot seed matrix: row `i` of `N` is added
/// to row `class(i)` of the result for every labeled node `i`.
fn seed_transpose_product(seeds: &SeedLabels, n_matrix: &DenseMatrix) -> DenseMatrix {
    let k = seeds.k();
    let mut m = DenseMatrix::zeros(k, k);
    for i in 0..seeds.n() {
        if let Some(c) = seeds.get(i) {
            let row = n_matrix.row(i);
            for (j, &v) in row.iter().enumerate() {
                m.add_at(c, j, v);
            }
        }
    }
    m
}

/// Validate the `(graph, seeds, max_length)` triple shared by every summarization
/// entry point (factorized, cached, explicit).
pub(crate) fn validate_summary_inputs(
    graph: &Graph,
    seeds: &SeedLabels,
    max_length: usize,
) -> Result<()> {
    if seeds.n() != graph.num_nodes() {
        return Err(CoreError::InvalidInput(format!(
            "seed labels cover {} nodes but graph has {}",
            seeds.n(),
            graph.num_nodes()
        )));
    }
    if max_length == 0 {
        return Err(CoreError::InvalidConfig(
            "max_length must be at least 1".into(),
        ));
    }
    Ok(())
}

/// Compute the raw class-to-class path-count matrices `M(1)..M(ℓmax)` (the
/// normalization-independent half of Algorithm 4.4) under a [`Threads`] policy.
///
/// The `W · N(ℓ-1)` products run through the parallel sparse kernels, which are
/// bit-identical to the serial ones at any thread count; everything else
/// (`seed_transpose_product`, the degree corrections) is element-wise and stays on the
/// calling thread, so the returned counts never depend on `threads`.
pub(crate) fn compute_path_counts(
    graph: &Graph,
    seeds: &SeedLabels,
    max_length: usize,
    non_backtracking: bool,
    threads: Threads,
) -> Result<Vec<DenseMatrix>> {
    validate_summary_inputs(graph, seeds, max_length)?;
    let w = graph.adjacency();
    let degrees = graph.degrees();
    let degrees_minus_one: Vec<f64> = degrees.iter().map(|&d| d - 1.0).collect();
    let x = seeds.to_matrix();

    let mut counts = Vec::with_capacity(max_length);

    // N(1) = W X for both counting modes.
    let n1 = w.spmm_dense_with(&x, threads)?;
    counts.push(seed_transpose_product(seeds, &n1));

    let mut prev2; // N(ℓ-2)
    let mut prev1; // N(ℓ-1)
    if max_length >= 2 {
        let n2 = if non_backtracking {
            // N(2) = W N(1) - D X
            w.spmm_dense_with(&n1, threads)?
                .sub(&scale_rows(&x, &degrees))?
        } else {
            w.spmm_dense_with(&n1, threads)?
        };
        counts.push(seed_transpose_product(seeds, &n2));
        prev2 = n1;
        prev1 = n2;
        for _ell in 3..=max_length {
            let next = if non_backtracking {
                // N(ℓ) = W N(ℓ-1) - (D - I) N(ℓ-2)
                w.spmm_dense_with(&prev1, threads)?
                    .sub(&scale_rows(&prev2, &degrees_minus_one))?
            } else {
                w.spmm_dense_with(&prev1, threads)?
            };
            counts.push(seed_transpose_product(seeds, &next));
            prev2 = prev1;
            prev1 = next;
        }
    }
    Ok(counts)
}

/// Assemble a [`GraphSummary`] from precomputed raw counts by applying a
/// normalization variant (counts are variant-independent, so the same counts can back
/// any variant).
pub(crate) fn summary_from_counts(
    counts: Vec<DenseMatrix>,
    k: usize,
    non_backtracking: bool,
    variant: NormalizationVariant,
) -> GraphSummary {
    let statistics = counts.iter().map(|m| variant.apply(m)).collect();
    GraphSummary {
        counts,
        statistics,
        k,
        non_backtracking,
    }
}

/// Compute the factorized graph summary (Algorithm 4.4).
///
/// Runs in `O(m · k · ℓmax)` time and `O(n · k)` memory. Serial; see
/// [`summarize_with`] for the thread-parallel variant (bit-identical output).
pub fn summarize(
    graph: &Graph,
    seeds: &SeedLabels,
    config: &SummaryConfig,
) -> Result<GraphSummary> {
    summarize_with(graph, seeds, config, Threads::Serial)
}

/// [`summarize`] under a [`Threads`] policy: the `W · N(ℓ-1)` products run through the
/// parallel sparse kernels of `fg_sparse`. The parallel kernels are bit-identical to
/// the serial ones, so the returned summary never depends on the thread count — only
/// the wall-clock time does.
pub fn summarize_with(
    graph: &Graph,
    seeds: &SeedLabels,
    config: &SummaryConfig,
    threads: Threads,
) -> Result<GraphSummary> {
    let counts = compute_path_counts(
        graph,
        seeds,
        config.max_length,
        config.non_backtracking,
        threads,
    )?;
    Ok(summary_from_counts(
        counts,
        seeds.k(),
        config.non_backtracking,
        config.variant,
    ))
}

/// Explicitly compute the (dense-growing) adjacency power `Wℓ` with sparse-sparse
/// products. Only used by the Fig. 5b baseline and by tests — the cost grows roughly as
/// `O(m · d^(ℓ-1))`.
pub fn explicit_adjacency_power(graph: &Graph, length: usize) -> Result<CsrMatrix> {
    if length == 0 {
        return Ok(CsrMatrix::identity(graph.num_nodes()));
    }
    let w = graph.adjacency();
    let mut result = w.clone();
    for _ in 1..length {
        result = result.spmm(w)?;
    }
    Ok(result)
}

/// Explicitly compute the non-backtracking path-count matrix `W(ℓ)_NB` with the
/// recurrence of Proposition 4.3, materializing every `n x n` intermediate. Only used
/// for validation and the unfactorized baseline.
pub fn explicit_nb_power(graph: &Graph, length: usize) -> Result<CsrMatrix> {
    let w = graph.adjacency();
    let n = graph.num_nodes();
    match length {
        0 => return Ok(CsrMatrix::identity(n)),
        1 => return Ok(w.clone()),
        _ => {}
    }
    let d = graph.degree_matrix();
    let d_minus_i = graph.degree_minus_identity();
    let mut prev2 = w.clone(); // W(1)
    let mut prev1 = w.spmm(w)?.sub(&d)?; // W(2) = W^2 - D
    for _ in 3..=length {
        let next = w.spmm(&prev1)?.sub(&d_minus_i.spmm(&prev2)?)?;
        prev2 = prev1;
        prev1 = next;
    }
    Ok(prev1)
}

/// Compute the observed statistics matrix from an explicitly materialized path-count
/// matrix (the unfactorized evaluation order). Used to validate the factorized kernel
/// and as the slow baseline in the Fig. 5b reproduction.
pub fn statistics_from_explicit(
    power: &CsrMatrix,
    seeds: &SeedLabels,
    variant: NormalizationVariant,
) -> Result<DenseMatrix> {
    if power.rows() != seeds.n() {
        return Err(CoreError::InvalidInput(format!(
            "path-count matrix has {} rows but seed labels cover {} nodes",
            power.rows(),
            seeds.n()
        )));
    }
    let x = seeds.to_matrix();
    let wx = power.spmm_dense(&x)?;
    let m = seed_transpose_product(seeds, &wx);
    Ok(variant.apply(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generate, GeneratorConfig, Graph, Labeling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force count of non-backtracking paths of a given length between every pair
    /// of nodes, by depth-first enumeration. Exponential — tiny graphs only.
    fn brute_force_nb_counts(graph: &Graph, length: usize) -> DenseMatrix {
        let n = graph.num_nodes();
        let mut counts = DenseMatrix::zeros(n, n);
        // Enumerate walks (u0, u1, ..., u_length) with u_{j} != u_{j+2}.
        fn extend(
            graph: &Graph,
            path: &mut Vec<usize>,
            remaining: usize,
            counts: &mut DenseMatrix,
        ) {
            if remaining == 0 {
                let start = path[0];
                let end = *path.last().unwrap();
                counts.add_at(start, end, 1.0);
                return;
            }
            let last = *path.last().unwrap();
            let before = if path.len() >= 2 {
                Some(path[path.len() - 2])
            } else {
                None
            };
            for &next in graph.neighbors(last) {
                if Some(next) == before {
                    continue; // backtracking step
                }
                path.push(next);
                extend(graph, path, remaining - 1, counts);
                path.pop();
            }
        }
        for start in 0..n {
            let mut path = vec![start];
            extend(graph, &mut path, length, &mut counts);
        }
        counts
    }

    fn small_graph() -> Graph {
        // A graph with cycles and a pendant: exercises both backtracking corrections.
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn nb_power_2_equals_w2_minus_d() {
        let g = small_graph();
        let w2 = explicit_adjacency_power(&g, 2).unwrap();
        let expected = w2.sub(&g.degree_matrix()).unwrap();
        let got = explicit_nb_power(&g, 2).unwrap();
        assert!(got.to_dense().approx_eq(&expected.to_dense(), 1e-12));
    }

    #[test]
    fn nb_recurrence_matches_brute_force() {
        let g = small_graph();
        for length in 1..=5 {
            let recurrence = explicit_nb_power(&g, length).unwrap().to_dense();
            let brute = brute_force_nb_counts(&g, length);
            assert!(
                recurrence.approx_eq(&brute, 1e-9),
                "length {length}: recurrence != brute force"
            );
        }
    }

    #[test]
    fn explicit_powers_match_dense_powers() {
        let g = small_graph();
        let dense_w = g.adjacency().to_dense();
        for length in 0..=4 {
            let explicit = explicit_adjacency_power(&g, length).unwrap().to_dense();
            let expected = dense_w.pow(length).unwrap();
            assert!(explicit.approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    fn factorized_summary_matches_explicit_computation() {
        let g = small_graph();
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let config = SummaryConfig {
            max_length: 4,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
        };
        let summary = summarize(&g, &seeds, &config).unwrap();
        for length in 1..=4 {
            let explicit_power = explicit_nb_power(&g, length).unwrap();
            let expected =
                statistics_from_explicit(&explicit_power, &seeds, config.variant).unwrap();
            assert!(
                summary
                    .statistic(length)
                    .unwrap()
                    .approx_eq(&expected, 1e-9),
                "mismatch at length {length}"
            );
        }
    }

    #[test]
    fn factorized_full_paths_match_explicit_powers() {
        let g = small_graph();
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let config = SummaryConfig {
            max_length: 4,
            non_backtracking: false,
            variant: NormalizationVariant::RowStochastic,
        };
        let summary = summarize(&g, &seeds, &config).unwrap();
        for length in 1..=4 {
            let explicit_power = explicit_adjacency_power(&g, length).unwrap();
            let expected =
                statistics_from_explicit(&explicit_power, &seeds, config.variant).unwrap();
            assert!(summary
                .statistic(length)
                .unwrap()
                .approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    fn partial_labels_only_count_labeled_endpoints() {
        let g = small_graph();
        let seeds = SeedLabels::new(vec![Some(0), None, Some(1), None, None, Some(0)], 2).unwrap();
        let summary = summarize(&g, &seeds, &SummaryConfig::with_max_length(2)).unwrap();
        // Counts must equal the explicit computation restricted to labeled endpoints.
        let explicit = explicit_nb_power(&g, 2).unwrap();
        let expected =
            statistics_from_explicit(&explicit, &seeds, NormalizationVariant::RowStochastic)
                .unwrap();
        assert!(summary.statistic(2).unwrap().approx_eq(&expected, 1e-9));
    }

    #[test]
    fn summary_accessors() {
        let g = small_graph();
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let summary = summarize(&g, &seeds, &SummaryConfig::with_max_length(3)).unwrap();
        assert_eq!(summary.max_length(), 3);
        assert_eq!(summary.k, 2);
        assert!(summary.non_backtracking);
        assert!(summary.statistic(0).is_none());
        assert!(summary.statistic(4).is_none());
        assert!(summary.count(1).is_some());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = small_graph();
        let wrong_seeds = SeedLabels::new(vec![Some(0), None], 2).unwrap();
        assert!(summarize(&g, &wrong_seeds, &SummaryConfig::default()).is_err());
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        assert!(summarize(&g, &seeds, &SummaryConfig::with_max_length(0)).is_err());
        let small_power = CsrMatrix::identity(3);
        assert!(statistics_from_explicit(
            &small_power,
            &seeds,
            NormalizationVariant::RowStochastic
        )
        .is_err());
    }

    #[test]
    fn nb_statistics_are_consistent_for_hl_on_balanced_graph() {
        // Theorem 4.1 / Example 4.2: on a fully labeled balanced graph, P̂(ℓ)_NB ≈ Hℓ
        // while the plain P̂(ℓ) overestimates the diagonal.
        let cfg = GeneratorConfig::balanced_uniform(3000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = SeedLabels::fully_labeled(&syn.labeling);
        let h2 = syn.planted_h.pow(2);

        let nb = summarize(
            &syn.graph,
            &seeds,
            &SummaryConfig {
                max_length: 2,
                non_backtracking: true,
                variant: NormalizationVariant::RowStochastic,
            },
        )
        .unwrap();
        let full = summarize(
            &syn.graph,
            &seeds,
            &SummaryConfig {
                max_length: 2,
                non_backtracking: false,
                variant: NormalizationVariant::RowStochastic,
            },
        )
        .unwrap();

        let nb_err = h2.frobenius_distance(nb.statistic(2).unwrap()).unwrap();
        let full_err = h2.frobenius_distance(full.statistic(2).unwrap()).unwrap();
        assert!(
            nb_err < full_err,
            "NB error {nb_err} should be below full-path error {full_err}"
        );
        // The plain estimator overestimates the diagonal relative to H².
        let full_stat = full.statistic(2).unwrap();
        let diag_bias: f64 = (0..3).map(|c| full_stat.get(c, c) - h2.get(c, c)).sum();
        assert!(
            diag_bias > 0.0,
            "expected positive diagonal bias, got {diag_bias}"
        );
    }

    #[test]
    fn length_one_statistics_approximate_h_on_fully_labeled_graph() {
        let cfg = GeneratorConfig::balanced_uniform(2000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = SeedLabels::fully_labeled(&syn.labeling);
        let summary = summarize(&syn.graph, &seeds, &SummaryConfig::with_max_length(1)).unwrap();
        let err = syn
            .planted_h
            .as_dense()
            .frobenius_distance(summary.statistic(1).unwrap())
            .unwrap();
        assert!(err < 0.1, "length-1 statistics should match H, error {err}");
    }
}
