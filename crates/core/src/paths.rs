//! Factorized path summation (Sections 4.4–4.6 of the paper).
//!
//! The estimators never touch the graph directly: they consume a handful of `k x k`
//! "observed statistics" matrices `P̂(ℓ)` that summarize how often classes co-occur at
//! the two ends of length-ℓ paths between labeled nodes. This module computes those
//! sketches:
//!
//! * the raw count matrices `M(ℓ) = Xᵀ W(ℓ) X` for plain paths and
//!   `M(ℓ)_NB = Xᵀ W(ℓ)_NB X` for **non-backtracking** paths, using the recurrence of
//!   Proposition 4.3 — `W(ℓ)_NB = W·W(ℓ-1)_NB − (D−I)·W(ℓ-2)_NB` — pushed through the
//!   thin `n x k` matrix `X` so no `n x n` intermediate is ever materialized
//!   (Algorithm 4.4, cost `O(m·k·ℓmax)`, Proposition 4.5);
//! * the normalized statistics `P̂(ℓ)` via any of the three normalization variants;
//! * the *explicit* (unfactorized) powers `Wℓ` / `W(ℓ)_NB`, used only by the Fig. 5b
//!   baseline that demonstrates why factorization matters.

use crate::error::{CoreError, Result};
use crate::lowrank_counts::lowrank_path_counts;
use crate::normalization::NormalizationVariant;
use fg_graph::{FactorConfig, Graph, LowRankFactor, SeedLabels};
use fg_sparse::{CsrMatrix, DenseMatrix, Threads};

/// Default factor rank when the low-rank backend is requested without an
/// explicit one (spec key `rank=` / `fg estimate --rank`). Chosen as the
/// smallest power of two at which the rank sweep matches exact-backend
/// accuracy on the paper's synthetic families.
pub const DEFAULT_LOWRANK_RANK: usize = 64;

/// Which engine produces the raw path-count matrices.
///
/// Both backends feed the identical normalization / estimation pipeline; they
/// differ only in how `M(ℓ)` is computed:
///
/// * [`Exact`](CountingBackend::Exact) — the paper's factorized summation through
///   the sparse adjacency (Algorithm 4.4), `O(m·k)` per length.
/// * [`LowRank`](CountingBackend::LowRank) — the recurrence pushed through a
///   rank-`r` spectral factor `W ≈ V·Λ·Vᵀ`; after the one-time eigensolve every
///   length costs `O(r²·k)` — independent of the edge count *and* the node
///   count. Exact at full rank, an approximation below it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountingBackend {
    /// Exact counting through the sparse adjacency matrix.
    Exact,
    /// Approximate counting through a rank-`r` spectral factor with the given
    /// solver parameters (see [`FactorConfig`]).
    LowRank(FactorConfig),
}

/// Configuration for graph summarization.
#[derive(Debug, Clone)]
pub struct SummaryConfig {
    /// Maximum path length `ℓmax` to summarize (the paper uses 5).
    pub max_length: usize,
    /// Count only non-backtracking paths (the consistent estimator of Theorem 4.1).
    pub non_backtracking: bool,
    /// Normalization variant applied to the raw counts.
    pub variant: NormalizationVariant,
    /// Which counting engine produces the raw counts.
    pub backend: CountingBackend,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            max_length: 5,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            backend: CountingBackend::Exact,
        }
    }
}

impl SummaryConfig {
    /// Convenience constructor with the given maximum path length.
    pub fn with_max_length(max_length: usize) -> Self {
        SummaryConfig {
            max_length,
            ..SummaryConfig::default()
        }
    }

    /// Convenience constructor for the low-rank backend at the given rank
    /// (solver defaults, default `ℓmax`).
    pub fn with_lowrank_rank(rank: usize) -> Self {
        SummaryConfig {
            backend: CountingBackend::LowRank(FactorConfig::with_rank(rank)),
            ..SummaryConfig::default()
        }
    }
}

/// The factorized graph representation: per path length `ℓ = 1..ℓmax`, the raw count
/// matrix `M(ℓ)` and its normalized form `P̂(ℓ)`.
#[derive(Debug, Clone)]
pub struct GraphSummary {
    /// Raw class-to-class path-count matrices, index 0 holds `ℓ = 1`.
    pub counts: Vec<DenseMatrix>,
    /// Normalized observed statistics matrices, index 0 holds `ℓ = 1`.
    pub statistics: Vec<DenseMatrix>,
    /// Number of classes.
    pub k: usize,
    /// Whether non-backtracking counting was used.
    pub non_backtracking: bool,
}

impl GraphSummary {
    /// The observed statistics matrix for path length `length` (1-based).
    pub fn statistic(&self, length: usize) -> Option<&DenseMatrix> {
        if length == 0 {
            None
        } else {
            self.statistics.get(length - 1)
        }
    }

    /// The raw count matrix for path length `length` (1-based).
    pub fn count(&self, length: usize) -> Option<&DenseMatrix> {
        if length == 0 {
            None
        } else {
            self.counts.get(length - 1)
        }
    }

    /// Maximum summarized path length.
    pub fn max_length(&self) -> usize {
        self.statistics.len()
    }
}

/// Subtract `diag(factors) * basis` from `out` in place: the degree correction of
/// the non-backtracking recurrence, fused into the recurrence buffer instead of
/// materializing the scaled matrix and a fresh difference. Per element this computes
/// `out - (basis * factor)` — the exact multiply-then-subtract sequence the previous
/// `sub(&scale_rows(..))` chain performed, so the results are bit-identical.
fn sub_scaled_rows(out: &mut DenseMatrix, basis: &DenseMatrix, factors: &[f64]) {
    for (i, &f) in factors.iter().enumerate() {
        for (o, &v) in out.row_mut(i).iter_mut().zip(basis.row(i).iter()) {
            *o -= v * f;
        }
    }
}

/// Count of `n x k` recurrence buffers allocated by [`run_recurrence`] since process
/// start. The recurrence preallocates a constant number of buffers (two, plus one
/// more in non-backtracking mode) and ping-pongs them across path lengths; tests
/// assert this counter's delta is independent of `ℓmax`, i.e. zero per-length heap
/// allocations. Not part of the supported API.
static N_BUFFER_ALLOCS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Read [`N_BUFFER_ALLOCS`] (test hook). Not part of the supported API.
#[doc(hidden)]
pub fn n_buffer_allocations() -> usize {
    N_BUFFER_ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
}

fn alloc_n_buffer(n: usize, k: usize) -> DenseMatrix {
    N_BUFFER_ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    DenseMatrix::zeros(n, k)
}

/// Fixed row-block size for the chunked `Xᵀ N` reduction. The chunk boundaries are a
/// property of the *data* (node count), never of the thread policy, which is what
/// makes the reduction bit-identical at any thread count: every run accumulates the
/// same per-chunk partials and merges them in the same order.
const SEED_TRANSPOSE_CHUNK_ROWS: usize = 4096;

/// Accumulate rows `range` of `M = Xᵀ N` into `m` (a zeroed `k x k` buffer): row `i`
/// of `N` is added to row `class(i)` for every labeled node `i` in the range, in node
/// order.
fn seed_transpose_partial_into(
    seeds: &SeedLabels,
    n_matrix: &DenseMatrix,
    range: std::ops::Range<usize>,
    m: &mut DenseMatrix,
) {
    for i in range {
        if let Some(c) = seeds.get(i) {
            let row = n_matrix.row(i);
            for (j, &v) in row.iter().enumerate() {
                m.add_at(c, j, v);
            }
        }
    }
}

/// Accumulate rows `range` of `M = Xᵀ N` into a fresh `k x k` partial.
fn seed_transpose_partial(
    seeds: &SeedLabels,
    n_matrix: &DenseMatrix,
    range: std::ops::Range<usize>,
) -> DenseMatrix {
    let k = seeds.k();
    let mut m = DenseMatrix::zeros(k, k);
    seed_transpose_partial_into(seeds, n_matrix, range, &mut m);
    m
}

/// Accumulate `M = Xᵀ N` where `X` is the one-hot seed matrix (serial entry point;
/// see [`seed_transpose_product_with`] for the reduction contract).
fn seed_transpose_product(seeds: &SeedLabels, n_matrix: &DenseMatrix) -> DenseMatrix {
    let mut scratch = DenseMatrix::zeros(seeds.k(), seeds.k());
    seed_transpose_product_with(seeds, n_matrix, Threads::Serial, &mut scratch)
}

/// `M = Xᵀ N` under a [`Threads`] policy, the last reduction of Algorithm 4.4.
///
/// The node range is split into fixed [`SEED_TRANSPOSE_CHUNK_ROWS`]-row chunks
/// (independent of the thread count); workers accumulate disjoint chunks into private
/// `k x k` partials and the partials are merged **in chunk order** on the calling
/// thread. Because both the per-chunk accumulation order and the merge order are
/// fixed by the data alone, the result is bit-identical at 1/2/4/auto threads — the
/// same guarantee the `W·N(ℓ-1)` kernels give. A single-chunk input (n ≤ 4096) takes
/// the exact serial path with no merge step at all.
///
/// `scratch` is a caller-owned `k x k` buffer the serial multi-chunk path reuses for
/// its per-chunk partials, so a summarize run allocates it once instead of once per
/// chunk per length. (The parallel path needs worker-private partials and ignores
/// it.) Chunk 0 accumulates straight into the output; later chunks accumulate into
/// the zeroed scratch and merge in chunk order — the exact partial-then-merge
/// arithmetic of before, so results are unchanged bit for bit.
fn seed_transpose_product_with(
    seeds: &SeedLabels,
    n_matrix: &DenseMatrix,
    threads: Threads,
    scratch: &mut DenseMatrix,
) -> DenseMatrix {
    let n = seeds.n();
    let k = seeds.k();
    let num_chunks = n.div_ceil(SEED_TRANSPOSE_CHUNK_ROWS).max(1);
    if num_chunks == 1 {
        return seed_transpose_partial(seeds, n_matrix, 0..n);
    }
    let chunk_range = |c: usize| {
        let start = c * SEED_TRANSPOSE_CHUNK_ROWS;
        start..(start + SEED_TRANSPOSE_CHUNK_ROWS).min(n)
    };
    let workers = threads.count_for(num_chunks);
    if workers <= 1 {
        debug_assert_eq!(scratch.shape(), (k, k));
        let mut m = DenseMatrix::zeros(k, k);
        seed_transpose_partial_into(seeds, n_matrix, chunk_range(0), &mut m);
        for c in 1..num_chunks {
            scratch.data_mut().fill(0.0);
            seed_transpose_partial_into(seeds, n_matrix, chunk_range(c), scratch);
            for (acc, &v) in m.data_mut().iter_mut().zip(scratch.data()) {
                *acc += v;
            }
        }
        return m;
    }
    let partials: Vec<DenseMatrix> = {
        // Workers pull chunk indices from a shared queue and tag each partial with
        // its index, so the merge below can replay chunk order regardless of which
        // worker computed which chunk.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let tagged: Vec<Vec<(usize, DenseMatrix)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if c >= num_chunks {
                                break;
                            }
                            local
                                .push((c, seed_transpose_partial(seeds, n_matrix, chunk_range(c))));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("seed-transpose worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<DenseMatrix>> = (0..num_chunks).map(|_| None).collect();
        for (c, partial) in tagged.into_iter().flatten() {
            slots[c] = Some(partial);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk is computed exactly once"))
            .collect()
    };
    let mut iter = partials.into_iter();
    let mut m = iter.next().expect("at least one chunk");
    for partial in iter {
        for (acc, v) in m.data_mut().iter_mut().zip(partial.data()) {
            *acc += v;
        }
    }
    m
}

/// Validate the `(graph, seeds, max_length)` triple shared by every summarization
/// entry point (factorized, cached, explicit).
pub(crate) fn validate_summary_inputs(
    graph: &Graph,
    seeds: &SeedLabels,
    max_length: usize,
) -> Result<()> {
    if seeds.n() != graph.num_nodes() {
        return Err(CoreError::InvalidInput(format!(
            "seed labels cover {} nodes but graph has {}",
            seeds.n(),
            graph.num_nodes()
        )));
    }
    if max_length == 0 {
        return Err(CoreError::InvalidConfig(
            "max_length must be at least 1".into(),
        ));
    }
    Ok(())
}

/// Compute the raw class-to-class path-count matrices `M(1)..M(ℓmax)` (the
/// normalization-independent half of Algorithm 4.4) under a [`Threads`] policy.
///
/// Both halves of the per-length work run in parallel: the `W · N(ℓ-1)` products go
/// through the parallel sparse kernels and the `Xᵀ·N(ℓ)` reduction through the
/// chunked [`seed_transpose_product_with`] — each bit-identical to its serial
/// counterpart at any thread count, so the returned counts never depend on
/// `threads`. Only the element-wise degree corrections stay on the calling thread.
pub(crate) fn compute_path_counts(
    graph: &Graph,
    seeds: &SeedLabels,
    max_length: usize,
    non_backtracking: bool,
    threads: Threads,
) -> Result<Vec<DenseMatrix>> {
    // Rolling two-matrix window: batch callers keep `O(n·k)` peak memory, only
    // the incremental engine pays for retaining every intermediate (below).
    run_recurrence(graph, seeds, max_length, non_backtracking, threads, false)
        .map(|(counts, _)| counts)
}

/// [`compute_path_counts`] that also returns the per-length intermediates
/// `N(1)..N(ℓmax)` (each `n x k`, `N(ℓ) = W(ℓ) X`) — `O(ℓmax·n·k)` memory. The
/// incremental engine keeps these matrices alive so a seed mutation can be folded
/// in as a low-rank update instead of replaying the whole recurrence.
pub(crate) fn compute_path_counts_and_intermediates(
    graph: &Graph,
    seeds: &SeedLabels,
    max_length: usize,
    non_backtracking: bool,
    threads: Threads,
) -> Result<(Vec<DenseMatrix>, Vec<DenseMatrix>)> {
    run_recurrence(graph, seeds, max_length, non_backtracking, threads, true)
}

/// The shared recurrence driver. With `keep_intermediates` every `N(ℓ)` is
/// retained (as an independently owned clone) and returned; without it only the
/// constant set of recurrence buffers is ever alive. Identical arithmetic — and
/// therefore bit-identical counts — either way.
///
/// The buffers are allocated once up front and ping-ponged across path lengths via
/// `mem::swap` — the per-length `W·N(ℓ-1)` product overwrites a retired buffer
/// through [`CsrMatrix::spmm_dense_into`] and the non-backtracking degree correction
/// is fused in place, so the loop performs zero per-length heap allocations for `N`
/// buffers (tracked by [`n_buffer_allocations`]). Plain counting ping-pongs two
/// buffers; non-backtracking rotates a third so `N(ℓ-2)` stays intact while `N(ℓ)`
/// is built.
fn run_recurrence(
    graph: &Graph,
    seeds: &SeedLabels,
    max_length: usize,
    non_backtracking: bool,
    threads: Threads,
    keep_intermediates: bool,
) -> Result<(Vec<DenseMatrix>, Vec<DenseMatrix>)> {
    validate_summary_inputs(graph, seeds, max_length)?;
    let _span = fg_obs::Span::enter_with(
        "summarize",
        &[
            ("lmax", max_length as u64),
            ("k", seeds.k() as u64),
            ("nb", non_backtracking as u64),
        ],
    );
    let w = graph.adjacency();
    let n = graph.num_nodes();
    let k = seeds.k();
    let x = seeds.to_matrix();
    let mut scratch = DenseMatrix::zeros(k, k);

    let mut counts = Vec::with_capacity(max_length);
    let mut intermediates = Vec::new();

    // N(1) = W X for both counting modes, written into the first rolling buffer.
    let mut prev1 = alloc_n_buffer(n, k); // N(ℓ-1)
    w.spmm_dense_into(&x, threads, &mut prev1)?;
    counts.push(seed_transpose_product_with(
        seeds,
        &prev1,
        threads,
        &mut scratch,
    ));
    if keep_intermediates {
        intermediates.push(prev1.clone());
    }

    if max_length >= 2 {
        // Only the non-backtracking corrections touch the degrees.
        let (degrees, degrees_minus_one) = if non_backtracking {
            let d = graph.degrees();
            let dm1: Vec<f64> = d.iter().map(|&v| v - 1.0).collect();
            (d, dm1)
        } else {
            (Vec::new(), Vec::new())
        };
        let mut cur = alloc_n_buffer(n, k); // N(ℓ) under construction
        let mut prev2 = if non_backtracking && max_length >= 3 {
            Some(alloc_n_buffer(n, k)) // N(ℓ-2), needed intact by the correction
        } else {
            None
        };

        // N(2) = W N(1) (minus D X in non-backtracking mode).
        w.spmm_dense_into(&prev1, threads, &mut cur)?;
        if non_backtracking {
            sub_scaled_rows(&mut cur, &x, &degrees);
        }
        counts.push(seed_transpose_product_with(
            seeds,
            &cur,
            threads,
            &mut scratch,
        ));
        if keep_intermediates {
            intermediates.push(cur.clone());
        }
        // Rotate: prev2 <- N(1), prev1 <- N(2); the retired buffer lands in `cur`.
        if let Some(p2) = prev2.as_mut() {
            std::mem::swap(p2, &mut prev1);
        }
        std::mem::swap(&mut prev1, &mut cur);

        for _ell in 3..=max_length {
            // N(ℓ) = W N(ℓ-1) - (D - I) N(ℓ-2), overwriting the retired buffer.
            w.spmm_dense_into(&prev1, threads, &mut cur)?;
            if non_backtracking {
                let p2 = prev2.as_ref().expect("allocated above for NB mode");
                sub_scaled_rows(&mut cur, p2, &degrees_minus_one);
            }
            counts.push(seed_transpose_product_with(
                seeds,
                &cur,
                threads,
                &mut scratch,
            ));
            if keep_intermediates {
                intermediates.push(cur.clone());
            }
            if let Some(p2) = prev2.as_mut() {
                std::mem::swap(p2, &mut prev1);
            }
            std::mem::swap(&mut prev1, &mut cur);
        }
    }
    Ok((counts, intermediates))
}

/// Assemble a [`GraphSummary`] from precomputed raw counts by applying a
/// normalization variant (counts are variant-independent, so the same counts can back
/// any variant).
pub(crate) fn summary_from_counts(
    counts: Vec<DenseMatrix>,
    k: usize,
    non_backtracking: bool,
    variant: NormalizationVariant,
) -> GraphSummary {
    let statistics = counts.iter().map(|m| variant.apply(m)).collect();
    GraphSummary {
        counts,
        statistics,
        k,
        non_backtracking,
    }
}

/// Compute the factorized graph summary (Algorithm 4.4).
///
/// Runs in `O(m · k · ℓmax)` time and `O(n · k)` memory. Serial; see
/// [`summarize_with`] for the thread-parallel variant (bit-identical output).
pub fn summarize(
    graph: &Graph,
    seeds: &SeedLabels,
    config: &SummaryConfig,
) -> Result<GraphSummary> {
    summarize_with(graph, seeds, config, Threads::Serial)
}

/// [`summarize`] under a [`Threads`] policy: the `W · N(ℓ-1)` products run through the
/// parallel sparse kernels of `fg_sparse`. The parallel kernels are bit-identical to
/// the serial ones, so the returned summary never depends on the thread count — only
/// the wall-clock time does.
///
/// With [`CountingBackend::LowRank`] the spectral factor is computed inline (the
/// [`EstimationContext`](crate::EstimationContext) caches and persists factors
/// instead) and the counts come from the edge-count-independent factor-space
/// recurrence.
pub fn summarize_with(
    graph: &Graph,
    seeds: &SeedLabels,
    config: &SummaryConfig,
    threads: Threads,
) -> Result<GraphSummary> {
    let counts = match config.backend {
        CountingBackend::Exact => compute_path_counts(
            graph,
            seeds,
            config.max_length,
            config.non_backtracking,
            threads,
        )?,
        CountingBackend::LowRank(factor_config) => {
            validate_summary_inputs(graph, seeds, config.max_length)?;
            let factor = LowRankFactor::compute(graph, &factor_config, threads)?;
            lowrank_path_counts(&factor, seeds, config.max_length, config.non_backtracking)?
        }
    };
    Ok(summary_from_counts(
        counts,
        seeds.k(),
        config.non_backtracking,
        config.variant,
    ))
}

/// Explicitly compute the (dense-growing) adjacency power `Wℓ` with sparse-sparse
/// products. Only used by the Fig. 5b baseline and by tests — the cost grows roughly as
/// `O(m · d^(ℓ-1))`.
pub fn explicit_adjacency_power(graph: &Graph, length: usize) -> Result<CsrMatrix> {
    if length == 0 {
        return Ok(CsrMatrix::identity(graph.num_nodes()));
    }
    let w = graph.adjacency();
    let mut result = w.clone();
    for _ in 1..length {
        result = result.spmm(w)?;
    }
    Ok(result)
}

/// Explicitly compute the non-backtracking path-count matrix `W(ℓ)_NB` with the
/// recurrence of Proposition 4.3, materializing every `n x n` intermediate. Only used
/// for validation and the unfactorized baseline.
pub fn explicit_nb_power(graph: &Graph, length: usize) -> Result<CsrMatrix> {
    let w = graph.adjacency();
    let n = graph.num_nodes();
    match length {
        0 => return Ok(CsrMatrix::identity(n)),
        1 => return Ok(w.clone()),
        _ => {}
    }
    let d = graph.degree_matrix();
    let d_minus_i = graph.degree_minus_identity();
    let mut prev2 = w.clone(); // W(1)
    let mut prev1 = w.spmm(w)?.sub(&d)?; // W(2) = W^2 - D
    for _ in 3..=length {
        let next = w.spmm(&prev1)?.sub(&d_minus_i.spmm(&prev2)?)?;
        prev2 = prev1;
        prev1 = next;
    }
    Ok(prev1)
}

/// Compute the observed statistics matrix from an explicitly materialized path-count
/// matrix (the unfactorized evaluation order). Used to validate the factorized kernel
/// and as the slow baseline in the Fig. 5b reproduction.
pub fn statistics_from_explicit(
    power: &CsrMatrix,
    seeds: &SeedLabels,
    variant: NormalizationVariant,
) -> Result<DenseMatrix> {
    if power.rows() != seeds.n() {
        return Err(CoreError::InvalidInput(format!(
            "path-count matrix has {} rows but seed labels cover {} nodes",
            power.rows(),
            seeds.n()
        )));
    }
    let x = seeds.to_matrix();
    let wx = power.spmm_dense(&x)?;
    let m = seed_transpose_product(seeds, &wx);
    Ok(variant.apply(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generate, GeneratorConfig, Graph, Labeling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force count of non-backtracking paths of a given length between every pair
    /// of nodes, by depth-first enumeration. Exponential — tiny graphs only.
    fn brute_force_nb_counts(graph: &Graph, length: usize) -> DenseMatrix {
        let n = graph.num_nodes();
        let mut counts = DenseMatrix::zeros(n, n);
        // Enumerate walks (u0, u1, ..., u_length) with u_{j} != u_{j+2}.
        fn extend(
            graph: &Graph,
            path: &mut Vec<usize>,
            remaining: usize,
            counts: &mut DenseMatrix,
        ) {
            if remaining == 0 {
                let start = path[0];
                let end = *path.last().unwrap();
                counts.add_at(start, end, 1.0);
                return;
            }
            let last = *path.last().unwrap();
            let before = if path.len() >= 2 {
                Some(path[path.len() - 2])
            } else {
                None
            };
            for &next in graph.neighbors(last) {
                if Some(next) == before {
                    continue; // backtracking step
                }
                path.push(next);
                extend(graph, path, remaining - 1, counts);
                path.pop();
            }
        }
        for start in 0..n {
            let mut path = vec![start];
            extend(graph, &mut path, length, &mut counts);
        }
        counts
    }

    fn small_graph() -> Graph {
        // A graph with cycles and a pendant: exercises both backtracking corrections.
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn nb_power_2_equals_w2_minus_d() {
        let g = small_graph();
        let w2 = explicit_adjacency_power(&g, 2).unwrap();
        let expected = w2.sub(&g.degree_matrix()).unwrap();
        let got = explicit_nb_power(&g, 2).unwrap();
        assert!(got.to_dense().approx_eq(&expected.to_dense(), 1e-12));
    }

    #[test]
    fn nb_recurrence_matches_brute_force() {
        let g = small_graph();
        for length in 1..=5 {
            let recurrence = explicit_nb_power(&g, length).unwrap().to_dense();
            let brute = brute_force_nb_counts(&g, length);
            assert!(
                recurrence.approx_eq(&brute, 1e-9),
                "length {length}: recurrence != brute force"
            );
        }
    }

    #[test]
    fn explicit_powers_match_dense_powers() {
        let g = small_graph();
        let dense_w = g.adjacency().to_dense();
        for length in 0..=4 {
            let explicit = explicit_adjacency_power(&g, length).unwrap().to_dense();
            let expected = dense_w.pow(length).unwrap();
            assert!(explicit.approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    fn factorized_summary_matches_explicit_computation() {
        let g = small_graph();
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let config = SummaryConfig {
            max_length: 4,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            backend: CountingBackend::Exact,
        };
        let summary = summarize(&g, &seeds, &config).unwrap();
        for length in 1..=4 {
            let explicit_power = explicit_nb_power(&g, length).unwrap();
            let expected =
                statistics_from_explicit(&explicit_power, &seeds, config.variant).unwrap();
            assert!(
                summary
                    .statistic(length)
                    .unwrap()
                    .approx_eq(&expected, 1e-9),
                "mismatch at length {length}"
            );
        }
    }

    #[test]
    fn factorized_full_paths_match_explicit_powers() {
        let g = small_graph();
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let config = SummaryConfig {
            max_length: 4,
            non_backtracking: false,
            variant: NormalizationVariant::RowStochastic,
            backend: CountingBackend::Exact,
        };
        let summary = summarize(&g, &seeds, &config).unwrap();
        for length in 1..=4 {
            let explicit_power = explicit_adjacency_power(&g, length).unwrap();
            let expected =
                statistics_from_explicit(&explicit_power, &seeds, config.variant).unwrap();
            assert!(summary
                .statistic(length)
                .unwrap()
                .approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    fn partial_labels_only_count_labeled_endpoints() {
        let g = small_graph();
        let seeds = SeedLabels::new(vec![Some(0), None, Some(1), None, None, Some(0)], 2).unwrap();
        let summary = summarize(&g, &seeds, &SummaryConfig::with_max_length(2)).unwrap();
        // Counts must equal the explicit computation restricted to labeled endpoints.
        let explicit = explicit_nb_power(&g, 2).unwrap();
        let expected =
            statistics_from_explicit(&explicit, &seeds, NormalizationVariant::RowStochastic)
                .unwrap();
        assert!(summary.statistic(2).unwrap().approx_eq(&expected, 1e-9));
    }

    #[test]
    fn summary_accessors() {
        let g = small_graph();
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        let summary = summarize(&g, &seeds, &SummaryConfig::with_max_length(3)).unwrap();
        assert_eq!(summary.max_length(), 3);
        assert_eq!(summary.k, 2);
        assert!(summary.non_backtracking);
        assert!(summary.statistic(0).is_none());
        assert!(summary.statistic(4).is_none());
        assert!(summary.count(1).is_some());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = small_graph();
        let wrong_seeds = SeedLabels::new(vec![Some(0), None], 2).unwrap();
        assert!(summarize(&g, &wrong_seeds, &SummaryConfig::default()).is_err());
        let labeling = Labeling::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let seeds = SeedLabels::fully_labeled(&labeling);
        assert!(summarize(&g, &seeds, &SummaryConfig::with_max_length(0)).is_err());
        let small_power = CsrMatrix::identity(3);
        assert!(statistics_from_explicit(
            &small_power,
            &seeds,
            NormalizationVariant::RowStochastic
        )
        .is_err());
    }

    #[test]
    fn nb_statistics_are_consistent_for_hl_on_balanced_graph() {
        // Theorem 4.1 / Example 4.2: on a fully labeled balanced graph, P̂(ℓ)_NB ≈ Hℓ
        // while the plain P̂(ℓ) overestimates the diagonal.
        let cfg = GeneratorConfig::balanced_uniform(3000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = SeedLabels::fully_labeled(&syn.labeling);
        let h2 = syn.planted_h.pow(2);

        let nb = summarize(
            &syn.graph,
            &seeds,
            &SummaryConfig {
                max_length: 2,
                non_backtracking: true,
                variant: NormalizationVariant::RowStochastic,
                backend: CountingBackend::Exact,
            },
        )
        .unwrap();
        let full = summarize(
            &syn.graph,
            &seeds,
            &SummaryConfig {
                max_length: 2,
                non_backtracking: false,
                variant: NormalizationVariant::RowStochastic,
                backend: CountingBackend::Exact,
            },
        )
        .unwrap();

        let nb_err = h2.frobenius_distance(nb.statistic(2).unwrap()).unwrap();
        let full_err = h2.frobenius_distance(full.statistic(2).unwrap()).unwrap();
        assert!(
            nb_err < full_err,
            "NB error {nb_err} should be below full-path error {full_err}"
        );
        // The plain estimator overestimates the diagonal relative to H².
        let full_stat = full.statistic(2).unwrap();
        let diag_bias: f64 = (0..3).map(|c| full_stat.get(c, c) - h2.get(c, c)).sum();
        assert!(
            diag_bias > 0.0,
            "expected positive diagonal bias, got {diag_bias}"
        );
    }

    #[test]
    fn length_one_statistics_approximate_h_on_fully_labeled_graph() {
        let cfg = GeneratorConfig::balanced_uniform(2000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = SeedLabels::fully_labeled(&syn.labeling);
        let summary = summarize(&syn.graph, &seeds, &SummaryConfig::with_max_length(1)).unwrap();
        let err = syn
            .planted_h
            .as_dense()
            .frobenius_distance(summary.statistic(1).unwrap())
            .unwrap();
        assert!(err < 0.1, "length-1 statistics should match H, error {err}");
    }
}
