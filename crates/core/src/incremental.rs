//! Incremental summary maintenance: the [`DeltaSummary`] engine.
//!
//! The batch pipeline recomputes the factorized path counts `M(ℓ) = Xᵀ W(ℓ) X` from
//! scratch whenever the seed set changes — `O(m·k·ℓmax)` work per change, which is
//! exactly the cross-seed-set cold start that makes streaming / online labeling
//! expensive. This module exploits that the map `X ↦ N(ℓ) = W(ℓ) X` of
//! Algorithm 4.4 is **linear in `X`**: mutating one seed changes one row of `X`, so
//! the change to every `N(ℓ)` is the rank-one update
//!
//! ```text
//! ΔN(ℓ) = aℓ ⊗ (e_new − e_old),   aℓ = W(ℓ) e_i  (the i-th column of the
//!                                  length-ℓ path-count operator)
//! ```
//!
//! and the `aℓ` vectors follow the same non-backtracking recurrence as the full
//! computation (`aℓ = W aℓ₋₁ − (D − I) aℓ₋₂`), restricted to the growing
//! neighborhood of the mutated node. A [`DeltaSummary`] keeps the `N(ℓ)` matrices
//! alive and folds each seed mutation in with work proportional to the mutated
//! node's ℓmax-hop ball — `O(Δ·paths)` instead of `O(n·paths)` — updating the
//! `k x k` count matrices via `M' = M + XᵀΔN + ΔXᵀN'`.
//!
//! # Bit-identity
//!
//! The engine guarantees that after **any** sequence of mutations its counts are
//! bit-identical to a cold [`summarize_with`](crate::paths::summarize_with) on the
//! final seed set (at any thread count — the parallel kernels are already
//! bit-identical to serial). Floating-point addition is not associative in general,
//! so this only holds because path counting is *integer* arithmetic: for graphs with
//! integer edge weights every intermediate is an exactly representable `f64` integer
//! as long as magnitudes stay below 2⁵³, and exact integer arithmetic is associative
//! and commutative — any update order produces the same bits. The engine checks both
//! conditions (integer weights at construction, magnitude headroom on every write)
//! and **falls back to a full recomputation** whenever they fail, so the invariant
//! is unconditional: a delta update can cost time, never correctness. Zero-valued
//! deltas are skipped entirely so no `-0.0` can leak into entries a fresh
//! computation would leave at `+0.0`.
//!
//! # Serving integration
//!
//! [`DeltaSummary::publish_to`] write-backs the maintained counts into a shared
//! [`SummaryCache`] under the *current* graph/seed fingerprints (re-derived after
//! every mutation), so an [`EstimationContext`](crate::EstimationContext) built on
//! the same data is answered without any summarization — the "zero full
//! summarizations after warm-up" property `fg serve` reports and CI asserts.
//! [`DeltaSummary::persist_to`] does the same for a persistent
//! [`SummaryStore`].

use crate::context::SummaryCache;
use crate::error::{CoreError, Result};
use crate::paths::{
    compute_path_counts_and_intermediates, summary_from_counts, GraphSummary, SummaryConfig,
};
use crate::store::SummaryStore;
use fg_graph::{Fingerprint, Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};
use std::sync::Arc;

/// One seed-set change. `Add` requires the node to be unlabeled, `Remove` and
/// `Relabel` require it to be labeled — the split keeps accidental no-ops and
/// double-adds visible to callers (the serving protocol surfaces these as request
/// errors instead of silently absorbing them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMutation {
    /// Label a previously unlabeled node.
    Add {
        /// Node id.
        node: usize,
        /// Class label in `0..k`.
        label: usize,
    },
    /// Remove the label of a labeled node.
    Remove {
        /// Node id.
        node: usize,
    },
    /// Change the label of a labeled node.
    Relabel {
        /// Node id.
        node: usize,
        /// New class label in `0..k`.
        label: usize,
    },
}

impl SeedMutation {
    /// The mutated node.
    pub fn node(&self) -> usize {
        match *self {
            SeedMutation::Add { node, .. }
            | SeedMutation::Remove { node }
            | SeedMutation::Relabel { node, .. } => node,
        }
    }
}

/// What one [`DeltaSummary::apply`] batch did: how many mutations took the delta
/// path, how many forced a full recomputation, and how much delta work was done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Mutations folded in as low-rank delta updates.
    pub delta_applied: usize,
    /// Full `O(n·paths)` recomputations triggered (0 or 1 per batch: exactness
    /// violations are detected per batch and repaired once at the end).
    pub full_recomputes: usize,
    /// Node-rows touched by the delta updates (summed over mutations and path
    /// lengths) — the counter the amortization claim is measured with.
    pub rows_touched: usize,
}

/// Cumulative counters of a [`DeltaSummary`], for stats endpoints and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Full `O(n·paths)` summarizations performed (including the one at
    /// construction).
    pub full_summarizations: usize,
    /// Seed mutations absorbed by the delta path.
    pub delta_mutations: usize,
    /// Total node-rows touched by delta updates.
    pub delta_rows_touched: usize,
    /// Node-rows one full summarization touches (`n · ℓmax`), the denominator of
    /// the amortization ratio.
    pub full_rows_per_summarization: usize,
}

/// Reusable sparse-vector scratch: dense values plus an explicit support list, so a
/// vector whose support is a tiny neighborhood costs only its support to read,
/// update, and clear.
#[derive(Debug, Default, Clone)]
struct SparseVec {
    values: Vec<f64>,
    support: Vec<usize>,
    marked: Vec<bool>,
}

impl SparseVec {
    fn with_len(n: usize) -> Self {
        SparseVec {
            values: vec![0.0; n],
            support: Vec::new(),
            marked: vec![false; n],
        }
    }

    fn clear(&mut self) {
        for &t in &self.support {
            self.values[t] = 0.0;
            self.marked[t] = false;
        }
        self.support.clear();
    }

    fn add(&mut self, index: usize, value: f64) {
        if !self.marked[index] {
            self.marked[index] = true;
            self.support.push(index);
        }
        self.values[index] += value;
    }

    /// Drop support entries whose value cancelled to exactly zero, so later passes
    /// (and the rows-touched counter) only see genuine contributions.
    fn compact(&mut self) {
        let values = &mut self.values;
        let marked = &mut self.marked;
        self.support.retain(|&t| {
            if values[t] == 0.0 {
                marked[t] = false;
                false
            } else {
                true
            }
        });
    }
}

/// Maintains the factorized path counts of one `(graph, counting mode, ℓmax)`
/// configuration under streaming seed mutations. See the [module docs](self) for
/// the update rule and the bit-identity contract.
#[derive(Debug)]
pub struct DeltaSummary {
    graph: Arc<Graph>,
    seeds: SeedLabels,
    max_length: usize,
    non_backtracking: bool,
    threads: Threads,
    /// `N(1)..N(ℓmax)`, each `n x k` — the recurrence intermediates kept alive.
    n_mats: Vec<DenseMatrix>,
    /// `M(1)..M(ℓmax)`, each `k x k` — the maintained raw counts.
    counts: Vec<DenseMatrix>,
    /// Whether the exact-integer argument applies to this graph at all (integer,
    /// non-negative edge weights). When `false` every batch recomputes fully.
    exact: bool,
    /// Magnitude ceiling under which every intermediate of both the fresh and the
    /// delta evaluation order is an exactly representable integer.
    magnitude_limit: f64,
    /// Set when a delta write exceeded `magnitude_limit`; repaired by the
    /// end-of-batch full recomputation.
    violated: bool,
    stats: DeltaStats,
    scratch: [SparseVec; 3],
}

impl DeltaSummary {
    /// Build the engine with one full summarization of `seeds` (counted in
    /// [`stats`](Self::stats)). `max_length ≥ 1`; the kept counts serve any request
    /// with `max_length` up to this value (prefix stability).
    pub fn new(
        graph: Arc<Graph>,
        seeds: SeedLabels,
        max_length: usize,
        non_backtracking: bool,
        threads: Threads,
    ) -> Result<Self> {
        let n = graph.num_nodes();
        let (exact, magnitude_limit) = exactness_of(&graph);
        let mut engine = DeltaSummary {
            graph,
            seeds,
            max_length,
            non_backtracking,
            threads,
            n_mats: Vec::new(),
            counts: Vec::new(),
            exact,
            magnitude_limit,
            violated: false,
            stats: DeltaStats::default(),
            scratch: [
                SparseVec::with_len(n),
                SparseVec::with_len(n),
                SparseVec::with_len(n),
            ],
        };
        engine.recompute()?;
        Ok(engine)
    }

    /// The graph this engine summarizes.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The current seed set (after all applied mutations).
    pub fn seeds(&self) -> &SeedLabels {
        &self.seeds
    }

    /// Maximum maintained path length.
    pub fn max_length(&self) -> usize {
        self.max_length
    }

    /// Whether non-backtracking counting is maintained.
    pub fn non_backtracking(&self) -> bool {
        self.non_backtracking
    }

    /// The maintained raw count matrices `M(1)..M(ℓmax)`.
    pub fn counts(&self) -> &[DenseMatrix] {
        &self.counts
    }

    /// The maintained `N(1) = W · X` product (`n x k`) — the statistic LCE's energy
    /// is built from. `N(1)` is independent of the counting mode, and the same
    /// rank-one updates that keep the counts exact keep it bit-identical to a cold
    /// product on the current seed set.
    pub fn wx(&self) -> &DenseMatrix {
        &self.n_mats[0]
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Content fingerprint of the graph.
    pub fn graph_fingerprint(&self) -> Fingerprint {
        self.graph.fingerprint()
    }

    /// Content fingerprint of the **current** seed set, re-derived from the mutated
    /// observations (equal to the fingerprint of a freshly loaded copy of the same
    /// seed set — the property the content-addressed cache and store key on).
    pub fn seed_fingerprint(&self) -> Fingerprint {
        self.seeds.fingerprint()
    }

    /// Assemble a [`GraphSummary`] for the maintained configuration under any
    /// normalization variant (counts are variant-independent), truncated to
    /// `max_length` (must be ≤ the maintained length).
    pub fn summary(&self, config: &SummaryConfig) -> Result<GraphSummary> {
        if config.backend != crate::paths::CountingBackend::Exact {
            return Err(CoreError::InvalidConfig(
                "the incremental engine maintains exact counts; request the low-rank \
                 backend through an EstimationContext instead"
                    .into(),
            ));
        }
        if config.non_backtracking != self.non_backtracking {
            return Err(CoreError::InvalidConfig(format!(
                "engine maintains non_backtracking = {}, requested {}",
                self.non_backtracking, config.non_backtracking
            )));
        }
        if config.max_length == 0 || config.max_length > self.max_length {
            return Err(CoreError::InvalidConfig(format!(
                "engine maintains lengths 1..={}, requested {}",
                self.max_length, config.max_length
            )));
        }
        let counts = self.counts[..config.max_length].to_vec();
        Ok(summary_from_counts(
            counts,
            self.seeds.k(),
            self.non_backtracking,
            config.variant,
        ))
    }

    /// Write-back the maintained counts **and** the maintained `W · X` product into
    /// a shared [`SummaryCache`] under the current fingerprints (no computation is
    /// counted: both artifacts already exist). Subsequent
    /// [`EstimationContext`](crate::EstimationContext) requests on the same data —
    /// including LCE's [`wx`](crate::EstimationContext::wx) — are then pure cache
    /// hits.
    pub fn publish_to(&self, cache: &SummaryCache) {
        cache.publish(
            self.graph_fingerprint(),
            self.seed_fingerprint(),
            self.non_backtracking,
            self.counts.clone(),
        );
        if let Some(wx) = self.n_mats.first() {
            cache.publish_wx(
                self.graph_fingerprint(),
                self.seed_fingerprint(),
                Arc::new(wx.clone()),
            );
        }
    }

    /// Persist the maintained counts into a [`SummaryStore`] under the current
    /// fingerprints, so even a restarted process skips summarization. Best-effort
    /// like the context's write-back path.
    pub fn persist_to(&self, store: &SummaryStore) -> Result<()> {
        store
            .save(
                self.graph_fingerprint(),
                self.seed_fingerprint(),
                self.non_backtracking,
                self.seeds.k(),
                &self.counts,
            )
            .map(|_| ())
    }

    /// An independent engine for the same `(graph, mode, ℓmax)` configuration,
    /// starting from the current counts and seed state but with **zeroed work
    /// counters**.
    ///
    /// The serving tier's engine LRU forks the live engine before applying a
    /// mutation batch, so the pre-mutation state stays warm for reverts. Zeroing
    /// the fork's [`stats`](Self::stats) keeps session-wide summarization totals
    /// honest: the original retains the full summarizations it actually ran, and
    /// the fork reports only the work it does itself.
    pub fn fork(&self) -> DeltaSummary {
        DeltaSummary {
            graph: Arc::clone(&self.graph),
            seeds: self.seeds.clone(),
            max_length: self.max_length,
            non_backtracking: self.non_backtracking,
            threads: self.threads,
            n_mats: self.n_mats.clone(),
            counts: self.counts.clone(),
            exact: self.exact,
            magnitude_limit: self.magnitude_limit,
            violated: self.violated,
            stats: DeltaStats::default(),
            scratch: self.scratch.clone(),
        }
    }

    /// Apply a batch of seed mutations, keeping counts bit-identical to a cold
    /// summarization of the resulting seed set.
    ///
    /// The whole batch is validated against the current seed state **before**
    /// anything is applied, so an invalid mutation (out-of-range node or label,
    /// `Add` on a labeled node, `Remove`/`Relabel` on an unlabeled one) leaves the
    /// engine untouched. Valid batches take the delta path; graphs or magnitudes
    /// outside the exact-integer regime are repaired with one full recomputation at
    /// the end of the batch (reported in the outcome, never silently).
    pub fn apply(&mut self, mutations: &[SeedMutation]) -> Result<ApplyOutcome> {
        self.validate(mutations)?;
        let mut outcome = ApplyOutcome::default();
        if !self.exact {
            for m in mutations {
                self.mutate_seed_only(m);
            }
            if !mutations.is_empty() {
                self.recompute()?;
                outcome.full_recomputes = 1;
            }
            return Ok(outcome);
        }
        for m in mutations {
            let rows = self.apply_delta(m);
            self.stats.delta_mutations += 1;
            self.stats.delta_rows_touched += rows;
            outcome.delta_applied += 1;
            outcome.rows_touched += rows;
        }
        if self.violated {
            // A write left the provably-exact magnitude range: the counts may have
            // rounded, so rebuild them from scratch (the seeds are already final).
            self.recompute()?;
            self.violated = false;
            outcome.full_recomputes = 1;
        }
        Ok(outcome)
    }

    /// Check a batch against the current seed state without modifying anything.
    fn validate(&self, mutations: &[SeedMutation]) -> Result<()> {
        validate_mutations(&self.seeds, mutations)
    }

    /// Mutate the seed set without touching the counts (full-recompute path).
    fn mutate_seed_only(&mut self, m: &SeedMutation) {
        let (node, label) = match *m {
            SeedMutation::Add { node, label } | SeedMutation::Relabel { node, label } => {
                (node, Some(label))
            }
            SeedMutation::Remove { node } => (node, None),
        };
        self.seeds
            .set_label(node, label)
            .expect("validated before apply");
    }

    /// Fold one validated mutation into the maintained matrices; returns the number
    /// of node-rows touched.
    fn apply_delta(&mut self, m: &SeedMutation) -> usize {
        let (node, new) = match *m {
            SeedMutation::Add { node, label } | SeedMutation::Relabel { node, label } => {
                (node, Some(label))
            }
            SeedMutation::Remove { node } => (node, None),
        };
        let old = self.seeds.get(node);
        if old == new {
            // A relabel to the current class changes nothing.
            return 0;
        }
        let k = self.seeds.k();
        let limit = self.magnitude_limit;
        let mut rows_touched = 0usize;

        // The three-slot ring of aℓ vectors: prev2, prev1, current.
        let mut scratch = std::mem::take(&mut self.scratch);
        let [ref mut s0, ref mut s1, ref mut s2] = scratch;
        s0.clear();
        s1.clear();
        s2.clear();

        for ell in 1..=self.max_length {
            // Rotate so s2 becomes the vector under construction; s1 = aℓ₋₁,
            // s0 = aℓ₋₂ (empty vectors for the base cases).
            if ell >= 2 {
                std::mem::swap(s0, s1);
                std::mem::swap(s1, s2);
                s2.clear();
            }
            if ell == 1 {
                // a₁ = W e_i: the mutated node's adjacency column (= row, W is
                // symmetric).
                let (nbrs, weights) = self.graph.neighbors_weighted(node);
                for (&u, &w) in nbrs.iter().zip(weights) {
                    s2.add(u, w);
                }
            } else {
                // aℓ = W aℓ₋₁ − corrections, scattered over the support: symmetric
                // W means column t equals row t.
                // (Scatter order differs from the fresh row-dot order; exact
                // integer arithmetic makes the result bit-identical anyway.)
                for idx in 0..s1.support.len() {
                    let t = s1.support[idx];
                    let v = s1.values[t];
                    let (nbrs, weights) = self.graph.neighbors_weighted(t);
                    for (&u, &w) in nbrs.iter().zip(weights) {
                        s2.add(u, w * v);
                    }
                }
                if self.non_backtracking {
                    if ell == 2 {
                        // a₂ = W a₁ − D e_i.
                        s2.add(node, -self.graph.degree(node));
                    } else {
                        // aℓ = W aℓ₋₁ − (D − I) aℓ₋₂.
                        for idx in 0..s0.support.len() {
                            let t = s0.support[idx];
                            let v = s0.values[t];
                            s2.add(t, -(self.graph.degree(t) - 1.0) * v);
                        }
                    }
                }
            }
            s2.compact();
            for &t in &s2.support {
                if s2.values[t].abs() >= limit {
                    self.violated = true;
                }
            }
            rows_touched += s2.support.len();

            // M(ℓ) += Xᵀ ΔN(ℓ): group aℓ over the classes of the *old* seed set.
            let counts = &mut self.counts[ell - 1];
            let mut class_sums = vec![0.0; k];
            for &t in &s2.support {
                if let Some(g) = self.seeds.get(t) {
                    class_sums[g] += s2.values[t];
                }
            }
            // Old-class writes subtract non-negative contributions from entries
            // whose previous values already passed the headroom check, so they
            // cannot mathematically leave the exact range — they are checked
            // anyway so that *every* write is guarded, keeping the invariant
            // robust to future changes in the surrounding arithmetic.
            for (g, &sum) in class_sums.iter().enumerate() {
                if sum == 0.0 {
                    continue;
                }
                if let Some(c) = new {
                    counts.add_at(g, c, sum);
                    if counts.get(g, c).abs() >= limit {
                        self.violated = true;
                    }
                }
                if let Some(o) = old {
                    counts.add_at(g, o, -sum);
                    if counts.get(g, o).abs() >= limit {
                        self.violated = true;
                    }
                }
            }

            // N(ℓ) += ΔN(ℓ): add ±aℓ into the old/new class columns.
            let n_mat = &mut self.n_mats[ell - 1];
            for &t in &s2.support {
                let v = s2.values[t];
                if let Some(c) = new {
                    n_mat.add_at(t, c, v);
                    if n_mat.get(t, c).abs() >= limit {
                        self.violated = true;
                    }
                }
                if let Some(o) = old {
                    n_mat.add_at(t, o, -v);
                    if n_mat.get(t, o).abs() >= limit {
                        self.violated = true;
                    }
                }
            }

            // M(ℓ) += ΔXᵀ N'(ℓ): the mutated node's (updated) N-row moves between
            // the old and new class rows.
            let row: Vec<f64> = n_mat.row(node).to_vec();
            for (j, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                if let Some(c) = new {
                    counts.add_at(c, j, v);
                    if counts.get(c, j).abs() >= limit {
                        self.violated = true;
                    }
                }
                if let Some(o) = old {
                    counts.add_at(o, j, -v);
                    if counts.get(o, j).abs() >= limit {
                        self.violated = true;
                    }
                }
            }
        }
        self.scratch = scratch;
        self.seeds
            .set_label(node, new)
            .expect("validated before apply");
        rows_touched
    }

    /// Rebuild counts and intermediates from the current seed set with one full
    /// summarization (also re-checks the magnitude headroom).
    fn recompute(&mut self) -> Result<()> {
        let (counts, n_mats) = compute_path_counts_and_intermediates(
            &self.graph,
            &self.seeds,
            self.max_length,
            self.non_backtracking,
            self.threads,
        )?;
        self.counts = counts;
        self.n_mats = n_mats;
        self.stats.full_summarizations += 1;
        self.stats.full_rows_per_summarization = self.graph.num_nodes() * self.max_length;
        if self.exact {
            let over_limit =
                |m: &DenseMatrix| m.data().iter().any(|v| v.abs() >= self.magnitude_limit);
            if self.n_mats.iter().any(over_limit) || self.counts.iter().any(over_limit) {
                // Too little headroom to prove future updates exact: stay correct by
                // recomputing from now on.
                self.exact = false;
            }
        }
        Ok(())
    }
}

/// Check a mutation batch against a seed state without modifying anything: node and
/// label ranges, `Add` only on unlabeled nodes, `Remove`/`Relabel` only on labeled
/// ones — tracking the simulated effect of earlier mutations in the same batch so a
/// batch may add and then relabel one node. This is the validation
/// [`DeltaSummary::apply`] runs before touching any state; serving layers call it to
/// vet a request against their authoritative seed copy with identical rules.
pub fn validate_mutations(seeds: &SeedLabels, mutations: &[SeedMutation]) -> Result<()> {
    let n = seeds.n();
    let k = seeds.k();
    // Simulated labels of nodes touched earlier in the same batch.
    let mut pending: Vec<(usize, Option<usize>)> = Vec::new();
    for m in mutations {
        let node = m.node();
        if node >= n {
            return Err(CoreError::InvalidInput(format!(
                "seed mutation names node {node} but the graph has {n} nodes"
            )));
        }
        let current = pending
            .iter()
            .rev()
            .find(|(t, _)| *t == node)
            .map(|(_, l)| *l)
            .unwrap_or_else(|| seeds.get(node));
        let next = match *m {
            SeedMutation::Add { label, .. } | SeedMutation::Relabel { label, .. } if label >= k => {
                return Err(CoreError::InvalidInput(format!(
                    "seed mutation labels node {node} with class {label} but k = {k}"
                )));
            }
            SeedMutation::Add { label, .. } => {
                if current.is_some() {
                    return Err(CoreError::InvalidInput(format!(
                        "cannot add a seed at node {node}: it is already labeled \
                         (use relabel)"
                    )));
                }
                Some(label)
            }
            SeedMutation::Remove { .. } => {
                if current.is_none() {
                    return Err(CoreError::InvalidInput(format!(
                        "cannot remove the seed at node {node}: it is unlabeled"
                    )));
                }
                None
            }
            SeedMutation::Relabel { label, .. } => {
                if current.is_none() {
                    return Err(CoreError::InvalidInput(format!(
                        "cannot relabel node {node}: it is unlabeled (use add)"
                    )));
                }
                Some(label)
            }
        };
        pending.push((node, next));
    }
    Ok(())
}

/// Decide whether the exact-integer argument applies to a graph, and with which
/// magnitude ceiling. The ceiling leaves a `max_degree + 2` factor of headroom below
/// 2⁵³ so that every *intermediate* of both evaluation orders (partial scatter sums,
/// `W·N` products before the non-backtracking correction) is exact whenever the
/// checked final values are.
fn exactness_of(graph: &Graph) -> (bool, f64) {
    let max_degree = graph.degrees().iter().fold(0.0f64, |acc, &d| acc.max(d));
    let limit = (2.0f64).powi(53) / (max_degree + 2.0).max(2.0);
    let integer_weights = graph
        .edges()
        .all(|(_, _, w)| w.is_finite() && w >= 0.0 && w.fract() == 0.0 && w < limit);
    (integer_weights, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalization::NormalizationVariant;
    use crate::paths::summarize_with;
    use fg_graph::{generate, GeneratorConfig, Labeling};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn seeded_case(seed: u64) -> (Arc<Graph>, SeedLabels, Labeling) {
        let cfg = GeneratorConfig::balanced(500, 8.0, 3, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
        (Arc::new(syn.graph), seeds, syn.labeling)
    }

    fn assert_counts_match_fresh(engine: &DeltaSummary, context: &str) {
        let config = SummaryConfig {
            max_length: engine.max_length(),
            non_backtracking: engine.non_backtracking(),
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        let fresh =
            summarize_with(engine.graph(), engine.seeds(), &config, Threads::Serial).unwrap();
        for l in 1..=engine.max_length() {
            let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&engine.counts()[l - 1]),
                bits(fresh.count(l).unwrap()),
                "{context}: counts diverge at length {l}"
            );
        }
    }

    #[test]
    fn single_mutations_are_bit_identical_to_fresh_summaries() {
        for non_backtracking in [true, false] {
            let (graph, seeds, truth) = seeded_case(11);
            let mut engine = DeltaSummary::new(
                Arc::clone(&graph),
                seeds,
                5,
                non_backtracking,
                Threads::Serial,
            )
            .unwrap();
            // Add a seed at the first unlabeled node.
            let node = engine.seeds().unlabeled_nodes()[0];
            let outcome = engine
                .apply(&[SeedMutation::Add {
                    node,
                    label: truth.class_of(node),
                }])
                .unwrap();
            assert_eq!(outcome.delta_applied, 1);
            assert_eq!(outcome.full_recomputes, 0);
            assert!(outcome.rows_touched > 0);
            assert_counts_match_fresh(&engine, "add");
            // Relabel it, then remove it.
            let new_label = (truth.class_of(node) + 1) % engine.seeds().k();
            engine
                .apply(&[SeedMutation::Relabel {
                    node,
                    label: new_label,
                }])
                .unwrap();
            assert_counts_match_fresh(&engine, "relabel");
            engine.apply(&[SeedMutation::Remove { node }]).unwrap();
            assert_counts_match_fresh(&engine, "remove");
            // The whole sequence took zero extra full summarizations.
            assert_eq!(engine.stats().full_summarizations, 1);
            assert_eq!(engine.stats().delta_mutations, 3);
        }
    }

    #[test]
    fn forked_engines_diverge_independently_with_zeroed_counters() {
        let (graph, seeds, truth) = seeded_case(17);
        let mut original =
            DeltaSummary::new(Arc::clone(&graph), seeds, 4, true, Threads::Serial).unwrap();
        let node = original.seeds().unlabeled_nodes()[0];
        let fork = original.fork();
        assert_eq!(fork.stats().full_summarizations, 0);
        assert_eq!(fork.seed_fingerprint(), original.seed_fingerprint());

        // Mutate only the fork: the original's counts and fingerprint are untouched,
        // and both engines independently match fresh summaries of their own state.
        let mut fork = fork;
        fork.apply(&[SeedMutation::Add {
            node,
            label: truth.class_of(node),
        }])
        .unwrap();
        assert_ne!(fork.seed_fingerprint(), original.seed_fingerprint());
        assert_counts_match_fresh(&fork, "fork after mutation");
        assert_counts_match_fresh(&original, "original after fork mutation");
        assert_eq!(fork.stats().full_summarizations, 0);
        assert_eq!(fork.stats().delta_mutations, 1);
        assert_eq!(original.stats().delta_mutations, 0);

        // The original can still take its own mutations.
        original
            .apply(&[SeedMutation::Add {
                node,
                label: (truth.class_of(node) + 1) % original.seeds().k(),
            }])
            .unwrap();
        assert_counts_match_fresh(&original, "original after own mutation");
    }

    #[test]
    fn random_mutation_streams_stay_bit_identical() {
        for (case, non_backtracking) in [(1u64, true), (2, false), (3, true)] {
            let (graph, seeds, truth) = seeded_case(case);
            let k = seeds.k();
            let mut engine = DeltaSummary::new(
                Arc::clone(&graph),
                seeds,
                4,
                non_backtracking,
                Threads::Serial,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(1000 + case);
            for step in 0..30 {
                let labeled = engine.seeds().labeled_nodes();
                let unlabeled = engine.seeds().unlabeled_nodes();
                let mutation = match rng.gen_index(3) {
                    0 if !unlabeled.is_empty() => {
                        let node = unlabeled[rng.gen_index(unlabeled.len())];
                        SeedMutation::Add {
                            node,
                            label: truth.class_of(node),
                        }
                    }
                    1 if labeled.len() > 1 => SeedMutation::Remove {
                        node: labeled[rng.gen_index(labeled.len())],
                    },
                    _ if !labeled.is_empty() => SeedMutation::Relabel {
                        node: labeled[rng.gen_index(labeled.len())],
                        label: rng.gen_index(k),
                    },
                    _ => continue,
                };
                engine.apply(&[mutation]).unwrap();
                if step % 10 == 9 {
                    assert_counts_match_fresh(&engine, &format!("case {case} step {step}"));
                }
            }
            assert_counts_match_fresh(&engine, &format!("case {case} final"));
            assert_eq!(engine.stats().full_summarizations, 1);
        }
    }

    #[test]
    fn batches_apply_atomically_and_validate_first() {
        let (graph, seeds, truth) = seeded_case(5);
        let mut engine =
            DeltaSummary::new(Arc::clone(&graph), seeds, 3, true, Threads::Serial).unwrap();
        let before: Vec<Vec<u64>> = engine
            .counts()
            .iter()
            .map(|m| m.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        let node = engine.seeds().unlabeled_nodes()[0];
        // The second mutation is invalid (double add), so nothing applies.
        let err = engine
            .apply(&[
                SeedMutation::Add {
                    node,
                    label: truth.class_of(node),
                },
                SeedMutation::Add {
                    node,
                    label: truth.class_of(node),
                },
            ])
            .unwrap_err();
        assert!(err.to_string().contains("already labeled"), "{err}");
        let after: Vec<Vec<u64>> = engine
            .counts()
            .iter()
            .map(|m| m.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(before, after);
        assert_eq!(engine.stats().delta_mutations, 0);

        // A batch that adds then relabels the same node in one go is valid.
        let outcome = engine
            .apply(&[
                SeedMutation::Add {
                    node,
                    label: truth.class_of(node),
                },
                SeedMutation::Relabel { node, label: 0 },
            ])
            .unwrap();
        assert_eq!(outcome.delta_applied, 2);
        assert_counts_match_fresh(&engine, "batch");

        // Out-of-range inputs are rejected.
        assert!(engine
            .apply(&[SeedMutation::Add {
                node: graph.num_nodes(),
                label: 0
            }])
            .is_err());
        assert!(engine
            .apply(&[SeedMutation::Relabel { node, label: 99 }])
            .is_err());
        assert!(engine
            .apply(&[SeedMutation::Remove {
                node: engine.seeds().unlabeled_nodes()[0]
            }])
            .is_err());
    }

    #[test]
    fn non_integer_weights_fall_back_to_full_recomputation() {
        let graph = Arc::new(
            Graph::from_weighted_edges(
                5,
                &[
                    (0, 1, 0.5),
                    (1, 2, 1.5),
                    (2, 3, 1.0),
                    (3, 4, 2.0),
                    (4, 0, 1.0),
                ],
            )
            .unwrap(),
        );
        let seeds = SeedLabels::new(vec![Some(0), None, Some(1), None, None], 2).unwrap();
        let mut engine =
            DeltaSummary::new(Arc::clone(&graph), seeds, 3, true, Threads::Serial).unwrap();
        let outcome = engine
            .apply(&[SeedMutation::Add { node: 1, label: 1 }])
            .unwrap();
        // The engine stays correct by recomputing instead of delta-updating.
        assert_eq!(outcome.delta_applied, 0);
        assert_eq!(outcome.full_recomputes, 1);
        assert_counts_match_fresh(&engine, "weighted");
        assert_eq!(engine.stats().full_summarizations, 2);
    }

    #[test]
    fn summary_accessor_serves_prefixes_and_rejects_mismatches() {
        let (graph, seeds, _) = seeded_case(8);
        let engine = DeltaSummary::new(graph, seeds, 4, true, Threads::Serial).unwrap();
        let summary = engine
            .summary(&SummaryConfig {
                max_length: 2,
                non_backtracking: true,
                variant: NormalizationVariant::MeanScaled,
                ..SummaryConfig::default()
            })
            .unwrap();
        assert_eq!(summary.max_length(), 2);
        assert!(engine.summary(&SummaryConfig::with_max_length(9)).is_err());
        assert!(engine
            .summary(&SummaryConfig {
                max_length: 2,
                non_backtracking: false,
                variant: NormalizationVariant::RowStochastic,
                ..SummaryConfig::default()
            })
            .is_err());
    }

    #[test]
    fn publish_makes_context_requests_computation_free() {
        use crate::context::EstimationContext;

        let (graph, seeds, truth) = seeded_case(13);
        let mut engine =
            DeltaSummary::new(Arc::clone(&graph), seeds, 5, true, Threads::Serial).unwrap();
        let node = engine.seeds().unlabeled_nodes()[0];
        engine
            .apply(&[SeedMutation::Add {
                node,
                label: truth.class_of(node),
            }])
            .unwrap();

        let cache = SummaryCache::shared();
        engine.publish_to(&cache);
        let current = engine.seeds().clone();
        let ctx = EstimationContext::with_cache(&graph, &current, Arc::clone(&cache));
        let served = ctx.summary(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 0);
        let fresh = summarize_with(
            &graph,
            &current,
            &SummaryConfig::with_max_length(5),
            Threads::Serial,
        )
        .unwrap();
        for l in 1..=5 {
            assert_eq!(
                served.count(l).unwrap().data(),
                fresh.count(l).unwrap().data()
            );
        }
    }

    #[test]
    fn wx_is_maintained_and_published_bit_identically() {
        use crate::context::EstimationContext;

        let (graph, seeds, truth) = seeded_case(21);
        let mut engine =
            DeltaSummary::new(Arc::clone(&graph), seeds, 4, true, Threads::Serial).unwrap();
        // Stream adds, a relabel, and a remove through the delta path.
        let nodes: Vec<usize> = engine.seeds().unlabeled_nodes()[..6].to_vec();
        for &node in &nodes {
            engine
                .apply(&[SeedMutation::Add {
                    node,
                    label: truth.class_of(node),
                }])
                .unwrap();
        }
        engine
            .apply(&[
                SeedMutation::Relabel {
                    node: nodes[0],
                    label: (truth.class_of(nodes[0]) + 1) % engine.seeds().k(),
                },
                SeedMutation::Remove { node: nodes[1] },
            ])
            .unwrap();
        assert_eq!(engine.stats().full_summarizations, 1);
        // The maintained N(1) is bit-identical to a cold W·X on the final seeds.
        let cold = graph
            .adjacency()
            .spmm_dense(&engine.seeds().to_matrix())
            .unwrap();
        let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(engine.wx()), bits(&cold));
        // publish_to also publishes W·X: the context serves it without recomputing
        // (and bit-identical to the cold product).
        let cache = SummaryCache::shared();
        engine.publish_to(&cache);
        let current = engine.seeds().clone();
        let ctx = EstimationContext::with_cache(&graph, &current, Arc::clone(&cache));
        let served = ctx.wx().unwrap();
        assert_eq!(bits(&served), bits(&cold));
        // A published entry is kept: a second publish under the same key does not
        // replace the Arc the context already handed out.
        let other = Arc::new(engine.wx().clone());
        cache.publish_wx(
            engine.graph_fingerprint(),
            engine.seed_fingerprint(),
            Arc::clone(&other),
        );
        assert!(!Arc::ptr_eq(&ctx.wx().unwrap(), &other));
        // On a fresh cache, a pre-published wx is returned as the very same Arc —
        // proof the product was served, not recomputed.
        let fresh_cache = SummaryCache::shared();
        fresh_cache.publish_wx(
            engine.graph_fingerprint(),
            engine.seed_fingerprint(),
            Arc::clone(&other),
        );
        let ctx2 = EstimationContext::with_cache(&graph, &current, Arc::clone(&fresh_cache));
        assert!(Arc::ptr_eq(&ctx2.wx().unwrap(), &other));
    }

    #[test]
    fn persist_makes_store_requests_computation_free() {
        use crate::context::EstimationContext;

        let (graph, seeds, truth) = seeded_case(17);
        let mut engine =
            DeltaSummary::new(Arc::clone(&graph), seeds, 3, true, Threads::Serial).unwrap();
        let node = engine.seeds().unlabeled_nodes()[0];
        engine
            .apply(&[SeedMutation::Add {
                node,
                label: truth.class_of(node),
            }])
            .unwrap();

        let dir = std::env::temp_dir().join("fg_delta_persist");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SummaryStore::open(&dir).unwrap());
        engine.persist_to(&store).unwrap();

        let current = engine.seeds().clone();
        let ctx = EstimationContext::new(&graph, &current).store(Arc::clone(&store));
        ctx.warm(&SummaryConfig::with_max_length(3)).unwrap();
        assert_eq!(ctx.summary_computations(), 0);
        assert_eq!(ctx.store_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
