//! Myopic Compatibility Estimation (MCE, Section 4.3).
//!
//! MCE summarizes the *direct* neighbor statistics `M = Xᵀ W X`, normalizes them
//! (variant 1 by default), and finds the closest symmetric doubly-stochastic matrix by
//! minimizing the convex energy `||H − P̂||²` (Eq. 12) over the free parameters.

use super::CompatibilityEstimator;
use crate::context::EstimationContext;
use crate::energy::MceEnergy;
use crate::error::Result;
use crate::normalization::NormalizationVariant;
use crate::optimize::{minimize, GradientDescentConfig};
use crate::param::{free_to_matrix, uniform_start};
use crate::paths::{summarize_with, SummaryConfig};
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// The MCE estimator.
#[derive(Debug, Clone)]
pub struct MyopicCompatibilityEstimation {
    /// Normalization applied to the raw neighbor counts.
    pub variant: NormalizationVariant,
    /// Optimizer settings for the (convex) projection step.
    pub optimizer: GradientDescentConfig,
    /// Thread policy for the summarization kernel (bit-identical at any count).
    pub threads: Threads,
}

impl Default for MyopicCompatibilityEstimation {
    fn default() -> Self {
        MyopicCompatibilityEstimation {
            variant: NormalizationVariant::RowStochastic,
            optimizer: GradientDescentConfig::default(),
            threads: Threads::Serial,
        }
    }
}

impl MyopicCompatibilityEstimation {
    /// Create an MCE estimator with a specific normalization variant.
    pub fn with_variant(variant: NormalizationVariant) -> Self {
        MyopicCompatibilityEstimation {
            variant,
            ..Default::default()
        }
    }

    /// Estimate directly from a precomputed observed statistics matrix `P̂`.
    pub fn estimate_from_statistics(&self, statistics: &DenseMatrix) -> Result<DenseMatrix> {
        let k = statistics.rows();
        let energy = MceEnergy::new(statistics.clone())?;
        let outcome = minimize(&energy, &uniform_start(k), &self.optimizer)?;
        free_to_matrix(&outcome.x, k)
    }

    /// The (length-1) summarization MCE consumes.
    fn summary_config(&self) -> SummaryConfig {
        SummaryConfig {
            max_length: 1,
            non_backtracking: true,
            variant: self.variant,
            ..SummaryConfig::default()
        }
    }
}

impl CompatibilityEstimator for MyopicCompatibilityEstimation {
    fn name(&self) -> String {
        if self.variant == NormalizationVariant::RowStochastic {
            "MCE".to_string()
        } else {
            format!("MCE(variant={})", self.variant.index())
        }
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        super::require_labeled(seeds, "MCE")?;
        let summary = summarize_with(graph, seeds, &self.summary_config(), self.threads)?;
        self.estimate_from_statistics(summary.statistic(1).expect("length 1 requested"))
    }

    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        super::require_labeled(ctx.seeds(), "MCE")?;
        let summary = ctx.summary(&self.summary_config())?;
        self.estimate_from_statistics(summary.statistic(1).expect("length 1 requested"))
    }

    fn summary_requirements(&self) -> Option<SummaryConfig> {
        Some(self.summary_config())
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        Box::new(MyopicCompatibilityEstimation {
            threads,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generate, GeneratorConfig, Labeling, SeedLabels};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mce_recovers_h_on_densely_labeled_graph() {
        let cfg = GeneratorConfig::balanced_uniform(1500, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.5, &mut rng);
        let est = MyopicCompatibilityEstimation::default();
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        let err = syn.planted_h.l2_distance(&h).unwrap();
        assert!(err < 0.15, "L2 error {err}");
        assert_eq!(est.name(), "MCE");
    }

    #[test]
    fn mce_struggles_with_extremely_sparse_labels() {
        // With only a handful of labeled nodes almost no edge has both endpoints
        // labeled, so MCE's estimate stays near its uninformative starting point —
        // this is the gap DCE closes.
        let cfg = GeneratorConfig::balanced(3000, 10.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.002, &mut rng);
        let est = MyopicCompatibilityEstimation::default();
        // MCE may or may not find labeled neighbors at all; either an error or a poor
        // estimate is acceptable, but a *good* estimate would be suspicious.
        if let Ok(h) = est.estimate(&syn.graph, &seeds) {
            let err = syn.planted_h.l2_distance(&h).unwrap();
            let uniform_err = syn
                .planted_h
                .l2_distance(&DenseMatrix::filled(3, 3, 1.0 / 3.0))
                .unwrap();
            assert!(
                err > 0.3 * uniform_err,
                "MCE should not recover H from 0.2% labels"
            );
        }
    }

    #[test]
    fn all_variants_work_on_a_fully_labeled_graph() {
        let cfg = GeneratorConfig::balanced_uniform(800, 16.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = SeedLabels::fully_labeled(&syn.labeling);
        for variant in NormalizationVariant::all() {
            let est = MyopicCompatibilityEstimation::with_variant(variant);
            let h = est.estimate(&syn.graph, &seeds).unwrap();
            let err = syn.planted_h.l2_distance(&h).unwrap();
            assert!(err < 0.2, "variant {variant:?} error {err}");
        }
    }

    #[test]
    fn mce_requires_labels() {
        let graph = fg_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = SeedLabels::new(vec![None; 4], 2).unwrap();
        assert!(MyopicCompatibilityEstimation::default()
            .estimate(&graph, &seeds)
            .is_err());
    }

    #[test]
    fn estimate_from_statistics_projects_to_doubly_stochastic() {
        let stats = DenseMatrix::from_rows(&[vec![0.3, 0.8], vec![0.6, 0.1]]).unwrap();
        let est = MyopicCompatibilityEstimation::default();
        let h = est.estimate_from_statistics(&stats).unwrap();
        assert!(h.is_symmetric(1e-9));
        for s in h.row_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
        let labeling = Labeling::new(vec![0, 1], 2).unwrap();
        let _ = labeling; // silence unused warnings in some configurations
    }
}
