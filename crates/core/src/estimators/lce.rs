//! Linear Compatibility Estimation (LCE, Section 4.2).
//!
//! LCE minimizes `||X − W X H||²` (Eq. 8), the energy obtained by substituting the
//! observed labels `X` for the unknown final beliefs `F` in LinBP's objective
//! (Proposition 3.2). The problem is convex; unlike MCE/DCE it does not factor the
//! graph out of the optimization, so each gradient evaluation costs `O(n k²)`.

use super::CompatibilityEstimator;
use crate::context::EstimationContext;
use crate::energy::LceEnergy;
use crate::error::{CoreError, Result};
use crate::optimize::{minimize, GradientDescentConfig};
use crate::param::{free_to_matrix, uniform_start};
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// The LCE estimator.
#[derive(Debug, Clone, Default)]
pub struct LinearCompatibilityEstimation {
    /// Optimizer settings for the convex minimization.
    pub optimizer: GradientDescentConfig,
    /// Thread policy for the `W·X` product (bit-identical at any count).
    pub threads: Threads,
}

impl LinearCompatibilityEstimation {
    fn validate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<()> {
        if seeds.n() != graph.num_nodes() {
            return Err(CoreError::InvalidInput(format!(
                "seed labels cover {} nodes but graph has {}",
                seeds.n(),
                graph.num_nodes()
            )));
        }
        if seeds.num_labeled() == 0 {
            return Err(CoreError::InvalidInput(
                "LCE requires at least one labeled node".into(),
            ));
        }
        Ok(())
    }

    /// Run the convex minimization given the one-hot seed matrix `X` and the
    /// precomputed product `W·X`.
    fn estimate_from_wx(&self, x: DenseMatrix, wx: DenseMatrix, k: usize) -> Result<DenseMatrix> {
        let energy = LceEnergy::new(x, wx)?;
        let outcome = minimize(&energy, &uniform_start(k), &self.optimizer)?;
        free_to_matrix(&outcome.x, k)
    }
}

impl CompatibilityEstimator for LinearCompatibilityEstimation {
    fn name(&self) -> String {
        "LCE".to_string()
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        self.validate(graph, seeds)?;
        let x = seeds.to_matrix();
        let wx = graph.adjacency().spmm_dense_with(&x, self.threads)?;
        self.estimate_from_wx(x, wx, seeds.k())
    }

    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        self.validate(ctx.graph(), ctx.seeds())?;
        let x = ctx.seeds().to_matrix();
        // The copy out of the shared Arc happens here, outside the cache lock, only
        // because the energy takes ownership of its statistics.
        let wx = (*ctx.wx()?).clone();
        self.estimate_from_wx(x, wx, ctx.seeds().k())
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        Box::new(LinearCompatibilityEstimation {
            threads,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lce_recovers_heterophily_with_plenty_of_labels() {
        let cfg = GeneratorConfig::balanced_uniform(1200, 20.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.5, &mut rng);
        let est = LinearCompatibilityEstimation::default();
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        // LCE should at least identify which entries are large vs small.
        let planted = syn.planted_h.as_dense();
        for c in 0..3 {
            for e in 0..3 {
                for e2 in 0..3 {
                    if planted.get(c, e) > planted.get(c, e2) + 0.3 {
                        assert!(
                            h.get(c, e) > h.get(c, e2),
                            "ordering of H[{c}][{e}] vs H[{c}][{e2}] lost"
                        );
                    }
                }
            }
        }
        assert_eq!(est.name(), "LCE");
    }

    #[test]
    fn lce_output_is_symmetric_doubly_stochastic() {
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.3, &mut rng);
        let h = LinearCompatibilityEstimation::default()
            .estimate(&syn.graph, &seeds)
            .unwrap();
        assert!(h.is_symmetric(1e-9));
        for s in h.row_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lce_requires_labels_and_matching_sizes() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let empty = SeedLabels::new(vec![None; 4], 2).unwrap();
        assert!(LinearCompatibilityEstimation::default()
            .estimate(&graph, &empty)
            .is_err());
        let wrong = SeedLabels::new(vec![Some(0)], 2).unwrap();
        assert!(LinearCompatibilityEstimation::default()
            .estimate(&graph, &wrong)
            .is_err());
    }
}
