//! Distant Compatibility Estimation (DCE, Sections 4.4–4.7).
//!
//! DCE is the paper's main contribution: instead of relying on directly-connected pairs
//! of labeled nodes (which are vanishingly rare at small label fractions `f`), it
//! compares *powers* of the candidate compatibility matrix against observed statistics
//! of longer non-backtracking paths between labeled nodes:
//!
//! ```text
//! E(H) = Σ_{ℓ=1..ℓmax} w_ℓ ||Hℓ − P̂(ℓ)_NB||²,    w_ℓ = λ^(ℓ-1)
//! ```
//!
//! The statistics are computed once with the factorized summation (`O(m·k·ℓmax)`), and
//! the optimization runs entirely on those `k x k` sketches with the explicit gradient
//! of Proposition 4.7 — independent of the graph size.

use super::CompatibilityEstimator;
use crate::context::EstimationContext;
use crate::energy::DceEnergy;
use crate::error::{CoreError, Result};
use crate::normalization::NormalizationVariant;
use crate::optimize::{minimize, GradientDescentConfig};
use crate::param::{free_to_matrix, uniform_start};
use crate::paths::{summarize_with, CountingBackend, GraphSummary, SummaryConfig};
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// Configuration shared by DCE and DCEr.
#[derive(Debug, Clone)]
pub struct DceConfig {
    /// Maximum path length `ℓmax` (the paper finds 5 optimal).
    pub max_length: usize,
    /// Distance scaling factor `λ` (the paper's single hyperparameter; 10 is robust).
    pub lambda: f64,
    /// Use non-backtracking path statistics (the consistent estimator); plain powers
    /// are available for the ablation in Fig. 5a.
    pub non_backtracking: bool,
    /// Normalization variant for the observed statistics.
    pub variant: NormalizationVariant,
    /// Counting engine for the path statistics (exact, or the low-rank spectral
    /// backend whose per-length cost is edge-count-independent).
    pub backend: CountingBackend,
    /// Optimizer settings.
    pub optimizer: GradientDescentConfig,
    /// Thread policy for the summarization kernels (bit-identical at any count).
    pub threads: Threads,
}

impl Default for DceConfig {
    fn default() -> Self {
        DceConfig {
            max_length: 5,
            lambda: 10.0,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            backend: CountingBackend::Exact,
            optimizer: GradientDescentConfig::default(),
            threads: Threads::Serial,
        }
    }
}

impl DceConfig {
    /// Convenience constructor for a given `ℓmax` and `λ`.
    pub fn new(max_length: usize, lambda: f64) -> Self {
        DceConfig {
            max_length,
            lambda,
            ..DceConfig::default()
        }
    }

    /// The summarization configuration implied by this estimation configuration.
    pub fn summary_config(&self) -> SummaryConfig {
        SummaryConfig {
            max_length: self.max_length,
            non_backtracking: self.non_backtracking,
            variant: self.variant,
            backend: self.backend,
        }
    }

    /// The key-parameter fragment rendered into DCE/DCEr display names (e.g.
    /// `l=5,lambda=10`); non-default counting mode, normalization variant, and
    /// counting backend are appended so the registry can reconstruct the
    /// estimator from its name — and so persisted `.fgh` estimates of different
    /// backends/ranks never share a key.
    pub(crate) fn name_params(&self) -> String {
        let mut params = format!("l={},lambda={}", self.max_length, self.lambda);
        if !self.non_backtracking {
            params.push_str(",nb=false");
        }
        if self.variant != NormalizationVariant::RowStochastic {
            params.push_str(&format!(",variant={}", self.variant.index()));
        }
        if let CountingBackend::LowRank(fc) = self.backend {
            params.push_str(&format!(",mode=lowrank,rank={}", fc.rank));
        }
        params
    }
}

/// The DCE estimator (single optimization run started from the uniform point).
#[derive(Debug, Clone, Default)]
pub struct DistantCompatibilityEstimation {
    /// Shared DCE configuration.
    pub config: DceConfig,
}

impl DistantCompatibilityEstimation {
    /// Create a DCE estimator with the given configuration.
    pub fn new(config: DceConfig) -> Self {
        DistantCompatibilityEstimation { config }
    }

    /// Build the energy function from a precomputed graph summary.
    pub fn energy_from_summary(&self, summary: &GraphSummary) -> Result<DceEnergy> {
        if summary.max_length() < self.config.max_length {
            return Err(CoreError::InvalidInput(format!(
                "summary holds {} path lengths but the configuration requires {}",
                summary.max_length(),
                self.config.max_length
            )));
        }
        let statistics: Vec<DenseMatrix> = (1..=self.config.max_length)
            .map(|l| summary.statistic(l).expect("length within summary").clone())
            .collect();
        DceEnergy::with_lambda(statistics, self.config.lambda)
    }

    /// Run the optimization from a single starting point on a precomputed summary.
    /// Returns the estimated matrix together with its final energy value.
    pub fn estimate_from_summary_with_start(
        &self,
        summary: &GraphSummary,
        start: &[f64],
    ) -> Result<(DenseMatrix, f64)> {
        let energy = self.energy_from_summary(summary)?;
        let outcome = minimize(&energy, start, &self.config.optimizer)?;
        Ok((free_to_matrix(&outcome.x, summary.k)?, outcome.value))
    }

    /// Run the optimization on a precomputed summary from the uniform starting point.
    pub fn estimate_from_summary(&self, summary: &GraphSummary) -> Result<DenseMatrix> {
        let (h, _) = self.estimate_from_summary_with_start(summary, &uniform_start(summary.k))?;
        Ok(h)
    }

    /// Evaluate the DCE energy of an arbitrary matrix on a precomputed summary
    /// (used by the hyperparameter-sweep experiments).
    pub fn energy_of(&self, summary: &GraphSummary, h: &DenseMatrix) -> Result<f64> {
        self.energy_from_summary(summary)?.value_of_matrix(h)
    }
}

impl CompatibilityEstimator for DistantCompatibilityEstimation {
    fn name(&self) -> String {
        format!("DCE({})", self.config.name_params())
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        super::require_labeled(seeds, "DCE")?;
        let summary = summarize_with(
            graph,
            seeds,
            &self.config.summary_config(),
            self.config.threads,
        )?;
        self.estimate_from_summary(&summary)
    }

    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        super::require_labeled(ctx.seeds(), "DCE")?;
        let summary = ctx.summary(&self.config.summary_config())?;
        self.estimate_from_summary(&summary)
    }

    fn summary_requirements(&self) -> Option<SummaryConfig> {
        Some(self.config.summary_config())
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        Box::new(DistantCompatibilityEstimation::new(DceConfig {
            threads,
            ..self.config.clone()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::summarize;
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dce_recovers_h_from_sparse_labels() {
        // 5% labels on a 3000-node graph: few directly-connected labeled pairs exist,
        // but the longer-path statistics let DCE recover the heterophilous structure.
        // (At even sparser labelings single-start DCE can get trapped in local minima —
        // that regime is covered by the DCEr tests.)
        let cfg = GeneratorConfig::balanced(3000, 15.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
        let est = DistantCompatibilityEstimation::default();
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        let err = syn.planted_h.l2_distance(&h).unwrap();
        let uniform_err = syn
            .planted_h
            .l2_distance(&DenseMatrix::filled(3, 3, 1.0 / 3.0))
            .unwrap();
        // Single-start DCE can land in a local minimum (that is what DCEr's restarts
        // fix); it must still clearly improve on the uninformative uniform matrix.
        assert!(
            err < 0.7 * uniform_err,
            "DCE error {err} vs uniform {uniform_err}"
        );
        assert_eq!(est.name(), "DCE(l=5,lambda=10)");
    }

    #[test]
    fn name_reflects_non_default_parameters() {
        let est = DistantCompatibilityEstimation::new(DceConfig {
            non_backtracking: false,
            variant: NormalizationVariant::MeanScaled,
            ..DceConfig::new(3, 0.5)
        });
        assert_eq!(est.name(), "DCE(l=3,lambda=0.5,nb=false,variant=3)");
    }

    #[test]
    fn dce_energy_at_planted_h_is_low_on_full_labels() {
        let cfg = GeneratorConfig::balanced_uniform(2000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = SeedLabels::fully_labeled(&syn.labeling);
        let est = DistantCompatibilityEstimation::default();
        let summary = summarize(&syn.graph, &seeds, &est.config.summary_config()).unwrap();
        let planted_energy = est.energy_of(&summary, syn.planted_h.as_dense()).unwrap();
        let uniform_energy = est
            .energy_of(&summary, &DenseMatrix::filled(3, 3, 1.0 / 3.0))
            .unwrap();
        assert!(planted_energy < uniform_energy);
        assert!(planted_energy < 0.01, "planted energy {planted_energy}");
    }

    #[test]
    fn dce_with_max_length_one_behaves_like_mce() {
        let cfg = GeneratorConfig::balanced_uniform(1000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.5, &mut rng);
        let dce1 = DistantCompatibilityEstimation::new(DceConfig::new(1, 10.0));
        let mce = crate::estimators::mce::MyopicCompatibilityEstimation::default();
        let h_dce = dce1.estimate(&syn.graph, &seeds).unwrap();
        let h_mce = mce.estimate(&syn.graph, &seeds).unwrap();
        assert!(h_dce.approx_eq(&h_mce, 1e-3));
    }

    #[test]
    fn summary_reuse_and_length_validation() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let est = DistantCompatibilityEstimation::new(DceConfig::new(5, 10.0));
        let short_summary =
            summarize(&syn.graph, &seeds, &SummaryConfig::with_max_length(2)).unwrap();
        assert!(est.estimate_from_summary(&short_summary).is_err());
        let full_summary = summarize(&syn.graph, &seeds, &est.config.summary_config()).unwrap();
        let h = est.estimate_from_summary(&full_summary).unwrap();
        assert_eq!(h.rows(), 3);
    }

    #[test]
    fn dce_requires_labels() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let seeds = SeedLabels::new(vec![None; 4], 2).unwrap();
        assert!(DistantCompatibilityEstimation::default()
            .estimate(&graph, &seeds)
            .is_err());
    }

    #[test]
    fn estimated_matrix_is_symmetric_doubly_stochastic() {
        let cfg = GeneratorConfig::balanced(500, 10.0, 4, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let h = DistantCompatibilityEstimation::default()
            .estimate(&syn.graph, &seeds)
            .unwrap();
        assert!(h.is_symmetric(1e-9));
        for s in h.row_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
