//! Gold-standard compatibilities (GS).
//!
//! The upper bound every estimator is compared against: if all labels are known, the
//! compatibility matrix can simply be *measured* as the relative frequencies of classes
//! between neighboring nodes (Section 5.3). The estimator ignores the seed set and uses
//! the full ground-truth labeling it was constructed with.

use super::CompatibilityEstimator;
use crate::error::Result;
use fg_graph::{measure_compatibilities, Graph, Labeling, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// The gold-standard "estimator": measures `H` from the full labeling.
#[derive(Debug, Clone)]
pub struct GoldStandard {
    labeling: Labeling,
}

impl GoldStandard {
    /// Create a gold-standard estimator from the ground-truth labeling.
    pub fn new(labeling: Labeling) -> Self {
        GoldStandard { labeling }
    }

    /// The ground-truth labeling the measurement uses.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }
}

impl CompatibilityEstimator for GoldStandard {
    fn name(&self) -> String {
        "GS".to_string()
    }

    fn estimate(&self, graph: &Graph, _seeds: &SeedLabels) -> Result<DenseMatrix> {
        Ok(measure_compatibilities(graph, &self.labeling)?)
    }

    fn content_addressable(&self) -> bool {
        // The measurement reads the full ground-truth labeling, which is not part
        // of the `(graph, seeds, name)` store key — never persist or serve it.
        false
    }

    fn with_threads(&self, _threads: Threads) -> Box<dyn CompatibilityEstimator> {
        // The measurement is a single pass over the edge list; no parallel stage.
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gold_standard_matches_planted_h_on_balanced_graph() {
        let cfg = GeneratorConfig::balanced_uniform(2000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&cfg, &mut rng).unwrap();
        let gs = GoldStandard::new(syn.labeling.clone());
        let seeds = SeedLabels::new(vec![None; 2000], 3).unwrap();
        let h = gs.estimate(&syn.graph, &seeds).unwrap();
        assert!(syn.planted_h.l2_distance(&h).unwrap() < 0.1);
        assert_eq!(gs.name(), "GS");
        assert_eq!(gs.labeling().n(), 2000);
    }

    #[test]
    fn gold_standard_is_independent_of_seed_set() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let syn = generate(&cfg, &mut rng).unwrap();
        let gs = GoldStandard::new(syn.labeling.clone());
        let empty = SeedLabels::new(vec![None; 300], 3).unwrap();
        let full = SeedLabels::fully_labeled(&syn.labeling);
        let a = gs.estimate(&syn.graph, &empty).unwrap();
        let b = gs.estimate(&syn.graph, &full).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }
}
