//! The Holdout baseline (Section 4.1).
//!
//! The textbook approach: split the observed labels into seed and holdout sets, run
//! label propagation from the seeds for a candidate `H`, and search for the `H` that
//! maximizes accuracy on the holdout nodes (Eq. 7). Because every objective evaluation
//! runs inference over the whole graph, estimation becomes *more* expensive than
//! propagation — the exact inefficiency the paper's sketch-based estimators remove.

use super::CompatibilityEstimator;
use crate::error::{CoreError, Result};
use crate::optimize::{nelder_mead_batch, NelderMeadConfig};
use crate::param::{free_to_matrix, uniform_start};
use fg_graph::{Graph, SeedLabels};
use fg_propagation::{holdout_accuracy, propagate, LinBpConfig};
use fg_sparse::parallel::run_ordered_cells;
use fg_sparse::{DenseMatrix, Threads};

/// Configuration for the Holdout estimator.
#[derive(Debug, Clone)]
pub struct HoldoutConfig {
    /// Number of seed/holdout splits `b` whose accuracies are summed (Eq. 7).
    pub num_splits: usize,
    /// Propagation settings used inside every objective evaluation.
    pub propagation: LinBpConfig,
    /// Derivative-free optimizer settings.
    pub optimizer: NelderMeadConfig,
    /// Thread policy for evaluating independent simplex candidates in parallel
    /// (each candidate is a full propagation per split, so this is the coarse-grained
    /// win; bit-identical to serial at any count).
    pub threads: Threads,
}

impl Default for HoldoutConfig {
    fn default() -> Self {
        HoldoutConfig {
            num_splits: 1,
            propagation: LinBpConfig::default(),
            optimizer: NelderMeadConfig {
                // Each evaluation is a full propagation; keep the budget moderate.
                max_evaluations: 200,
                ..NelderMeadConfig::default()
            },
            threads: Threads::Serial,
        }
    }
}

/// The Holdout estimator.
#[derive(Debug, Clone, Default)]
pub struct HoldoutEstimation {
    /// Estimator configuration.
    pub config: HoldoutConfig,
}

impl HoldoutEstimation {
    /// Create a Holdout estimator with `b` splits.
    pub fn with_splits(num_splits: usize) -> Self {
        HoldoutEstimation {
            config: HoldoutConfig {
                num_splits,
                ..HoldoutConfig::default()
            },
        }
    }

    /// The negative compound accuracy for a candidate free-parameter vector.
    fn objective(
        &self,
        graph: &Graph,
        partitions: &[(SeedLabels, SeedLabels)],
        free: &[f64],
        k: usize,
    ) -> f64 {
        let h = match free_to_matrix(free, k) {
            Ok(h) => h,
            Err(_) => return f64::INFINITY,
        };
        let mut total = 0.0;
        for (seed, holdout) in partitions {
            match propagate(graph, seed, &h, &self.config.propagation) {
                Ok(result) => total += holdout_accuracy(&result.predictions, holdout),
                Err(_) => return f64::INFINITY,
            }
        }
        -total
    }
}

impl CompatibilityEstimator for HoldoutEstimation {
    fn name(&self) -> String {
        format!("Holdout(b={})", self.config.num_splits)
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        if self.config.num_splits == 0 {
            return Err(CoreError::InvalidConfig(
                "num_splits must be at least 1".into(),
            ));
        }
        if seeds.num_labeled() < 2 {
            return Err(CoreError::InvalidInput(
                "the Holdout method needs at least two labeled nodes to form a split".into(),
            ));
        }
        let k = seeds.k();
        let partitions = seeds.holdout_partitions(self.config.num_splits);
        // Nelder–Mead hands independently evaluable candidate groups (the initial
        // simplex, every shrink step) to the batch evaluator; fan them out across the
        // ordered cell runner. Results come back in point order, so the run is
        // bit-identical to serial at any thread count (same pattern as DCEr's `r`
        // restarts).
        let outcome = nelder_mead_batch(
            |points: &[Vec<f64>]| {
                run_ordered_cells(points.len(), self.config.threads, |i| {
                    Ok::<f64, std::convert::Infallible>(self.objective(
                        graph,
                        &partitions,
                        &points[i],
                        k,
                    ))
                })
                .expect("holdout objective is infallible")
            },
            &uniform_start(k),
            &self.config.optimizer,
        )?;
        free_to_matrix(&outcome.x, k)
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        // Coarse-grained first: independent simplex candidates evaluate in parallel.
        // The policy is also routed into the inner LinBP config so each propagation
        // uses the parallel kernels (both layers are bit-identical to serial).
        Box::new(HoldoutEstimation {
            config: HoldoutConfig {
                threads,
                propagation: LinBpConfig {
                    threads,
                    ..self.config.propagation.clone()
                },
                ..self.config.clone()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn holdout_finds_heterophily_with_enough_labels() {
        let cfg = GeneratorConfig::balanced_uniform(600, 16.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let est = HoldoutEstimation::default();
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        // The estimate should capture that off-diagonal (0,1) dominates the diagonal.
        assert!(h.get(0, 1) > h.get(0, 0), "H = {h:?}");
        assert_eq!(est.name(), "Holdout(b=1)");
        assert_eq!(HoldoutEstimation::with_splits(3).name(), "Holdout(b=3)");
    }

    #[test]
    fn holdout_with_multiple_splits_runs() {
        let cfg = GeneratorConfig::balanced(300, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.3, &mut rng);
        let est = HoldoutEstimation::with_splits(2);
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        assert!(h.is_symmetric(1e-9));
        for s in h.row_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn holdout_is_bit_identical_across_thread_counts() {
        let cfg = GeneratorConfig::balanced(300, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.25, &mut rng);
        let serial = HoldoutEstimation::with_splits(2)
            .estimate(&syn.graph, &seeds)
            .unwrap();
        for threads in [
            Threads::Serial,
            Threads::Fixed(2),
            Threads::Fixed(4),
            Threads::Auto,
        ] {
            let parallel = HoldoutEstimation::with_splits(2)
                .with_threads(threads)
                .estimate(&syn.graph, &seeds)
                .unwrap();
            assert_eq!(serial.data(), parallel.data(), "{threads:?}");
        }
    }

    #[test]
    fn holdout_requires_enough_labels_and_valid_config() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let one_label = SeedLabels::new(vec![Some(0), None, None, None], 2).unwrap();
        assert!(HoldoutEstimation::default()
            .estimate(&graph, &one_label)
            .is_err());
        let seeds = SeedLabels::new(vec![Some(0), Some(1), None, None], 2).unwrap();
        let bad = HoldoutEstimation {
            config: HoldoutConfig {
                num_splits: 0,
                ..HoldoutConfig::default()
            },
        };
        assert!(bad.estimate(&graph, &seeds).is_err());
    }
}
