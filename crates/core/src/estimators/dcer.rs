//! DCE with restarts (DCEr, Section 4.8) — the paper's recommended method.
//!
//! For small label fractions the DCE energy is non-convex and gradient descent from the
//! uniform point can get trapped in local minima. DCEr exploits the two-step design:
//! the expensive graph summarization runs **once**, and the cheap `k x k` optimization
//! is restarted from multiple points in the free-parameter space (the hyper-quadrants
//! around the uniform point). The restart with the lowest final energy wins. With
//! `r = 10` restarts the paper reaches gold-standard labeling accuracy.

use super::dce::{DceConfig, DistantCompatibilityEstimation};
use super::CompatibilityEstimator;
use crate::context::EstimationContext;
use crate::error::{CoreError, Result};
use crate::param::restart_points;
use crate::paths::{summarize_with, GraphSummary, SummaryConfig};
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of restarts (`r = 10` in the paper's experiments).
pub const DEFAULT_RESTARTS: usize = 10;

/// The DCEr estimator.
#[derive(Debug, Clone)]
pub struct DceWithRestarts {
    /// Shared DCE configuration (path lengths, λ, optimizer).
    pub config: DceConfig,
    /// Number of optimization restarts (including the uniform starting point).
    pub restarts: usize,
    /// Seed for the deterministic choice of restart quadrants when `2^{k*}` exceeds the
    /// restart budget.
    pub seed: u64,
}

impl Default for DceWithRestarts {
    fn default() -> Self {
        DceWithRestarts {
            config: DceConfig::default(),
            restarts: DEFAULT_RESTARTS,
            seed: 0,
        }
    }
}

impl DceWithRestarts {
    /// Create a DCEr estimator with the given configuration and restart budget.
    pub fn new(config: DceConfig, restarts: usize) -> Self {
        DceWithRestarts {
            config,
            restarts,
            seed: 0,
        }
    }

    /// Run DCEr on a precomputed graph summary, returning the best estimate and its
    /// energy.
    ///
    /// The `r` restarts are independent `k x k` optimizations, so they fan out
    /// through [`fg_sparse::run_ordered_cells`] under the configured thread policy.
    /// The restart points are drawn once up front and the winner is reduced
    /// serially in restart order with a strict `<` (first of equal energies wins),
    /// so the result is bit-identical to the serial loop at any thread count.
    pub fn estimate_from_summary(&self, summary: &GraphSummary) -> Result<(DenseMatrix, f64)> {
        if self.restarts == 0 {
            return Err(CoreError::InvalidConfig(
                "restarts must be at least 1".into(),
            ));
        }
        let dce = DistantCompatibilityEstimation::new(self.config.clone());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let starts = restart_points(summary.k, self.restarts, &mut rng);
        let results: Vec<(DenseMatrix, f64)> =
            fg_sparse::run_ordered_cells(starts.len(), self.config.threads, |i| {
                dce.estimate_from_summary_with_start(summary, &starts[i])
            })?;
        let mut best: Option<(DenseMatrix, f64)> = None;
        for (candidate, energy) in results {
            let replace = match &best {
                None => true,
                Some((_, best_energy)) => energy < *best_energy,
            };
            if replace {
                best = Some((candidate, energy));
            }
        }
        best.ok_or_else(|| CoreError::OptimizationFailed("no restart produced an estimate".into()))
    }
}

impl CompatibilityEstimator for DceWithRestarts {
    fn name(&self) -> String {
        format!("DCEr(r={},{})", self.restarts, self.config.name_params())
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        super::require_labeled(seeds, "DCEr")?;
        let summary = summarize_with(
            graph,
            seeds,
            &self.config.summary_config(),
            self.config.threads,
        )?;
        Ok(self.estimate_from_summary(&summary)?.0)
    }

    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        super::require_labeled(ctx.seeds(), "DCEr")?;
        let summary = ctx.summary(&self.config.summary_config())?;
        Ok(self.estimate_from_summary(&summary)?.0)
    }

    fn summary_requirements(&self) -> Option<SummaryConfig> {
        Some(self.config.summary_config())
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        Box::new(DceWithRestarts {
            config: DceConfig {
                threads,
                ..self.config.clone()
            },
            restarts: self.restarts,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::summarize;
    use fg_graph::{generate, GeneratorConfig};

    #[test]
    fn dcer_never_does_worse_than_single_start_dce() {
        let cfg = GeneratorConfig::balanced(2000, 15.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.005, &mut rng);

        let dce = DistantCompatibilityEstimation::default();
        let dcer = DceWithRestarts::default();
        let summary = summarize(&syn.graph, &seeds, &dce.config.summary_config()).unwrap();

        let (h_dce, energy_dce) = dce
            .estimate_from_summary_with_start(&summary, &crate::param::uniform_start(3))
            .unwrap();
        let (h_dcer, energy_dcer) = dcer.estimate_from_summary(&summary).unwrap();
        assert!(energy_dcer <= energy_dce + 1e-12);
        // Both are valid doubly-stochastic matrices.
        for h in [&h_dce, &h_dcer] {
            assert!(h.is_symmetric(1e-9));
            for s in h.row_sums() {
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dcer_recovers_h_from_very_sparse_labels() {
        let cfg = GeneratorConfig::balanced(4000, 20.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.005, &mut rng);
        let est = DceWithRestarts::default();
        let h = est.estimate(&syn.graph, &seeds).unwrap();
        let err = syn.planted_h.l2_distance(&h).unwrap();
        let uniform_err = syn
            .planted_h
            .l2_distance(&DenseMatrix::filled(3, 3, 1.0 / 3.0))
            .unwrap();
        assert!(
            err < 0.5 * uniform_err,
            "DCEr error {err} vs uniform baseline {uniform_err}"
        );
        assert_eq!(est.name(), "DCEr(r=10,l=5,lambda=10)");
    }

    #[test]
    fn zero_restarts_rejected() {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.2, &mut rng);
        let summary =
            summarize(&syn.graph, &seeds, &DceConfig::default().summary_config()).unwrap();
        let est = DceWithRestarts {
            restarts: 0,
            ..DceWithRestarts::default()
        };
        assert!(est.estimate_from_summary(&summary).is_err());
    }

    #[test]
    fn dcer_requires_labels() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let seeds = SeedLabels::new(vec![None; 4], 2).unwrap();
        assert!(DceWithRestarts::default().estimate(&graph, &seeds).is_err());
    }

    #[test]
    fn parallel_restarts_are_bit_identical_to_serial() {
        let cfg = GeneratorConfig::balanced(800, 12.0, 3, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.02, &mut rng);
        let summary =
            summarize(&syn.graph, &seeds, &DceConfig::default().summary_config()).unwrap();
        let serial = DceWithRestarts::default();
        let (h_serial, e_serial) = serial.estimate_from_summary(&summary).unwrap();
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            let parallel = DceWithRestarts {
                config: DceConfig {
                    threads,
                    ..DceConfig::default()
                },
                ..DceWithRestarts::default()
            };
            let (h, e) = parallel.estimate_from_summary(&summary).unwrap();
            assert_eq!(e.to_bits(), e_serial.to_bits(), "{threads:?}");
            let bits = |m: &DenseMatrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&h), bits(&h_serial), "{threads:?}");
        }
    }

    #[test]
    fn dcer_is_deterministic_for_fixed_seed() {
        let cfg = GeneratorConfig::balanced(500, 10.0, 3, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
        let est = DceWithRestarts::default();
        let a = est.estimate(&syn.graph, &seeds).unwrap();
        let b = est.estimate(&syn.graph, &seeds).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }
}
