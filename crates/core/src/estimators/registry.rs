//! By-name lookup of compatibility estimators, for CLIs, benchmarks, and config
//! files — the estimation-side mirror of `fg_propagation::registry`.
//!
//! Estimators are addressed by a canonical lowercase name (`"dcer"`) or by a
//! parameterized spec string in exactly the format [`CompatibilityEstimator::name`]
//! renders, e.g. `"DCEr(r=10,l=5,lambda=0.1)"` — so every name an estimator prints
//! can be parsed back into an equivalent estimator (the round-trip property the
//! registry tests assert). Generic defaults are supplied through
//! [`EstimatorOptions`]; keys in the spec string override them.

use super::{
    CompatibilityEstimator, DceConfig, DceWithRestarts, DistantCompatibilityEstimation,
    HoldoutEstimation, LinearCompatibilityEstimation, MyopicCompatibilityEstimation,
};
use crate::normalization::NormalizationVariant;
use crate::paths::{CountingBackend, DEFAULT_LOWRANK_RANK};
use fg_graph::FactorConfig;
use fg_sparse::Threads;

/// Estimator-agnostic configuration overrides understood by every registered
/// estimator. `None` fields keep the estimator's default; keys an estimator has no
/// use for are ignored (mirroring how `PropagatorOptions.damping` is ignored by
/// backends without such a knob).
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimatorOptions {
    /// Maximum path length `ℓmax` (key `l` / `lmax`; DCE and DCEr).
    pub max_length: Option<usize>,
    /// Distance scaling factor `λ` (key `lambda`; DCE and DCEr).
    pub lambda: Option<f64>,
    /// Number of optimization restarts (key `r` / `restarts`; DCEr).
    pub restarts: Option<usize>,
    /// Number of seed/holdout splits (key `b` / `splits`; Holdout).
    pub splits: Option<usize>,
    /// Normalization variant, by paper number 1–3 (key `variant`; MCE, DCE, DCEr).
    pub variant: Option<NormalizationVariant>,
    /// Counting mode: non-backtracking paths when `true` (key `nb`; DCE, DCEr).
    pub non_backtracking: Option<bool>,
    /// Counting backend (key `mode`, values `exact` / `lowrank`; DCE, DCEr). When
    /// unset, a set [`rank`](Self::rank) implies the low-rank backend.
    pub lowrank: Option<bool>,
    /// Factor rank for the low-rank counting backend (key `rank`; DCE, DCEr).
    /// Setting a rank without an explicit `mode` selects the low-rank backend;
    /// `mode=lowrank` without a rank uses [`DEFAULT_LOWRANK_RANK`].
    pub rank: Option<usize>,
    /// Thread policy for the estimator's parallel kernels. All estimators honor it;
    /// results are bit-identical at any thread count.
    pub threads: Option<Threads>,
}

impl EstimatorOptions {
    /// The counting backend these options select: the low-rank backend when
    /// `mode=lowrank` was given (or a `rank` without an explicit `mode=exact`),
    /// the exact backend otherwise. An explicit `mode=exact` wins over a set
    /// rank, mirroring how other inapplicable keys are ignored.
    pub fn backend(&self) -> CountingBackend {
        match (self.lowrank, self.rank) {
            (Some(false), _) | (None, None) => CountingBackend::Exact,
            (_, rank) => CountingBackend::LowRank(FactorConfig::with_rank(
                rank.unwrap_or(DEFAULT_LOWRANK_RANK),
            )),
        }
    }
}

/// A registry entry: canonical name, accepted aliases, a one-line description, and a
/// constructor honoring [`EstimatorOptions`].
pub struct EstimatorSpec {
    /// Canonical lowercase name (what [`canonical_estimator_name`] returns).
    pub name: &'static str,
    /// Alternative names accepted by [`estimator_by_name`].
    pub aliases: &'static [&'static str],
    /// One-line human-readable description for help output.
    pub description: &'static str,
    /// Build the estimator with the given option overrides.
    pub build: fn(&EstimatorOptions) -> Box<dyn CompatibilityEstimator>,
}

fn dce_config(opts: &EstimatorOptions) -> DceConfig {
    let mut config = DceConfig::default();
    if let Some(l) = opts.max_length {
        config.max_length = l;
    }
    if let Some(lambda) = opts.lambda {
        config.lambda = lambda;
    }
    if let Some(variant) = opts.variant {
        config.variant = variant;
    }
    if let Some(nb) = opts.non_backtracking {
        config.non_backtracking = nb;
    }
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    config.backend = opts.backend();
    config
}

fn build_mce(opts: &EstimatorOptions) -> Box<dyn CompatibilityEstimator> {
    let mut est = MyopicCompatibilityEstimation::default();
    if let Some(variant) = opts.variant {
        est.variant = variant;
    }
    if let Some(threads) = opts.threads {
        est.threads = threads;
    }
    Box::new(est)
}

fn build_lce(opts: &EstimatorOptions) -> Box<dyn CompatibilityEstimator> {
    let mut est = LinearCompatibilityEstimation::default();
    if let Some(threads) = opts.threads {
        est.threads = threads;
    }
    Box::new(est)
}

fn build_dce(opts: &EstimatorOptions) -> Box<dyn CompatibilityEstimator> {
    Box::new(DistantCompatibilityEstimation::new(dce_config(opts)))
}

fn build_dcer(opts: &EstimatorOptions) -> Box<dyn CompatibilityEstimator> {
    let mut est = DceWithRestarts::new(dce_config(opts), DceWithRestarts::default().restarts);
    if let Some(r) = opts.restarts {
        est.restarts = r;
    }
    Box::new(est)
}

fn build_holdout(opts: &EstimatorOptions) -> Box<dyn CompatibilityEstimator> {
    let est = HoldoutEstimation::with_splits(opts.splits.unwrap_or(1));
    match opts.threads {
        Some(threads) => est.with_threads(threads),
        None => Box::new(est),
    }
}

const REGISTRY: &[EstimatorSpec] = &[
    EstimatorSpec {
        name: "mce",
        aliases: &["myopic"],
        description: "Myopic Compatibility Estimation from neighbor statistics (Eq. 12)",
        build: build_mce,
    },
    EstimatorSpec {
        name: "lce",
        aliases: &["linear"],
        description: "Linear Compatibility Estimation from the LinBP energy (Eq. 8)",
        build: build_lce,
    },
    EstimatorSpec {
        name: "dce",
        aliases: &["distant"],
        description: "Distant Compatibility Estimation from length-l path statistics (Eq. 13/14)",
        build: build_dce,
    },
    EstimatorSpec {
        name: "dcer",
        aliases: &["dce-r", "dce_r"],
        description: "DCE with restarts — the paper's recommended method (Section 4.8)",
        build: build_dcer,
    },
    EstimatorSpec {
        name: "holdout",
        aliases: &["hold-out"],
        description: "Holdout baseline: black-box propagation inside a search (Eq. 7)",
        build: build_holdout,
    },
];

/// All registered estimator specs, in registration order.
pub fn estimator_registry() -> &'static [EstimatorSpec] {
    REGISTRY
}

/// The canonical names of all registered estimators (the values `fg --method`
/// accepts, with or without a parameter list).
pub fn estimator_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Resolve a (case-insensitive) base name or alias — without any parameter list — to
/// its canonical estimator name.
pub fn canonical_estimator_name(name: &str) -> Option<&'static str> {
    let lowered = name.trim().to_ascii_lowercase();
    REGISTRY
        .iter()
        .find(|s| s.name == lowered || s.aliases.contains(&lowered.as_str()))
        .map(|s| s.name)
}

/// Split a spec string into its base name and the overrides encoded in its
/// parenthesized key/value list.
fn parse_spec(spec: &str) -> Result<(String, EstimatorOptions), String> {
    let spec = spec.trim();
    let (base, args) = match spec.split_once('(') {
        None => (spec, None),
        Some((base, rest)) => {
            let inner = rest.strip_suffix(')').ok_or_else(|| {
                format!("estimator spec '{spec}' has an unterminated parameter list")
            })?;
            (base, Some(inner))
        }
    };
    let mut opts = EstimatorOptions::default();
    if let Some(args) = args {
        for pair in args.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                format!("estimator parameter '{pair}' is not of the form key=value")
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let bad =
                |what: &str| format!("estimator parameter '{key}' has invalid {what} '{value}'");
            match key.as_str() {
                "r" | "restarts" => opts.restarts = Some(value.parse().map_err(|_| bad("count"))?),
                "l" | "lmax" => opts.max_length = Some(value.parse().map_err(|_| bad("length"))?),
                "lambda" => opts.lambda = Some(value.parse().map_err(|_| bad("number"))?),
                "b" | "splits" => opts.splits = Some(value.parse().map_err(|_| bad("count"))?),
                "variant" => {
                    let index: usize = value.parse().map_err(|_| bad("variant number"))?;
                    opts.variant = Some(
                        NormalizationVariant::from_index(index)
                            .ok_or_else(|| bad("variant number (expected 1-3)"))?,
                    );
                }
                "nb" => {
                    opts.non_backtracking = Some(match value.to_ascii_lowercase().as_str() {
                        "true" | "1" => true,
                        "false" | "0" => false,
                        _ => return Err(bad("flag (expected true or false)")),
                    });
                }
                "mode" => {
                    opts.lowrank = Some(match value.to_ascii_lowercase().as_str() {
                        "lowrank" => true,
                        "exact" => false,
                        _ => return Err(bad("backend (expected exact or lowrank)")),
                    });
                }
                "rank" => opts.rank = Some(value.parse().map_err(|_| bad("rank"))?),
                other => {
                    return Err(format!(
                        "unknown estimator parameter '{other}' \
                         (expected r, l, lambda, b, variant, nb, mode, or rank)"
                    ))
                }
            }
        }
    }
    Ok((base.to_string(), opts))
}

/// Merge spec-string overrides (`overlay`) on top of caller defaults (`base`).
fn merge(base: &EstimatorOptions, overlay: &EstimatorOptions) -> EstimatorOptions {
    EstimatorOptions {
        max_length: overlay.max_length.or(base.max_length),
        lambda: overlay.lambda.or(base.lambda),
        restarts: overlay.restarts.or(base.restarts),
        splits: overlay.splits.or(base.splits),
        variant: overlay.variant.or(base.variant),
        non_backtracking: overlay.non_backtracking.or(base.non_backtracking),
        lowrank: overlay.lowrank.or(base.lowrank),
        rank: overlay.rank.or(base.rank),
        threads: overlay.threads.or(base.threads),
    }
}

/// Build an estimator from a name or parameterized spec string (e.g. `"mce"`,
/// `"DCEr(r=10,l=5,lambda=0.1)"`) with default options.
pub fn estimator_by_name(spec: &str) -> Result<Box<dyn CompatibilityEstimator>, String> {
    estimator_by_name_with(spec, &EstimatorOptions::default())
}

/// Build an estimator from a name or parameterized spec string, applying the given
/// option defaults; keys in the spec string take precedence.
pub fn estimator_by_name_with(
    spec: &str,
    defaults: &EstimatorOptions,
) -> Result<Box<dyn CompatibilityEstimator>, String> {
    let (base, overrides) = parse_spec(spec)?;
    let canonical = canonical_estimator_name(&base).ok_or_else(|| {
        format!(
            "unknown estimation method '{base}' (expected one of {})",
            estimator_names().join(", ")
        )
    })?;
    let spec = REGISTRY
        .iter()
        .find(|s| s.name == canonical)
        .expect("canonical name is registered");
    Ok((spec.build)(&merge(defaults, &overrides)))
}

/// Build every registered estimator with default configuration, in registration
/// order.
pub fn all_estimators() -> Vec<Box<dyn CompatibilityEstimator>> {
    let opts = EstimatorOptions::default();
    REGISTRY.iter().map(|s| (s.build)(&opts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_and_aliases_resolve() {
        assert_eq!(canonical_estimator_name("dcer"), Some("dcer"));
        assert_eq!(canonical_estimator_name("DCEr"), Some("dcer"));
        assert_eq!(canonical_estimator_name("dce-r"), Some("dcer"));
        assert_eq!(canonical_estimator_name("Myopic"), Some("mce"));
        assert_eq!(canonical_estimator_name("hold-out"), Some("holdout"));
        assert_eq!(canonical_estimator_name("nope"), None);
    }

    #[test]
    fn every_built_in_name_round_trips() {
        // The acceptance property: parse every built-in estimator's rendered name and
        // get an estimator with the identical name back.
        for est in all_estimators() {
            let name = est.name();
            let rebuilt = estimator_by_name(&name)
                .unwrap_or_else(|e| panic!("name '{name}' failed to parse: {e}"));
            assert_eq!(rebuilt.name(), name, "round trip changed the estimator");
        }
    }

    #[test]
    fn parameterized_specs_apply_overrides() {
        let est = estimator_by_name("DCEr(r=7,l=3,lambda=0.1)").unwrap();
        assert_eq!(est.name(), "DCEr(r=7,l=3,lambda=0.1)");
        let est = estimator_by_name("dce(l=2,lambda=5,nb=false,variant=3)").unwrap();
        assert_eq!(est.name(), "DCE(l=2,lambda=5,nb=false,variant=3)");
        let est = estimator_by_name("holdout(b=4)").unwrap();
        assert_eq!(est.name(), "Holdout(b=4)");
        let est = estimator_by_name("MCE(variant=2)").unwrap();
        assert_eq!(est.name(), "MCE(variant=2)");
    }

    #[test]
    fn defaults_fill_unspecified_keys() {
        let defaults = EstimatorOptions {
            restarts: Some(5),
            lambda: Some(2.0),
            ..EstimatorOptions::default()
        };
        // Spec keys win over defaults; unset keys fall back to the defaults.
        let est = estimator_by_name_with("dcer(r=9)", &defaults).unwrap();
        assert_eq!(est.name(), "DCEr(r=9,l=5,lambda=2)");
    }

    #[test]
    fn threads_option_reaches_estimators() {
        // A threaded build must produce exactly the serial estimate (the parallel
        // kernels are bit-identical).
        use fg_graph::{generate, GeneratorConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
        let threaded_opts = EstimatorOptions {
            threads: Some(Threads::Fixed(4)),
            ..EstimatorOptions::default()
        };
        for name in estimator_names() {
            let serial = estimator_by_name(name)
                .unwrap()
                .estimate(&syn.graph, &seeds)
                .unwrap();
            let threaded = estimator_by_name_with(name, &threaded_opts)
                .unwrap()
                .estimate(&syn.graph, &seeds)
                .unwrap();
            assert_eq!(serial.data(), threaded.data(), "{name}");
        }
    }

    #[test]
    fn lowrank_mode_and_rank_keys_select_the_backend() {
        // `mode=lowrank` with an explicit rank round-trips through the name.
        let est = estimator_by_name("dce(mode=lowrank,rank=16)").unwrap();
        assert_eq!(est.name(), "DCE(l=5,lambda=10,mode=lowrank,rank=16)");
        let rebuilt = estimator_by_name(&est.name()).unwrap();
        assert_eq!(rebuilt.name(), est.name());
        // A rank alone implies the low-rank backend.
        let est = estimator_by_name("dcer(r=3,rank=8)").unwrap();
        assert_eq!(est.name(), "DCEr(r=3,l=5,lambda=10,mode=lowrank,rank=8)");
        // `mode=lowrank` without a rank uses the default rank.
        let est = estimator_by_name("dce(mode=lowrank)").unwrap();
        assert_eq!(
            est.name(),
            format!("DCE(l=5,lambda=10,mode=lowrank,rank={DEFAULT_LOWRANK_RANK})")
        );
        // An explicit `mode=exact` wins over a set rank (inapplicable keys are
        // ignored, not errors).
        let est = estimator_by_name("dce(mode=exact,rank=8)").unwrap();
        assert_eq!(est.name(), "DCE(l=5,lambda=10)");
        // Defaults merge under spec keys like every other option.
        let defaults = EstimatorOptions {
            rank: Some(32),
            ..EstimatorOptions::default()
        };
        let est = estimator_by_name_with("dce", &defaults).unwrap();
        assert_eq!(est.name(), "DCE(l=5,lambda=10,mode=lowrank,rank=32)");
    }

    #[test]
    fn malformed_specs_are_rejected_with_messages() {
        let err_of = |spec: &str| estimator_by_name(spec).map(|_| ()).unwrap_err();
        assert!(err_of("nope").contains("unknown"));
        assert!(err_of("dcer(r=10").contains("unterminated"));
        assert!(err_of("dcer(r)").contains("key=value"));
        assert!(err_of("dcer(r=many)").contains("invalid"));
        assert!(err_of("dcer(frobs=1)").contains("unknown estimator parameter"));
        assert!(err_of("mce(variant=9)").contains("variant"));
        assert!(err_of("dce(nb=perhaps)").contains("flag"));
        assert!(err_of("dce(mode=spectral)").contains("exact or lowrank"));
        assert!(err_of("dce(rank=lots)").contains("invalid rank"));
    }

    #[test]
    fn registry_lists_all_estimators() {
        assert_eq!(
            estimator_names(),
            vec!["mce", "lce", "dce", "dcer", "holdout"]
        );
        assert_eq!(all_estimators().len(), estimator_registry().len());
        for spec in estimator_registry() {
            assert!(!spec.description.is_empty());
        }
    }
}
