//! The two-value heuristic of Appendix E.1.
//!
//! Prior work guesses the compatibility matrix with just two values: a "high" value at
//! the positions a domain expert believes are compatible and a "low" value elsewhere.
//! The heuristic therefore needs the *positions* from the gold standard (or an expert),
//! which is exactly the dependence the paper's estimators remove. It is included as the
//! comparison baseline for the Fig. 12 reproduction.

use super::CompatibilityEstimator;
use crate::error::{CoreError, Result};
use fg_graph::{two_value_heuristic, CompatibilityMatrix, Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// The two-value (high / low) heuristic estimator.
#[derive(Debug, Clone)]
pub struct TwoValueHeuristic {
    gold: CompatibilityMatrix,
    spread: f64,
}

impl TwoValueHeuristic {
    /// Create the heuristic from the gold-standard matrix whose high/low *positions*
    /// the "domain expert" is assumed to know. `spread` controls how far the two values
    /// sit from the uniform value `1/k` (the paper's `ε`), typically in `(0, 1)`.
    pub fn new(gold: CompatibilityMatrix, spread: f64) -> Result<Self> {
        if spread <= 0.0 || spread >= 1.0 {
            return Err(CoreError::InvalidConfig(format!(
                "spread must lie in (0, 1), got {spread}"
            )));
        }
        Ok(TwoValueHeuristic { gold, spread })
    }
}

impl CompatibilityEstimator for TwoValueHeuristic {
    fn name(&self) -> String {
        "Heuristic".to_string()
    }

    fn estimate(&self, _graph: &Graph, _seeds: &SeedLabels) -> Result<DenseMatrix> {
        let h = two_value_heuristic(&self.gold, self.spread)?;
        Ok(h.into_dense())
    }

    fn content_addressable(&self) -> bool {
        // Derived from the gold-standard matrix and a configured spread, neither of
        // which is part of the `(graph, seeds, name)` store key.
        false
    }

    fn with_threads(&self, _threads: Threads) -> Box<dyn CompatibilityEstimator> {
        // Pure k x k arithmetic; no parallel stage.
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::Graph;

    #[test]
    fn heuristic_reproduces_high_low_structure() {
        let gold = CompatibilityMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let est = TwoValueHeuristic::new(gold, 0.5).unwrap();
        assert_eq!(est.name(), "Heuristic");
        let graph = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let seeds = SeedLabels::new(vec![None, None], 3).unwrap();
        let h = est.estimate(&graph, &seeds).unwrap();
        assert!(h.get(0, 1) > h.get(0, 0));
        assert!(h.get(2, 2) > h.get(2, 1));
        // Only two distinct value levels (up to projection noise).
        let mut values: Vec<f64> = h.data().to_vec();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = values[0];
        let max = values[values.len() - 1];
        for &v in &values {
            assert!((v - min).abs() < 0.05 || (v - max).abs() < 0.05);
        }
    }

    #[test]
    fn invalid_spread_rejected() {
        let gold = CompatibilityMatrix::uniform(3).unwrap();
        assert!(TwoValueHeuristic::new(gold.clone(), 0.0).is_err());
        assert!(TwoValueHeuristic::new(gold, 1.5).is_err());
    }
}
