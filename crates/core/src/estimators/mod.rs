//! Compatibility estimators.
//!
//! Every estimator consumes a partially labeled graph and produces a `k x k`
//! compatibility matrix estimate. The paper's progression (Section 4) is mirrored by
//! the module layout:
//!
//! * [`gold_standard`] — the GS upper bound measured from the fully labeled graph.
//! * [`holdout`] — the textbook baseline that runs label propagation as a black-box
//!   subroutine inside a derivative-free search (Eq. 7).
//! * [`lce`] — linear compatibility estimation from the LinBP energy (Eq. 8).
//! * [`mce`] — myopic compatibility estimation from neighbor statistics (Eq. 12).
//! * [`dce`] — distant compatibility estimation from length-ℓ non-backtracking path
//!   statistics (Eq. 13/14).
//! * [`dcer`] — DCE with restarts, the paper's recommended method (Section 4.8).
//! * [`heuristic`] — the two-value "domain knowledge" heuristic of Appendix E.1.

pub mod dce;
pub mod dcer;
pub mod gold_standard;
pub mod heuristic;
pub mod holdout;
pub mod lce;
pub mod mce;
pub mod registry;

use crate::context::EstimationContext;
use crate::error::{CoreError, Result};
use crate::paths::SummaryConfig;
use fg_graph::{Graph, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// Shared guard for the statistics-based estimators: with zero labeled nodes there
/// are no path endpoints to count, so estimation cannot start.
pub(crate) fn require_labeled(seeds: &SeedLabels, estimator: &str) -> Result<()> {
    if seeds.num_labeled() == 0 {
        return Err(CoreError::InvalidInput(format!(
            "{estimator} requires at least one labeled node"
        )));
    }
    Ok(())
}

pub use dce::{DceConfig, DistantCompatibilityEstimation};
pub use dcer::DceWithRestarts;
pub use gold_standard::GoldStandard;
pub use heuristic::TwoValueHeuristic;
pub use holdout::{HoldoutConfig, HoldoutEstimation};
pub use lce::LinearCompatibilityEstimation;
pub use mce::MyopicCompatibilityEstimation;

/// A method that estimates the class-compatibility matrix `H` from a partially labeled
/// graph.
pub trait CompatibilityEstimator {
    /// Display name used in experiment output, carrying the estimator's key
    /// parameters (e.g. `"DCEr(r=10,l=5,lambda=10)"`). Owned so the parameters can be
    /// rendered dynamically; the estimator registry
    /// ([`registry::estimator_by_name`]) parses these names back into estimators.
    fn name(&self) -> String;

    /// Estimate the `k x k` compatibility matrix from the graph and the observed seed
    /// labels.
    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix>;

    /// Estimate from a shared [`EstimationContext`], pulling any path statistics from
    /// its cache instead of re-summarizing the graph. Bit-identical to
    /// [`estimate`](Self::estimate) on the context's `(graph, seeds)` pair. The
    /// default delegates to `estimate`; estimators that consume factorized statistics
    /// (MCE, DCE, DCEr, LCE) override it.
    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        self.estimate(ctx.graph(), ctx.seeds())
    }

    /// The graph summarization this estimator needs, if any. Pipelines use it to warm
    /// a shared context up front and to time the summarize stage separately from the
    /// optimization stage; `None` means the estimator consumes no factorized summary.
    fn summary_requirements(&self) -> Option<SummaryConfig> {
        None
    }

    /// Whether the estimate is a pure function of the graph, the seed labels, and
    /// the parameterized [`name`](Self::name) — the triple a persistent store keys
    /// `H` entries by. Estimators that consume side data outside that key (the gold
    /// standard reads the full ground-truth labeling) return `false` so their
    /// estimates are never persisted or served from the store.
    fn content_addressable(&self) -> bool {
        true
    }

    /// Return a copy of this estimator with its [`Threads`] policy replaced (trait
    /// parity with `Propagator::with_threads`). The parallel kernels are bit-identical
    /// to the serial ones, so the returned estimator produces exactly the same `H`,
    /// only faster on multi-core hardware. Estimators without a parallel stage return
    /// an unchanged copy.
    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator>;
}

/// Blanket implementation so shared references can be used wherever an estimator is
/// expected (e.g. `Pipeline::estimator(&dcer)`).
impl<E: CompatibilityEstimator + ?Sized> CompatibilityEstimator for &E {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        (**self).estimate(graph, seeds)
    }

    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        (**self).estimate_with_context(ctx)
    }

    fn summary_requirements(&self) -> Option<SummaryConfig> {
        (**self).summary_requirements()
    }

    fn content_addressable(&self) -> bool {
        (**self).content_addressable()
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        (**self).with_threads(threads)
    }
}

/// Blanket implementation so `Box<dyn CompatibilityEstimator>` can be used wherever an
/// estimator is expected.
impl CompatibilityEstimator for Box<dyn CompatibilityEstimator + '_> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        (**self).estimate(graph, seeds)
    }

    fn estimate_with_context(&self, ctx: &EstimationContext<'_>) -> Result<DenseMatrix> {
        (**self).estimate_with_context(ctx)
    }

    fn summary_requirements(&self) -> Option<SummaryConfig> {
        (**self).summary_requirements()
    }

    fn content_addressable(&self) -> bool {
        (**self).content_addressable()
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn CompatibilityEstimator> {
        (**self).with_threads(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{CompatibilityMatrix, Labeling};

    #[test]
    fn boxed_estimator_delegates() {
        let labeling = Labeling::new(vec![0, 1, 0, 1], 2).unwrap();
        let gs: Box<dyn CompatibilityEstimator> = Box::new(GoldStandard::new(labeling));
        assert_eq!(gs.name(), "GS");
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = SeedLabels::new(vec![Some(0), None, None, None], 2).unwrap();
        let h = gs.estimate(&graph, &seeds).unwrap();
        assert_eq!(h.rows(), 2);
        let _ = CompatibilityMatrix::new(h); // may or may not validate strictly; just exercise
    }
}
