//! Compatibility estimators.
//!
//! Every estimator consumes a partially labeled graph and produces a `k x k`
//! compatibility matrix estimate. The paper's progression (Section 4) is mirrored by
//! the module layout:
//!
//! * [`gold_standard`] — the GS upper bound measured from the fully labeled graph.
//! * [`holdout`] — the textbook baseline that runs label propagation as a black-box
//!   subroutine inside a derivative-free search (Eq. 7).
//! * [`lce`] — linear compatibility estimation from the LinBP energy (Eq. 8).
//! * [`mce`] — myopic compatibility estimation from neighbor statistics (Eq. 12).
//! * [`dce`] — distant compatibility estimation from length-ℓ non-backtracking path
//!   statistics (Eq. 13/14).
//! * [`dcer`] — DCE with restarts, the paper's recommended method (Section 4.8).
//! * [`heuristic`] — the two-value "domain knowledge" heuristic of Appendix E.1.

pub mod dce;
pub mod dcer;
pub mod gold_standard;
pub mod heuristic;
pub mod holdout;
pub mod lce;
pub mod mce;

use crate::error::Result;
use fg_graph::{Graph, SeedLabels};
use fg_sparse::DenseMatrix;

pub use dce::{DceConfig, DistantCompatibilityEstimation};
pub use dcer::DceWithRestarts;
pub use gold_standard::GoldStandard;
pub use heuristic::TwoValueHeuristic;
pub use holdout::{HoldoutConfig, HoldoutEstimation};
pub use lce::LinearCompatibilityEstimation;
pub use mce::MyopicCompatibilityEstimation;

/// A method that estimates the class-compatibility matrix `H` from a partially labeled
/// graph.
pub trait CompatibilityEstimator {
    /// Short name used in experiment output (e.g. `"DCEr"`). Owned so parameterized
    /// names like `"DCEr(r=10)"` can be built dynamically.
    fn name(&self) -> String;

    /// Estimate the `k x k` compatibility matrix from the graph and the observed seed
    /// labels.
    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix>;
}

/// Blanket implementation so shared references can be used wherever an estimator is
/// expected (e.g. `Pipeline::estimator(&dcer)`).
impl<E: CompatibilityEstimator + ?Sized> CompatibilityEstimator for &E {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        (**self).estimate(graph, seeds)
    }
}

/// Blanket implementation so `Box<dyn CompatibilityEstimator>` can be used wherever an
/// estimator is expected.
impl CompatibilityEstimator for Box<dyn CompatibilityEstimator + '_> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, graph: &Graph, seeds: &SeedLabels) -> Result<DenseMatrix> {
        (**self).estimate(graph, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{CompatibilityMatrix, Labeling};

    #[test]
    fn boxed_estimator_delegates() {
        let labeling = Labeling::new(vec![0, 1, 0, 1], 2).unwrap();
        let gs: Box<dyn CompatibilityEstimator> = Box::new(GoldStandard::new(labeling));
        assert_eq!(gs.name(), "GS");
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = SeedLabels::new(vec![Some(0), None, None, None], 2).unwrap();
        let h = gs.estimate(&graph, &seeds).unwrap();
        assert_eq!(h.rows(), 2);
        let _ = CompatibilityMatrix::new(h); // may or may not validate strictly; just exercise
    }
}
