//! The three normalization variants for observed statistics matrices (Section 4.3).
//!
//! The raw class-to-class count matrix `M = Xᵀ W X` (or its length-ℓ generalizations) is
//! normalized into an observed statistics matrix `P̂` before the optimization step. The
//! paper evaluates three variants (Eq. 9–11) and finds variant 1 (row-stochastic) to
//! work best; it is the default everywhere in this crate.

use fg_sparse::DenseMatrix;

/// The normalization applied to a raw count matrix `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalizationVariant {
    /// Variant 1 (Eq. 9, default): row-stochastic `diag(M1)^{-1} M`.
    #[default]
    RowStochastic,
    /// Variant 2 (Eq. 10): symmetric `diag(M1)^{-1/2} M diag(M1)^{-1/2}` (LGC-style).
    Symmetric,
    /// Variant 3 (Eq. 11): global scaling `k (1ᵀM1)^{-1} M` so the mean entry is `1/k`.
    MeanScaled,
}

impl NormalizationVariant {
    /// All three variants, in paper order.
    pub fn all() -> [NormalizationVariant; 3] {
        [
            NormalizationVariant::RowStochastic,
            NormalizationVariant::Symmetric,
            NormalizationVariant::MeanScaled,
        ]
    }

    /// The paper's 1-based variant number (1 = row-stochastic, 2 = symmetric,
    /// 3 = mean-scaled) — the value estimator names and the registry use.
    pub fn index(&self) -> usize {
        match self {
            NormalizationVariant::RowStochastic => 1,
            NormalizationVariant::Symmetric => 2,
            NormalizationVariant::MeanScaled => 3,
        }
    }

    /// Resolve a 1-based paper variant number back to a variant.
    pub fn from_index(index: usize) -> Option<NormalizationVariant> {
        match index {
            1 => Some(NormalizationVariant::RowStochastic),
            2 => Some(NormalizationVariant::Symmetric),
            3 => Some(NormalizationVariant::MeanScaled),
            _ => None,
        }
    }

    /// Short human-readable name ("variant 1" … "variant 3").
    pub fn name(&self) -> &'static str {
        match self {
            NormalizationVariant::RowStochastic => "variant 1 (row-stochastic)",
            NormalizationVariant::Symmetric => "variant 2 (symmetric)",
            NormalizationVariant::MeanScaled => "variant 3 (mean-scaled)",
        }
    }

    /// Apply the normalization to a raw count matrix.
    pub fn apply(&self, m: &DenseMatrix) -> DenseMatrix {
        match self {
            NormalizationVariant::RowStochastic => m.row_normalized(),
            NormalizationVariant::Symmetric => m.symmetric_normalized(),
            NormalizationVariant::MeanScaled => m.mean_scaled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![10.0, 30.0], vec![30.0, 50.0]]).unwrap()
    }

    #[test]
    fn default_is_row_stochastic() {
        assert_eq!(
            NormalizationVariant::default(),
            NormalizationVariant::RowStochastic
        );
    }

    #[test]
    fn indices_round_trip() {
        for variant in NormalizationVariant::all() {
            assert_eq!(
                NormalizationVariant::from_index(variant.index()),
                Some(variant)
            );
        }
        assert_eq!(NormalizationVariant::from_index(0), None);
        assert_eq!(NormalizationVariant::from_index(4), None);
    }

    #[test]
    fn all_lists_three_variants_with_names() {
        let all = NormalizationVariant::all();
        assert_eq!(all.len(), 3);
        assert!(all[0].name().contains("variant 1"));
        assert!(all[2].name().contains("variant 3"));
    }

    #[test]
    fn variant1_rows_sum_to_one() {
        let p = NormalizationVariant::RowStochastic.apply(&counts());
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((p.get(0, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn variant2_is_symmetric_but_not_stochastic() {
        let p = NormalizationVariant::Symmetric.apply(&counts());
        assert!(p.is_symmetric(1e-12));
        let row_sum: f64 = p.row(0).iter().sum();
        assert!((row_sum - 1.0).abs() > 1e-6); // not stochastic in general
    }

    #[test]
    fn variant3_mean_entry_is_one_over_k() {
        let p = NormalizationVariant::MeanScaled.apply(&counts());
        let mean = p.sum() / 4.0;
        assert!((mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn on_a_perfect_count_matrix_variant1_recovers_h_exactly() {
        // If M is exactly proportional to a doubly-stochastic H (balanced classes, fully
        // labeled graph), every variant recovers H; variant 1 does so exactly.
        let h = DenseMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let m = h.scaled(1000.0);
        let p1 = NormalizationVariant::RowStochastic.apply(&m);
        assert!(p1.approx_eq(&h, 1e-12));
        let p3 = NormalizationVariant::MeanScaled.apply(&m);
        assert!(p3.approx_eq(&h, 1e-12));
    }
}
