//! Energy (objective) functions for compatibility estimation.
//!
//! Every estimator in the paper minimizes an energy over the free-parameter vector `h`
//! of a symmetric doubly-stochastic matrix (see [`crate::param`]):
//!
//! * **MCE** (Eq. 12): `E(H) = ||H − P̂||²` — convex, closest doubly-stochastic matrix to
//!   the observed neighbor statistics.
//! * **DCE** (Eq. 13/14): `E(H) = Σ_ℓ w_ℓ ||Hℓ − P̂(ℓ)||²` with `w_ℓ = λ^(ℓ-1)` — the
//!   distance-smoothed energy over the factorized sketches, with the explicit gradient
//!   of Proposition 4.7.
//! * **LCE** (Eq. 8): `E(H) = ||X − W X H||²` — derived from the LinBP energy
//!   (Proposition 3.2); unlike the sketch-based energies its evaluation cost grows with
//!   the graph.

use crate::error::{CoreError, Result};
use crate::param::{free_to_matrix, num_free_parameters, project_gradient};
use fg_sparse::DenseMatrix;

/// A differentiable scalar objective over the free parameters of a compatibility matrix.
pub trait EnergyFunction {
    /// Number of classes `k` (the free-parameter vector has length `k(k-1)/2`).
    fn k(&self) -> usize;

    /// Evaluate the energy at a free-parameter vector.
    fn value(&self, free: &[f64]) -> Result<f64>;

    /// Evaluate the gradient with respect to the free parameters.
    fn gradient(&self, free: &[f64]) -> Result<Vec<f64>>;

    /// Evaluate both at once (default: two separate calls).
    fn value_and_gradient(&self, free: &[f64]) -> Result<(f64, Vec<f64>)> {
        Ok((self.value(free)?, self.gradient(free)?))
    }
}

fn check_dimensions(k: usize, free: &[f64]) -> Result<()> {
    let expected = num_free_parameters(k);
    if free.len() != expected {
        return Err(CoreError::InvalidConfig(format!(
            "expected {expected} free parameters for k = {k}, got {}",
            free.len()
        )));
    }
    Ok(())
}

/// Build the geometric distance weights `w_ℓ = λ^(ℓ-1)` for `ℓ = 1..max_length`
/// (Section 4.4: "a distance-3 weight vector is `[1, λ, λ²]`").
pub fn distance_weights(lambda: f64, max_length: usize) -> Vec<f64> {
    (0..max_length).map(|i| lambda.powi(i as i32)).collect()
}

// ---------------------------------------------------------------------------
// MCE energy
// ---------------------------------------------------------------------------

/// The myopic energy `E(H) = ||H − P̂||²` (Eq. 12).
#[derive(Debug, Clone)]
pub struct MceEnergy {
    target: DenseMatrix,
}

impl MceEnergy {
    /// Create the energy for an observed statistics matrix `P̂`.
    pub fn new(target: DenseMatrix) -> Result<Self> {
        if !target.is_square() {
            return Err(CoreError::InvalidInput(format!(
                "statistics matrix must be square, got {}x{}",
                target.rows(),
                target.cols()
            )));
        }
        Ok(MceEnergy { target })
    }
}

impl EnergyFunction for MceEnergy {
    fn k(&self) -> usize {
        self.target.rows()
    }

    fn value(&self, free: &[f64]) -> Result<f64> {
        check_dimensions(self.k(), free)?;
        let h = free_to_matrix(free, self.k())?;
        Ok(h.frobenius_distance_sq(&self.target)?)
    }

    fn gradient(&self, free: &[f64]) -> Result<Vec<f64>> {
        check_dimensions(self.k(), free)?;
        let h = free_to_matrix(free, self.k())?;
        let g = h.sub(&self.target)?.scaled(2.0);
        project_gradient(&g)
    }
}

// ---------------------------------------------------------------------------
// DCE energy
// ---------------------------------------------------------------------------

/// The distance-smoothed energy `E(H) = Σ_ℓ w_ℓ ||Hℓ − P̂(ℓ)||²` (Eq. 13/14) with the
/// explicit gradient of Proposition 4.7.
#[derive(Debug, Clone)]
pub struct DceEnergy {
    statistics: Vec<DenseMatrix>,
    weights: Vec<f64>,
    k: usize,
}

impl DceEnergy {
    /// Create the energy from observed statistics `P̂(ℓ)` (index 0 holds `ℓ = 1`) and
    /// per-length weights. Weights are normalized to sum to 1 so energies are comparable
    /// across different `λ` and `ℓmax` (this does not change the minimizer).
    pub fn new(statistics: Vec<DenseMatrix>, weights: Vec<f64>) -> Result<Self> {
        if statistics.is_empty() {
            return Err(CoreError::InvalidInput(
                "at least one statistics matrix is required".into(),
            ));
        }
        if statistics.len() != weights.len() {
            return Err(CoreError::InvalidConfig(format!(
                "{} statistics matrices but {} weights",
                statistics.len(),
                weights.len()
            )));
        }
        let k = statistics[0].rows();
        for s in &statistics {
            if !s.is_square() || s.rows() != k {
                return Err(CoreError::InvalidInput(
                    "all statistics matrices must be square with identical size".into(),
                ));
            }
        }
        if weights.iter().any(|&w| w < 0.0) {
            return Err(CoreError::InvalidConfig(
                "weights must be non-negative".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "weights must not all be zero".into(),
            ));
        }
        let weights = weights.into_iter().map(|w| w / total).collect();
        Ok(DceEnergy {
            statistics,
            weights,
            k,
        })
    }

    /// Convenience constructor with geometric weights `w_ℓ = λ^(ℓ-1)`.
    pub fn with_lambda(statistics: Vec<DenseMatrix>, lambda: f64) -> Result<Self> {
        let weights = distance_weights(lambda, statistics.len());
        Self::new(statistics, weights)
    }

    /// Maximum path length `ℓmax`.
    pub fn max_length(&self) -> usize {
        self.statistics.len()
    }

    /// Energy of an explicit matrix (used for diagnostics / tests).
    pub fn value_of_matrix(&self, h: &DenseMatrix) -> Result<f64> {
        let mut energy = 0.0;
        let mut power = DenseMatrix::identity(self.k);
        for (stat, &w) in self.statistics.iter().zip(self.weights.iter()) {
            power = power.matmul(h)?;
            energy += w * power.frobenius_distance_sq(stat)?;
        }
        Ok(energy)
    }
}

impl EnergyFunction for DceEnergy {
    fn k(&self) -> usize {
        self.k
    }

    fn value(&self, free: &[f64]) -> Result<f64> {
        check_dimensions(self.k, free)?;
        let h = free_to_matrix(free, self.k)?;
        self.value_of_matrix(&h)
    }

    fn gradient(&self, free: &[f64]) -> Result<Vec<f64>> {
        check_dimensions(self.k, free)?;
        let h = free_to_matrix(free, self.k)?;
        let lmax = self.max_length();
        // Precompute H^0 .. H^(2·ℓmax - 1).
        let mut powers = Vec::with_capacity(2 * lmax);
        powers.push(DenseMatrix::identity(self.k));
        for p in 1..2 * lmax {
            let next = powers[p - 1].matmul(&h)?;
            powers.push(next);
        }
        // G = Σ_ℓ 2 w_ℓ (ℓ H^(2ℓ-1) − Σ_{r=0}^{ℓ-1} H^r P̂(ℓ) H^(ℓ-1-r)).
        let mut g = DenseMatrix::zeros(self.k, self.k);
        for (idx, (stat, &w)) in self.statistics.iter().zip(self.weights.iter()).enumerate() {
            let ell = idx + 1;
            let mut term = powers[2 * ell - 1].scaled(ell as f64);
            for r in 0..ell {
                let middle = powers[r].matmul(stat)?.matmul(&powers[ell - 1 - r])?;
                term = term.sub(&middle)?;
            }
            g = g.add(&term.scaled(2.0 * w))?;
        }
        project_gradient(&g)
    }
}

// ---------------------------------------------------------------------------
// LCE energy
// ---------------------------------------------------------------------------

/// The linear-compatibility-estimation energy `E(H) = ||X − (W X) H||²` (Eq. 8).
///
/// The product `A = W X` is precomputed once; every evaluation still costs `O(n k²)`,
/// which is what makes LCE slower than the sketch-based energies on large graphs.
#[derive(Debug, Clone)]
pub struct LceEnergy {
    /// The explicit-belief matrix `X` (`n x k`).
    x: DenseMatrix,
    /// The neighbor-sum matrix `A = W X` (`n x k`).
    wx: DenseMatrix,
    /// `Aᵀ` (`k x n`), cached once at construction: the gradient needs it on every
    /// evaluation, and rebuilding an `n x k` transpose per optimizer step dominated
    /// the gradient cost on large graphs.
    wxt: DenseMatrix,
}

impl LceEnergy {
    /// Create the energy from the seed matrix `X` and the precomputed product `W X`.
    pub fn new(x: DenseMatrix, wx: DenseMatrix) -> Result<Self> {
        if x.shape() != wx.shape() {
            return Err(CoreError::InvalidInput(format!(
                "X is {:?} but WX is {:?}",
                x.shape(),
                wx.shape()
            )));
        }
        let wxt = wx.transpose();
        Ok(LceEnergy { x, wx, wxt })
    }
}

impl EnergyFunction for LceEnergy {
    fn k(&self) -> usize {
        self.x.cols()
    }

    fn value(&self, free: &[f64]) -> Result<f64> {
        check_dimensions(self.k(), free)?;
        let h = free_to_matrix(free, self.k())?;
        let predicted = self.wx.matmul(&h)?;
        Ok(self.x.frobenius_distance_sq(&predicted)?)
    }

    fn gradient(&self, free: &[f64]) -> Result<Vec<f64>> {
        check_dimensions(self.k(), free)?;
        let h = free_to_matrix(free, self.k())?;
        // G = 2 Aᵀ (A H − X)
        let residual = self.wx.matmul(&h)?.sub(&self.x)?;
        let g = self.wxt.matmul(&residual)?.scaled(2.0);
        project_gradient(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::uniform_start;

    fn h3(values: [f64; 3]) -> Vec<f64> {
        values.to_vec()
    }

    fn paper_h() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap()
    }

    /// Central finite-difference gradient of an energy function.
    fn numeric_gradient<E: EnergyFunction>(energy: &E, free: &[f64]) -> Vec<f64> {
        let eps = 1e-6;
        (0..free.len())
            .map(|p| {
                let mut plus = free.to_vec();
                plus[p] += eps;
                let mut minus = free.to_vec();
                minus[p] -= eps;
                (energy.value(&plus).unwrap() - energy.value(&minus).unwrap()) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn distance_weights_are_geometric() {
        assert_eq!(distance_weights(10.0, 3), vec![1.0, 10.0, 100.0]);
        assert_eq!(distance_weights(1.0, 2), vec![1.0, 1.0]);
    }

    #[test]
    fn mce_energy_zero_at_target() {
        let target = paper_h();
        let energy = MceEnergy::new(target).unwrap();
        let free = h3([0.2, 0.6, 0.2]);
        assert!(energy.value(&free).unwrap() < 1e-12);
        // Gradient at the minimum is zero.
        for g in energy.gradient(&free).unwrap() {
            assert!(g.abs() < 1e-9);
        }
    }

    #[test]
    fn mce_energy_positive_away_from_target() {
        let energy = MceEnergy::new(paper_h()).unwrap();
        assert!(energy.value(&uniform_start(3)).unwrap() > 0.1);
    }

    #[test]
    fn mce_gradient_matches_finite_differences() {
        let energy = MceEnergy::new(paper_h()).unwrap();
        let free = h3([0.3, 0.4, 0.25]);
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            assert!((a - n).abs() < 1e-5, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn mce_rejects_non_square_target() {
        assert!(MceEnergy::new(DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn dce_energy_zero_when_statistics_are_exact_powers() {
        let h = paper_h();
        let stats = vec![h.clone(), h.pow(2).unwrap(), h.pow(3).unwrap()];
        let energy = DceEnergy::with_lambda(stats, 10.0).unwrap();
        let free = h3([0.2, 0.6, 0.2]);
        assert!(energy.value(&free).unwrap() < 1e-12);
        for g in energy.gradient(&free).unwrap() {
            assert!(g.abs() < 1e-9);
        }
    }

    #[test]
    fn dce_gradient_matches_finite_differences() {
        let h = paper_h();
        // Perturbed statistics so the gradient is non-trivial.
        let stats = vec![
            h.add_scalar(0.01),
            h.pow(2).unwrap().add_scalar(-0.02),
            h.pow(3).unwrap().add_scalar(0.005),
        ];
        let energy = DceEnergy::with_lambda(stats, 5.0).unwrap();
        let free = h3([0.35, 0.3, 0.28]);
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        for (a, n) in analytic.iter().zip(numeric.iter()) {
            assert!((a - n).abs() < 1e-4, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn dce_validation_errors() {
        assert!(DceEnergy::with_lambda(vec![], 10.0).is_err());
        let h = paper_h();
        assert!(DceEnergy::new(vec![h.clone()], vec![1.0, 2.0]).is_err());
        assert!(DceEnergy::new(vec![h.clone()], vec![-1.0]).is_err());
        assert!(DceEnergy::new(vec![h.clone()], vec![0.0]).is_err());
        assert!(DceEnergy::new(vec![DenseMatrix::zeros(2, 3)], vec![1.0]).is_err());
        // mixed sizes
        assert!(DceEnergy::new(vec![h, DenseMatrix::zeros(2, 2)], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn dce_weights_are_normalized() {
        let h = paper_h();
        let a = DceEnergy::new(vec![h.clone(), h.pow(2).unwrap()], vec![1.0, 10.0]).unwrap();
        let b = DceEnergy::new(vec![h.clone(), h.pow(2).unwrap()], vec![10.0, 100.0]).unwrap();
        let free = h3([0.3, 0.5, 0.3]);
        assert!((a.value(&free).unwrap() - b.value(&free).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn dce_wrong_parameter_count_rejected() {
        let energy = DceEnergy::with_lambda(vec![paper_h()], 1.0).unwrap();
        assert!(energy.value(&[0.1]).is_err());
        assert!(energy.gradient(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn lce_energy_and_gradient() {
        // Small synthetic X / WX where the correct H is known: if WX = X * P for a
        // permutation-ish P, the minimizing H satisfies X ≈ (WX) H.
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ])
        .unwrap();
        // Each node's neighbors are all of the opposite class: WX = X * swap.
        let swap = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let wx = x.matmul(&swap).unwrap();
        let energy = LceEnergy::new(x, wx).unwrap();
        // Pure heterophily (free parameter H00 = 0) gives zero energy.
        assert!(energy.value(&[0.0]).unwrap() < 1e-12);
        // Pure homophily is maximally wrong.
        assert!(energy.value(&[1.0]).unwrap() > 1.0);
        // Gradient check.
        let free = vec![0.3];
        let analytic = energy.gradient(&free).unwrap();
        let numeric = numeric_gradient(&energy, &free);
        assert!((analytic[0] - numeric[0]).abs() < 1e-5);
    }

    #[test]
    fn lce_shape_mismatch_rejected() {
        let x = DenseMatrix::zeros(4, 2);
        let wx = DenseMatrix::zeros(3, 2);
        assert!(LceEnergy::new(x, wx).is_err());
    }

    #[test]
    fn value_and_gradient_default_agrees() {
        let energy = MceEnergy::new(paper_h()).unwrap();
        let free = h3([0.25, 0.5, 0.2]);
        let (v, g) = energy.value_and_gradient(&free).unwrap();
        assert_eq!(v, energy.value(&free).unwrap());
        assert_eq!(g, energy.gradient(&free).unwrap());
    }
}
