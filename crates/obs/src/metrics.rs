//! Atomic metrics and a Prometheus-text registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are lock-free on the hot
//! path: one relaxed `fetch_add` per event. The [`MetricsRegistry`] locks only
//! on handle creation and on [`render`](MetricsRegistry::render), both cold
//! paths; callers cache the `Arc` handles and hammer them directly.
//!
//! Rendering follows the Prometheus text exposition format (`# HELP` / `# TYPE`
//! headers, `name{labels} value` samples, cumulative `_bucket{le=..}` plus
//! `_sum` / `_count` for histograms). Families render in name order and series
//! in label order — the output is deterministic for a given set of observations,
//! which is what the golden test pins.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency buckets (seconds): exponential from 100µs to 10s, the usual
/// Prometheus shape for request latencies. The `+Inf` bucket is implicit.
pub fn default_latency_buckets() -> &'static [f64] {
    &[
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
        5.0, 10.0,
    ]
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (live connections, resident engines).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `f64` observations (latencies in seconds).
///
/// Buckets are cumulative-rendered but stored per-bucket; the sum is kept in
/// nanoseconds (`u64`) so concurrent observers need no compare-and-swap loop.
/// Quantiles interpolate linearly inside the winning bucket, the standard
/// Prometheus `histogram_quantile` estimate.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows the last.
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    /// Total of all observations, in nanoseconds.
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation (seconds for latency histograms).
    #[inline]
    pub fn observe(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        let nanos = if value > 0.0 { (value * 1e9) as u64 } else { 0 };
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] observation.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in seconds.
    pub fn sum(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Estimated quantile `q` in `[0, 1]`: linear interpolation inside the
    /// bucket holding the target rank. Observations in the `+Inf` bucket clamp
    /// to the largest finite bound. Returns 0.0 with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                if i >= self.bounds.len() {
                    // The +Inf bucket has no upper edge to interpolate toward.
                    return self.bounds.last().copied().unwrap_or(0.0);
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let into = (rank - cumulative as f64) / c as f64;
                return lower + (upper - lower) * into.clamp(0.0, 1.0);
            }
            cumulative = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Median estimate (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// One registered series: the shared handle plus its label set.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A metric family: every series sharing one name, help text, and type.
#[derive(Debug, Default)]
struct Family {
    help: String,
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A global-free registry of metric families.
///
/// Each owner (a serve session, a bench harness, a test) creates its own
/// registry; nothing is process-global, so concurrent sessions and tests never
/// share counters. Handle lookups lock a `Mutex` — do them once and cache the
/// returned `Arc`, or accept the (small) lock cost on low-rate paths.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name{labels}`. `help` is recorded on first
    /// registration of the family.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.handle(name, help, labels, || Handle::Counter(Arc::default())) {
            Handle::Counter(c) => c,
            _ => panic!("metric '{name}' is registered as a non-counter"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.handle(name, help, labels, || Handle::Gauge(Arc::default())) {
            Handle::Gauge(g) => g,
            _ => panic!("metric '{name}' is registered as a non-gauge"),
        }
    }

    /// Get or create the histogram `name{labels}` with the given bucket bounds
    /// (used only when the series is first created).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type, or the
    /// bounds are not strictly ascending.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        match self.handle(name, help, labels, || {
            Handle::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Handle::Histogram(h) => h,
            _ => panic!("metric '{name}' is registered as a non-histogram"),
        }
    }

    fn handle(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_default();
        if family.help.is_empty() {
            family.help = help.to_string();
        }
        family.series.entry(key).or_insert_with(create).clone()
    }

    /// Render every family in Prometheus text exposition format, families in
    /// name order and series in label order.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = match family.series.values().next() {
                Some(Handle::Counter(_)) => "counter",
                Some(Handle::Gauge(_)) => "gauge",
                Some(Handle::Histogram(_)) => "histogram",
                None => continue,
            };
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, handle) in family.series.iter() {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            g.get()
                        ));
                    }
                    Handle::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cumulative += h.buckets[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                render_labels(labels, Some(&format_bound(*bound)))
                            ));
                        }
                        cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            render_labels(labels, Some("+Inf"))
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            format_float(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Render a label set (optionally with a trailing `le` label) as
/// `{k1="v1",k2="v2"}`, or the empty string when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Bucket bounds render without trailing zeros (`0.005`, not `0.005000`), the
/// conventional Prometheus spelling.
fn format_bound(b: f64) -> String {
    let mut s = format!("{b}");
    if !s.contains('.') && !s.contains('e') {
        s.push_str(".0");
    }
    s
}

/// Sums render as plain floats (never scientific notation for typical ranges).
fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("fg_requests_total", "Requests", &[("cmd", "ping")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = registry.gauge("fg_connections_active", "Live connections", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        // The same (name, labels) pair returns the same underlying series.
        let c2 = registry.counter("fg_requests_total", "Requests", &[("cmd", "ping")]);
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(&[0.001, 0.01, 0.1, 1.0]);
        for _ in 0..100 {
            h.observe(0.005);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        assert!(p50 > 0.001 && p50 <= 0.01, "p50 = {p50}");
        // An overflow observation clamps quantiles to the last finite bound.
        let h = Histogram::new(&[0.001, 0.01]);
        h.observe(5.0);
        assert_eq!(h.p99(), 0.01);
        // No observations: quantiles are 0.
        let h = Histogram::new(&[0.001]);
        assert_eq!(h.p50(), 0.0);
    }

    #[test]
    fn render_is_deterministic_and_prometheus_shaped() {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "fg_requests_total",
                "Requests by command.",
                &[("cmd", "ping")],
            )
            .add(3);
        registry
            .counter(
                "fg_requests_total",
                "Requests by command.",
                &[("cmd", "load")],
            )
            .inc();
        registry
            .gauge("fg_connections_active", "Live connections.", &[])
            .set(2);
        let h = registry.histogram(
            "fg_request_seconds",
            "Request latency.",
            &[("cmd", "ping")],
            &[0.001, 0.01],
        );
        h.observe(0.0005);
        h.observe(0.5);
        let rendered = registry.render();
        let expected = "\
# HELP fg_connections_active Live connections.
# TYPE fg_connections_active gauge
fg_connections_active 2
# HELP fg_request_seconds Request latency.
# TYPE fg_request_seconds histogram
fg_request_seconds_bucket{cmd=\"ping\",le=\"0.001\"} 1
fg_request_seconds_bucket{cmd=\"ping\",le=\"0.01\"} 1
fg_request_seconds_bucket{cmd=\"ping\",le=\"+Inf\"} 2
fg_request_seconds_sum{cmd=\"ping\"} 0.5005
fg_request_seconds_count{cmd=\"ping\"} 2
# HELP fg_requests_total Requests by command.
# TYPE fg_requests_total counter
fg_requests_total{cmd=\"load\"} 1
fg_requests_total{cmd=\"ping\"} 3
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let registry = Arc::new(MetricsRegistry::new());
        let h = registry.histogram(
            "fg_request_seconds",
            "Latency.",
            &[],
            default_latency_buckets(),
        );
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.observe((t * per_thread + i) as f64 * 1e-7);
                    }
                });
            }
        });
        assert_eq!(h.count(), (threads * per_thread) as u64);
        let bucket_total: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(bucket_total, h.count());
    }

    #[test]
    #[should_panic(expected = "registered as a non-counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("fg_mixed", "Gauge.", &[]);
        registry.counter("fg_mixed", "Counter.", &[]);
    }
}
