//! Hierarchical span tracing with a process-wide capture window.
//!
//! [`Span::enter`] opens a scope; dropping the guard records the scope's
//! monotonic duration. Spans nest per thread (a thread-local depth counter), so
//! a capture of `fg classify` shows `pipeline → estimate → summarize → spmm`;
//! kernel worker threads record their per-chunk spans on their own thread lane,
//! which is exactly what makes load imbalance visible in a Chrome trace.
//!
//! Capture is process-global and off by default: with no capture active,
//! [`Span::enter`] is **one relaxed atomic load** and returns an inert guard.
//! [`start_capture`] arms the collector, [`finish_capture`] disarms it and
//! returns the [`Trace`], which renders as Chrome trace-event JSON
//! ([`Trace::chrome_json`]) or aggregates into a span tree
//! ([`Trace::aggregate`]). Captures do not nest; the intended owner is a CLI
//! invocation (`fg classify --trace-out`) or a single test.
//!
//! Tracing records wall-clock data only — it never feeds back into any
//! computation, so results are byte-identical with tracing on or off.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on buffered span records per capture, so a runaway loop inside a
/// capture window degrades to dropped spans instead of unbounded memory.
const MAX_RECORDS: usize = 1 << 20;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

struct Collector {
    epoch: Instant,
    records: Vec<SpanRecord>,
    dropped: usize,
}

thread_local! {
    static THREAD_TID: Cell<u64> = const { Cell::new(0) };
    static THREAD_DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    THREAD_TID.with(|tid| {
        let current = tid.get();
        if current != 0 {
            return current;
        }
        let fresh = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        tid.set(fresh);
        fresh
    })
}

/// Whether a capture window is currently armed (one relaxed load).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Arm the process-wide span collector. Spans entered from now until
/// [`finish_capture`] are recorded. An already-armed capture is replaced (its
/// records are discarded) — captures do not nest.
pub fn start_capture() {
    let mut slot = COLLECTOR.lock().expect("trace collector poisoned");
    *slot = Some(Collector {
        epoch: Instant::now(),
        records: Vec::new(),
        dropped: 0,
    });
    TRACE_ENABLED.store(true, Ordering::SeqCst);
}

/// Disarm the collector and return everything it recorded. Returns an empty
/// [`Trace`] when no capture was armed.
pub fn finish_capture() -> Trace {
    TRACE_ENABLED.store(false, Ordering::SeqCst);
    let mut slot = COLLECTOR.lock().expect("trace collector poisoned");
    match slot.take() {
        Some(collector) => Trace {
            records: collector.records,
            dropped: collector.dropped,
        },
        None => Trace {
            records: Vec::new(),
            dropped: 0,
        },
    }
}

/// One completed span: what ran, where, when (relative to the capture epoch),
/// and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`"pipeline"`, `"summarize"`, `"spmm_chunk"`, ...).
    pub name: &'static str,
    /// Capture-local thread id (1-based; assigned on a thread's first span).
    pub tid: u64,
    /// Nesting depth on its thread when entered (0 = that thread's root).
    pub depth: usize,
    /// Start time in nanoseconds since the capture epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured arguments (e.g. `rows` / `nnz` for kernel chunks).
    pub args: Vec<(&'static str, u64)>,
}

/// An RAII span guard: created by [`Span::enter`], records on drop. Inert (one
/// relaxed load, no allocation) when no capture is armed.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    tid: u64,
    depth: usize,
    start: Instant,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Open a span named `name` on the current thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !TRACE_ENABLED.load(Ordering::Relaxed) {
            return Span(None);
        }
        Span::enter_recording(name, Vec::new())
    }

    /// Open a span with structured arguments (recorded into the Chrome trace).
    #[inline]
    pub fn enter_with(name: &'static str, args: &[(&'static str, u64)]) -> Span {
        if !TRACE_ENABLED.load(Ordering::Relaxed) {
            return Span(None);
        }
        Span::enter_recording(name, args.to_vec())
    }

    fn enter_recording(name: &'static str, args: Vec<(&'static str, u64)>) -> Span {
        let depth = THREAD_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span(Some(ActiveSpan {
            name,
            tid: thread_tid(),
            depth,
            start: Instant::now(),
            args,
        }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let end = Instant::now();
        THREAD_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let mut slot = COLLECTOR.lock().expect("trace collector poisoned");
        // The capture may have finished while this span was open; its timing
        // then has no epoch to anchor to and is discarded.
        let Some(collector) = slot.as_mut() else {
            return;
        };
        if collector.records.len() >= MAX_RECORDS {
            collector.dropped += 1;
            return;
        }
        let start_ns = active
            .start
            .saturating_duration_since(collector.epoch)
            .as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(active.start).as_nanos() as u64;
        collector.records.push(SpanRecord {
            name: active.name,
            tid: active.tid,
            depth: active.depth,
            start_ns,
            dur_ns,
            args: active.args,
        });
    }
}

/// A finished capture: every recorded span, in completion order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The recorded spans (completion order; sort by `start_ns` for timelines).
    pub records: Vec<SpanRecord>,
    /// Spans discarded because the capture hit its record cap.
    pub dropped: usize,
}

/// One aggregated node of the span tree: all spans sharing a name path, with
/// invocation count and total self-inclusive time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Slash-joined name path from the thread root (`"pipeline/estimate/summarize"`).
    pub path: String,
    /// Nesting depth (number of ancestors).
    pub depth: usize,
    /// How many spans completed on this path.
    pub count: usize,
    /// Total inclusive duration across those spans, in nanoseconds.
    pub total_ns: u64,
}

impl Trace {
    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the capture recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Aggregate the capture into a span tree: spans are grouped by their full
    /// name path (thread root downward) and summed. Paths sort
    /// depth-first/alphabetically, so rendering the list in order indents into
    /// a tree. Worker threads contribute their own root paths (a kernel chunk
    /// span on a worker lane aggregates as `"spmm_chunk"`).
    pub fn aggregate(&self) -> Vec<SpanSummary> {
        // Reconstruct ancestry per thread: sort by start time within each
        // thread, maintain a name stack driven by the recorded depths.
        let mut by_tid: std::collections::BTreeMap<u64, Vec<&SpanRecord>> =
            std::collections::BTreeMap::new();
        for record in &self.records {
            by_tid.entry(record.tid).or_default().push(record);
        }
        let mut totals: std::collections::BTreeMap<String, (usize, usize, u64)> =
            std::collections::BTreeMap::new();
        for records in by_tid.values_mut() {
            records.sort_by_key(|r| (r.start_ns, r.depth));
            let mut stack: Vec<&'static str> = Vec::new();
            for record in records.iter() {
                stack.truncate(record.depth);
                stack.push(record.name);
                let path = stack.join("/");
                let entry = totals.entry(path).or_insert((record.depth, 0, 0));
                entry.1 += 1;
                entry.2 += record.dur_ns;
            }
        }
        totals
            .into_iter()
            .map(|(path, (depth, count, total_ns))| SpanSummary {
                path,
                depth,
                count,
                total_ns,
            })
            .collect()
    }

    /// Render the capture as Chrome trace-event JSON (the `chrome://tracing` /
    /// Perfetto format): one complete (`"ph":"X"`) event per span with
    /// microsecond timestamps, thread lanes matching the capture's thread ids,
    /// and the span arguments attached.
    pub fn chrome_json(&self) -> String {
        let mut records: Vec<&SpanRecord> = self.records.iter().collect();
        records.sort_by_key(|r| (r.tid, r.start_ns, r.depth));
        let mut events = Vec::with_capacity(records.len());
        for r in records {
            let mut args: Vec<String> =
                r.args.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            args.push(format!("\"depth\":{}", r.depth));
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"fg\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
                r.name,
                r.tid,
                r.start_ns as f64 / 1000.0,
                r.dur_ns as f64 / 1000.0,
                args.join(",")
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Captures are process-global, so trace tests serialize on one lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        {
            let _span = Span::enter("never");
        }
        start_capture();
        let trace = finish_capture();
        assert!(trace.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _guard = TEST_LOCK.lock().unwrap();
        start_capture();
        {
            let _root = Span::enter("pipeline");
            for _ in 0..2 {
                let _child = Span::enter_with("summarize", &[("lmax", 5)]);
                let _leaf = Span::enter("spmm");
            }
        }
        let trace = finish_capture();
        assert_eq!(trace.len(), 5);
        let tree = trace.aggregate();
        let paths: Vec<(&str, usize)> = tree.iter().map(|s| (s.path.as_str(), s.count)).collect();
        assert_eq!(
            paths,
            vec![
                ("pipeline", 1),
                ("pipeline/summarize", 2),
                ("pipeline/summarize/spmm", 2),
            ]
        );
        let root = tree.iter().find(|s| s.path == "pipeline").unwrap();
        let children = tree
            .iter()
            .find(|s| s.path == "pipeline/summarize")
            .unwrap();
        assert!(root.total_ns >= children.total_ns);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let _guard = TEST_LOCK.lock().unwrap();
        start_capture();
        {
            let _root = Span::enter("pipeline");
            let _chunk = Span::enter_with("spmm_chunk", &[("rows", 128), ("nnz", 4096)]);
        }
        let trace = finish_capture();
        let json = trace.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"spmm_chunk\""));
        assert!(json.contains("\"rows\":128"));
        assert!(json.contains("\"nnz\":4096"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn worker_threads_get_their_own_lanes() {
        let _guard = TEST_LOCK.lock().unwrap();
        start_capture();
        {
            let _root = Span::enter("pipeline");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _chunk = Span::enter("spmm_chunk");
                    });
                }
            });
        }
        let trace = finish_capture();
        let tids: std::collections::BTreeSet<u64> = trace.records.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 3, "root + two workers: {tids:?}");
        // Worker spans are thread roots (depth 0) on their own lanes.
        for record in trace.records.iter().filter(|r| r.name == "spmm_chunk") {
            assert_eq!(record.depth, 0);
        }
    }

    #[test]
    fn capture_replaces_and_caps() {
        let _guard = TEST_LOCK.lock().unwrap();
        start_capture();
        {
            let _span = Span::enter("stale");
        }
        start_capture();
        {
            let _span = Span::enter("fresh");
        }
        let trace = finish_capture();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records[0].name, "fresh");
        assert_eq!(trace.dropped, 0);
    }
}
