//! Dependency-free observability for the factorized-graphs workspace.
//!
//! Two independent facilities, both compiled in everywhere and both designed so
//! the *disabled* path costs one relaxed atomic load:
//!
//! - [`metrics`] — a global-free [`MetricsRegistry`] of atomic counters, gauges,
//!   and fixed-bucket latency histograms (with p50/p95/p99 readout), rendered in
//!   Prometheus text exposition format. The serving tier owns a registry per
//!   session and exposes it over a `/metrics`-style scrape listener.
//! - [`trace`] — hierarchical [`Span`] tracing with monotonic timings that nest
//!   (pipeline → estimate → summarize → spmm), captured process-wide between
//!   [`start_capture`] and [`finish_capture`] and exportable as Chrome
//!   trace-event JSON (`chrome://tracing`, Perfetto) or aggregated into a span
//!   tree for reports.
//!
//! Instrumentation never changes results: spans and metrics only *observe*
//! wall-clock time, and nothing in this crate feeds back into kernel output.
//! Protocol responses of the serving tier therefore stay byte-deterministic —
//! all timing data lives in the metrics/trace channels only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{default_latency_buckets, Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{
    finish_capture, start_capture, tracing_enabled, Span, SpanRecord, SpanSummary, Trace,
};
