//! Graph construction from raw feature matrices.
//!
//! Everything else in the workspace starts from an explicit edge list, but the
//! paper's estimation/propagation machinery is agnostic to where the graph comes
//! from. This module turns a dense `n x d` feature matrix into a [`Graph`], making
//! construction a sweepable, first-class pipeline stage:
//!
//! * [`KnnBuilder`] — exact brute-force k-nearest-neighbor graphs with a choice of
//!   [`Metric`] (euclidean / cosine), edge [`Weighting`] (binary / heat kernel /
//!   inverse distance), and [`Symmetrize`] policy (union / intersection / mutual).
//! * [`SparseRegBuilder`] — per-node l1-penalized reconstruction over a candidate
//!   neighbor set, solved by nonnegative coordinate descent; rows are normalized and
//!   then symmetrized, in the spirit of sparse affinity-graph learning.
//!
//! Both builders fan the per-node work out through
//! [`fg_sparse::run_ordered_cells`], and the result is **bit-identical at any
//! thread count**: every per-node computation depends only on its node index, and
//! the edge set is assembled serially in sorted order. Constructed graphs carry the
//! usual content [`Graph::fingerprint`], so they flow through the summary cache and
//! persistent store exactly like loaded ones.
//!
//! Builders are addressed by name or by a parameterized spec string in exactly the
//! format [`GraphBuilder::name`] renders — `Knn(k=10,metric=cosine,weighting=heat,
//! sym=union)` — mirroring the estimator and propagator registries.

use fg_graph::{Fingerprint, FingerprintBuilder, Graph, GraphError, Labeling, Result};
use fg_sparse::{run_ordered_cells, DenseMatrix, Threads};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Content fingerprint of a feature matrix: the shape plus every value's exact
/// `f64` bit pattern, domain-separated from the graph and seed fingerprints.
/// Together with a parameterized builder spec this addresses a *constructed*
/// graph by content — two processes loading byte-identical features and asking
/// for the same builder get the same key, so a persistent store can hand back
/// the finished graph instead of re-running the `O(n²·d)` build.
pub fn features_fingerprint(features: &DenseMatrix) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-features-v1");
    h.write_usize(features.rows());
    h.write_usize(features.cols());
    for &v in features.data() {
        h.write_u64(v.to_bits());
    }
    h.finish()
}

/// Distance metric for the kNN builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Euclidean (l2) distance.
    #[default]
    Euclidean,
    /// Cosine distance `1 - cos(x, y)`; zero vectors are at distance 1 from
    /// everything.
    Cosine,
}

impl std::str::FromStr for Metric {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "euclidean" | "l2" => Ok(Metric::Euclidean),
            "cosine" | "cos" => Ok(Metric::Cosine),
            other => Err(format!(
                "unknown metric '{other}' (expected euclidean or cosine)"
            )),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Euclidean => write!(f, "euclidean"),
            Metric::Cosine => write!(f, "cosine"),
        }
    }
}

/// Edge-weight scheme for the kNN builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// Every kept edge has weight 1.
    #[default]
    Binary,
    /// Heat kernel `exp(-d^2 / (2 sigma^2))`. The bandwidth is the builder's
    /// `sigma` knob, or — when unset — the mean distance to each node's k-th
    /// neighbor (a deterministic, data-driven default).
    HeatKernel,
    /// Bounded inverse distance `1 / (1 + d)`.
    InverseDistance,
}

impl std::str::FromStr for Weighting {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "binary" => Ok(Weighting::Binary),
            "heat" | "heat-kernel" | "heatkernel" => Ok(Weighting::HeatKernel),
            "inverse" | "inverse-distance" | "inversedistance" => Ok(Weighting::InverseDistance),
            other => Err(format!(
                "unknown weighting '{other}' (expected binary, heat, or inverse)"
            )),
        }
    }
}

impl std::fmt::Display for Weighting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Weighting::Binary => write!(f, "binary"),
            Weighting::HeatKernel => write!(f, "heat"),
            Weighting::InverseDistance => write!(f, "inverse"),
        }
    }
}

/// How the directed nearest-neighbor (or reconstruction) weights become an
/// undirected graph. Writing `w(u→v)` for the directed weight (0 when absent):
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Symmetrize {
    /// Keep an edge when **either** direction selected it; weight
    /// `max(w(u→v), w(v→u))`.
    #[default]
    Union,
    /// Keep an edge only when **both** directions selected it; weight
    /// `min(w(u→v), w(v→u))`.
    Intersection,
    /// Keep an edge only when both directions selected it; weight
    /// `(w(u→v) + w(v→u)) / 2`. For the kNN weightings (symmetric functions of
    /// the distance) this coincides with [`Symmetrize::Intersection`]; the
    /// sparse-regularized coefficients are genuinely asymmetric, so it differs
    /// there.
    Mutual,
}

impl std::str::FromStr for Symmetrize {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "union" => Ok(Symmetrize::Union),
            "intersection" | "inter" => Ok(Symmetrize::Intersection),
            "mutual" => Ok(Symmetrize::Mutual),
            other => Err(format!(
                "unknown symmetrization '{other}' (expected union, intersection, or mutual)"
            )),
        }
    }
}

impl std::fmt::Display for Symmetrize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Symmetrize::Union => write!(f, "union"),
            Symmetrize::Intersection => write!(f, "intersection"),
            Symmetrize::Mutual => write!(f, "mutual"),
        }
    }
}

/// A graph-construction backend: features in, [`Graph`] out.
pub trait GraphBuilder: Send + Sync {
    /// Build a graph over the rows of `features` (one node per row).
    fn build(&self, features: &DenseMatrix) -> Result<Graph>;

    /// Parameterized display name, parseable back through
    /// [`construction_by_name`].
    fn name(&self) -> String;
}

fn invalid(message: impl Into<String>) -> GraphError {
    GraphError::InvalidGeneratorConfig(message.into())
}

/// Shared input validation: at least two rows, one column, all entries finite.
fn validate_features(features: &DenseMatrix) -> Result<()> {
    if features.rows() < 2 || features.cols() == 0 {
        return Err(invalid(format!(
            "feature matrix must be at least 2x1, got {}x{}",
            features.rows(),
            features.cols()
        )));
    }
    if let Some(pos) = features.data().iter().position(|v| !v.is_finite()) {
        return Err(invalid(format!(
            "feature matrix contains a non-finite value at row {}",
            pos / features.cols()
        )));
    }
    Ok(())
}

/// Squared euclidean distance between two feature rows.
fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// The k smallest `(distance, node)` pairs among `i`'s rows, ties broken by node
/// index so the selection is deterministic.
fn nearest(
    features: &DenseMatrix,
    norms: &[f64],
    metric: Metric,
    i: usize,
    k: usize,
) -> Vec<(usize, f64)> {
    let n = features.rows();
    let xi = features.row(i);
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    for j in 0..n {
        if j == i {
            continue;
        }
        let d = match metric {
            Metric::Euclidean => euclidean_sq(xi, features.row(j)).sqrt(),
            Metric::Cosine => {
                let denom = norms[i] * norms[j];
                if denom == 0.0 {
                    1.0
                } else {
                    let dot: f64 = xi.iter().zip(features.row(j)).map(|(x, y)| x * y).sum();
                    1.0 - dot / denom
                }
            }
        };
        dists.push((d, j));
    }
    dists.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    dists.truncate(k);
    dists.into_iter().map(|(d, j)| (j, d)).collect()
}

/// Fold per-node directed weights into an undirected edge list under a
/// [`Symmetrize`] policy. The output is sorted by `(u, v)`, each undirected edge
/// exactly once — deterministic no matter how the directed lists were produced.
fn symmetrized_edges(
    directed: &[Vec<(usize, f64)>],
    policy: Symmetrize,
) -> Vec<(usize, usize, f64)> {
    use std::collections::HashMap;
    let mut pairs: HashMap<(usize, usize), (Option<f64>, Option<f64>)> = HashMap::new();
    for (i, list) in directed.iter().enumerate() {
        for &(j, w) in list {
            let slot = pairs.entry((i.min(j), i.max(j))).or_insert((None, None));
            if i < j {
                slot.0 = Some(w);
            } else {
                slot.1 = Some(w);
            }
        }
    }
    let mut edges: Vec<(usize, usize, f64)> = pairs
        .into_iter()
        .filter_map(|((u, v), (fwd, bwd))| {
            let w = match policy {
                Symmetrize::Union => match (fwd, bwd) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                },
                Symmetrize::Intersection => fwd.zip(bwd).map(|(a, b)| a.min(b)),
                Symmetrize::Mutual => fwd.zip(bwd).map(|(a, b)| 0.5 * (a + b)),
            }?;
            (w > 0.0).then_some((u, v, w))
        })
        .collect();
    edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    edges
}

/// Exact brute-force k-nearest-neighbor graph construction.
#[derive(Debug, Clone)]
pub struct KnnBuilder {
    /// Number of nearest neighbors per node (capped at `n - 1`).
    pub k: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Edge-weight scheme.
    pub weighting: Weighting,
    /// Symmetrization policy.
    pub symmetrize: Symmetrize,
    /// Heat-kernel bandwidth; `None` uses the mean k-th-neighbor distance.
    pub sigma: Option<f64>,
    /// Thread policy for the per-node distance scans (bit-identical output at
    /// any count).
    pub threads: Threads,
}

impl Default for KnnBuilder {
    fn default() -> Self {
        KnnBuilder {
            k: 10,
            metric: Metric::Euclidean,
            weighting: Weighting::Binary,
            symmetrize: Symmetrize::Union,
            sigma: None,
            threads: Threads::Serial,
        }
    }
}

impl GraphBuilder for KnnBuilder {
    fn build(&self, features: &DenseMatrix) -> Result<Graph> {
        validate_features(features)?;
        if self.k == 0 {
            return Err(invalid("kNN construction needs k >= 1"));
        }
        if let Some(sigma) = self.sigma {
            if !sigma.is_finite() || sigma <= 0.0 {
                return Err(invalid(format!("sigma must be positive, got {sigma}")));
            }
        }
        let n = features.rows();
        let k = self.k.min(n - 1);
        let norms: Vec<f64> = match self.metric {
            Metric::Cosine => (0..n)
                .map(|i| features.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
                .collect(),
            Metric::Euclidean => Vec::new(),
        };
        // Per-node scans are independent; `run_ordered_cells` returns them in node
        // order regardless of which worker ran which node.
        let lists: Vec<Vec<(usize, f64)>> = run_ordered_cells(n, self.threads, |i| {
            Ok::<_, GraphError>(nearest(features, &norms, self.metric, i, k))
        })?;
        // The heat-kernel bandwidth defaults to the mean k-th-neighbor distance,
        // reduced serially in node order — the same value at any thread count.
        let sigma = match (self.weighting, self.sigma) {
            (Weighting::HeatKernel, None) => {
                let mean: f64 = lists
                    .iter()
                    .map(|l| l.last().map_or(0.0, |&(_, d)| d))
                    .sum::<f64>()
                    / n as f64;
                if mean > 0.0 {
                    mean
                } else {
                    1.0
                }
            }
            (_, sigma) => sigma.unwrap_or(1.0),
        };
        let weighted: Vec<Vec<(usize, f64)>> = lists
            .iter()
            .map(|list| {
                list.iter()
                    .map(|&(j, d)| {
                        let w = match self.weighting {
                            Weighting::Binary => 1.0,
                            Weighting::HeatKernel => (-d * d / (2.0 * sigma * sigma)).exp(),
                            Weighting::InverseDistance => 1.0 / (1.0 + d),
                        };
                        (j, w)
                    })
                    .collect()
            })
            .collect();
        Graph::from_weighted_edges(n, &symmetrized_edges(&weighted, self.symmetrize))
    }

    fn name(&self) -> String {
        let sigma = match self.sigma {
            Some(s) => format!(",sigma={s}"),
            None => String::new(),
        };
        format!(
            "Knn(k={},metric={},weighting={}{sigma},sym={})",
            self.k, self.metric, self.weighting, self.symmetrize
        )
    }
}

/// Sparse-regularized graph construction: each node's edge weights are the
/// nonnegative l1-penalized coefficients reconstructing its (l2-normalized)
/// feature row from its `k` candidate neighbors, solved by cyclic coordinate
/// descent, then row-normalized and symmetrized.
#[derive(Debug, Clone)]
pub struct SparseRegBuilder {
    /// Candidate-neighbor count (euclidean kNN over normalized rows).
    pub k: usize,
    /// l1 penalty on the reconstruction coefficients.
    pub alpha: f64,
    /// Coordinate-descent sweeps per node (with early exit on stagnation).
    pub iterations: usize,
    /// Symmetrization policy.
    pub symmetrize: Symmetrize,
    /// Thread policy for the per-node solves (bit-identical output at any count).
    pub threads: Threads,
}

impl Default for SparseRegBuilder {
    fn default() -> Self {
        SparseRegBuilder {
            k: 10,
            alpha: 0.1,
            iterations: 50,
            symmetrize: Symmetrize::Union,
            threads: Threads::Serial,
        }
    }
}

impl SparseRegBuilder {
    /// Solve `min_{w >= 0} 0.5 ||x - C w||^2 + alpha ||w||_1` by cyclic coordinate
    /// descent over the candidate columns. `gram[j][l] = c_j . c_l`, `corr[j] =
    /// c_j . x`. Deterministic: fixed cycle order, fixed sweep count, per-node
    /// stagnation test.
    fn solve(&self, gram: &[Vec<f64>], corr: &[f64]) -> Vec<f64> {
        let k = corr.len();
        let mut w = vec![0.0; k];
        for _ in 0..self.iterations {
            let mut max_change = 0.0f64;
            for j in 0..k {
                if gram[j][j] <= 0.0 {
                    continue;
                }
                // Gradient of the smooth part at w_j = 0, holding the others fixed.
                let residual: f64 = corr[j]
                    - (0..k)
                        .filter(|&l| l != j)
                        .map(|l| gram[j][l] * w[l])
                        .sum::<f64>();
                let updated = ((residual - self.alpha) / gram[j][j]).max(0.0);
                max_change = max_change.max((updated - w[j]).abs());
                w[j] = updated;
            }
            if max_change < 1e-12 {
                break;
            }
        }
        w
    }
}

impl GraphBuilder for SparseRegBuilder {
    fn build(&self, features: &DenseMatrix) -> Result<Graph> {
        validate_features(features)?;
        if self.k == 0 {
            return Err(invalid("sparse-regularized construction needs k >= 1"));
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(invalid(format!(
                "alpha must be non-negative, got {}",
                self.alpha
            )));
        }
        if self.iterations == 0 {
            return Err(invalid("sparse-regularized construction needs iters >= 1"));
        }
        let n = features.rows();
        let k = self.k.min(n - 1);
        // l2-normalize rows so the reconstruction problem is scale-free.
        let mut unit = features.clone();
        for i in 0..n {
            let row = unit.row_mut(i);
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
        let directed: Vec<Vec<(usize, f64)>> = run_ordered_cells(n, self.threads, |i| {
            let candidates = nearest(&unit, &[], Metric::Euclidean, i, k);
            let xi = unit.row(i);
            let m = candidates.len();
            let mut gram = vec![vec![0.0; m]; m];
            let mut corr = vec![0.0; m];
            for (a, &(ja, _)) in candidates.iter().enumerate() {
                let ca = unit.row(ja);
                corr[a] = ca.iter().zip(xi).map(|(x, y)| x * y).sum();
                for (b, &(jb, _)) in candidates.iter().enumerate().take(a + 1) {
                    let dot: f64 = ca.iter().zip(unit.row(jb)).map(|(x, y)| x * y).sum();
                    gram[a][b] = dot;
                    gram[b][a] = dot;
                }
            }
            let mut w = self.solve(&gram, &corr);
            let total: f64 = w.iter().sum();
            if total > 0.0 {
                for v in &mut w {
                    *v /= total;
                }
            }
            Ok::<_, GraphError>(
                candidates
                    .iter()
                    .zip(&w)
                    .filter(|&(_, &wv)| wv > 1e-12)
                    .map(|(&(j, _), &wv)| (j, wv))
                    .collect::<Vec<_>>(),
            )
        })?;
        Graph::from_weighted_edges(n, &symmetrized_edges(&directed, self.symmetrize))
    }

    fn name(&self) -> String {
        format!(
            "SparseReg(k={},alpha={},iters={},sym={})",
            self.k, self.alpha, self.iterations, self.symmetrize
        )
    }
}

/// Builder-agnostic configuration overrides understood by every registered
/// construction backend; keys a builder has no use for are ignored, mirroring
/// the estimator-registry option semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstructionOptions {
    /// Neighbor / candidate count (key `k`).
    pub k: Option<usize>,
    /// Distance metric (key `metric`; kNN only).
    pub metric: Option<Metric>,
    /// Edge weighting (key `weighting` / `w`; kNN only).
    pub weighting: Option<Weighting>,
    /// Symmetrization policy (key `sym` / `symmetrize`).
    pub symmetrize: Option<Symmetrize>,
    /// Heat-kernel bandwidth (key `sigma`; kNN only).
    pub sigma: Option<f64>,
    /// l1 penalty (key `alpha`; sparse-regularized only).
    pub alpha: Option<f64>,
    /// Coordinate-descent sweeps (key `iters`; sparse-regularized only).
    pub iterations: Option<usize>,
    /// Thread policy; results are bit-identical at any count.
    pub threads: Option<Threads>,
}

/// A registry entry: canonical name, accepted aliases, one-line description, and a
/// constructor honoring [`ConstructionOptions`].
pub struct ConstructionSpec {
    /// Canonical lowercase name.
    pub name: &'static str,
    /// Alternative names accepted by [`construction_by_name`].
    pub aliases: &'static [&'static str],
    /// One-line human-readable description for help output.
    pub description: &'static str,
    /// Build the backend with the given option overrides.
    pub build: fn(&ConstructionOptions) -> Box<dyn GraphBuilder>,
}

fn build_knn(opts: &ConstructionOptions) -> Box<dyn GraphBuilder> {
    let mut builder = KnnBuilder::default();
    if let Some(k) = opts.k {
        builder.k = k;
    }
    if let Some(metric) = opts.metric {
        builder.metric = metric;
    }
    if let Some(weighting) = opts.weighting {
        builder.weighting = weighting;
    }
    if let Some(symmetrize) = opts.symmetrize {
        builder.symmetrize = symmetrize;
    }
    if opts.sigma.is_some() {
        builder.sigma = opts.sigma;
    }
    if let Some(threads) = opts.threads {
        builder.threads = threads;
    }
    Box::new(builder)
}

fn build_sparse_reg(opts: &ConstructionOptions) -> Box<dyn GraphBuilder> {
    let mut builder = SparseRegBuilder::default();
    if let Some(k) = opts.k {
        builder.k = k;
    }
    if let Some(alpha) = opts.alpha {
        builder.alpha = alpha;
    }
    if let Some(iterations) = opts.iterations {
        builder.iterations = iterations;
    }
    if let Some(symmetrize) = opts.symmetrize {
        builder.symmetrize = symmetrize;
    }
    if let Some(threads) = opts.threads {
        builder.threads = threads;
    }
    Box::new(builder)
}

const REGISTRY: &[ConstructionSpec] = &[
    ConstructionSpec {
        name: "knn",
        aliases: &["k-nn", "nearest"],
        description: "Exact brute-force kNN graph (euclidean/cosine; binary/heat/inverse weights)",
        build: build_knn,
    },
    ConstructionSpec {
        name: "sparsereg",
        aliases: &["sparse-reg", "sparse", "l1"],
        description: "Sparse-regularized graph: nonnegative l1 reconstruction per node",
        build: build_sparse_reg,
    },
];

/// All registered construction specs, in registration order.
pub fn construction_registry() -> &'static [ConstructionSpec] {
    REGISTRY
}

/// The canonical names of all registered construction backends.
pub fn construction_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Resolve a (case-insensitive) base name or alias — without any parameter list —
/// to its canonical construction name.
pub fn canonical_construction_name(name: &str) -> Option<&'static str> {
    let lowered = name.trim().to_ascii_lowercase();
    REGISTRY
        .iter()
        .find(|s| s.name == lowered || s.aliases.contains(&lowered.as_str()))
        .map(|s| s.name)
}

/// Split a spec string into its base name and the overrides encoded in its
/// parenthesized key/value list.
fn parse_spec(spec: &str) -> std::result::Result<(String, ConstructionOptions), String> {
    let spec = spec.trim();
    let (base, args) = match spec.split_once('(') {
        None => (spec, None),
        Some((base, rest)) => {
            let inner = rest.strip_suffix(')').ok_or_else(|| {
                format!("construction spec '{spec}' has an unterminated parameter list")
            })?;
            (base, Some(inner))
        }
    };
    let mut opts = ConstructionOptions::default();
    if let Some(args) = args {
        for pair in args.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                format!("construction parameter '{pair}' is not of the form key=value")
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let bad =
                |what: &str| format!("construction parameter '{key}' has invalid {what} '{value}'");
            match key.as_str() {
                "k" => opts.k = Some(value.parse().map_err(|_| bad("count"))?),
                "metric" => opts.metric = Some(value.parse().map_err(|e: String| e)?),
                "weighting" | "w" => opts.weighting = Some(value.parse().map_err(|e: String| e)?),
                "sym" | "symmetrize" => {
                    opts.symmetrize = Some(value.parse().map_err(|e: String| e)?)
                }
                "sigma" => opts.sigma = Some(value.parse().map_err(|_| bad("number"))?),
                "alpha" => opts.alpha = Some(value.parse().map_err(|_| bad("number"))?),
                "iters" | "iterations" => {
                    opts.iterations = Some(value.parse().map_err(|_| bad("count"))?)
                }
                other => {
                    return Err(format!(
                        "unknown construction parameter '{other}' \
                         (expected k, metric, weighting, sym, sigma, alpha, or iters)"
                    ))
                }
            }
        }
    }
    Ok((base.to_string(), opts))
}

/// Merge spec-string overrides (`overlay`) on top of caller defaults (`base`).
fn merge(base: &ConstructionOptions, overlay: &ConstructionOptions) -> ConstructionOptions {
    ConstructionOptions {
        k: overlay.k.or(base.k),
        metric: overlay.metric.or(base.metric),
        weighting: overlay.weighting.or(base.weighting),
        symmetrize: overlay.symmetrize.or(base.symmetrize),
        sigma: overlay.sigma.or(base.sigma),
        alpha: overlay.alpha.or(base.alpha),
        iterations: overlay.iterations.or(base.iterations),
        threads: overlay.threads.or(base.threads),
    }
}

/// Build a construction backend from a name or parameterized spec string (e.g.
/// `"knn"`, `"Knn(k=10,metric=cosine)"`) with default options.
pub fn construction_by_name(spec: &str) -> std::result::Result<Box<dyn GraphBuilder>, String> {
    construction_by_name_with(spec, &ConstructionOptions::default())
}

/// Build a construction backend from a name or parameterized spec string, applying
/// the given option defaults; keys in the spec string take precedence.
pub fn construction_by_name_with(
    spec: &str,
    defaults: &ConstructionOptions,
) -> std::result::Result<Box<dyn GraphBuilder>, String> {
    let (base, overrides) = parse_spec(spec)?;
    let canonical = canonical_construction_name(&base).ok_or_else(|| {
        format!(
            "unknown construction method '{base}' (expected one of {})",
            construction_names().join(", ")
        )
    })?;
    let spec = REGISTRY
        .iter()
        .find(|s| s.name == canonical)
        .expect("canonical name is registered");
    Ok((spec.build)(&merge(defaults, &overrides)))
}

/// Configuration for [`synthesize_blobs`]: isotropic Gaussian clusters, one per
/// class, on deterministic axis-aligned centers.
#[derive(Debug, Clone)]
pub struct BlobConfig {
    /// Number of points (nodes).
    pub nodes: usize,
    /// Number of classes (one blob each).
    pub classes: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Standard deviation of each blob around its center (centers sit at
    /// distance [`BlobConfig::SEPARATION`] from the origin).
    pub spread: f64,
    /// Per-class spread multiplier ramp: class 0 keeps `spread`, the last
    /// class's noise is `spread * spread_skew`, and classes in between
    /// interpolate linearly. `1.0` (the default) gives identical isotropic
    /// blobs; larger values make later classes progressively more diffuse —
    /// the heteroscedastic regime where distance-aware edge weightings
    /// outperform binary kNN.
    pub spread_skew: f64,
    /// RNG seed; fixed seeds give identical clouds.
    pub seed: u64,
}

impl BlobConfig {
    /// Distance of each blob center from the origin along its axis.
    pub const SEPARATION: f64 = 3.0;
}

impl Default for BlobConfig {
    fn default() -> Self {
        BlobConfig {
            nodes: 200,
            classes: 3,
            dims: 4,
            spread: 1.0,
            spread_skew: 1.0,
            seed: 0,
        }
    }
}

/// Synthesize a labeled Gaussian-blob feature cloud: class `c`'s center is
/// `SEPARATION * (1 + c / dims)` along axis `c % dims`, points are the center
/// plus Gaussian noise (Box–Muller over the seeded generator) scaled by
/// `spread` and the per-class [`BlobConfig::spread_skew`] ramp, and node `i`
/// belongs to class `i % classes`. Returns the `nodes x dims` feature matrix
/// and the full ground-truth labeling.
pub fn synthesize_blobs(config: &BlobConfig) -> Result<(DenseMatrix, Labeling)> {
    if config.nodes < config.classes || config.classes == 0 || config.dims == 0 {
        return Err(invalid(format!(
            "blob config needs nodes >= classes >= 1 and dims >= 1, \
             got nodes={}, classes={}, dims={}",
            config.nodes, config.classes, config.dims
        )));
    }
    if !config.spread.is_finite() || config.spread < 0.0 {
        return Err(invalid(format!(
            "blob spread must be non-negative, got {}",
            config.spread
        )));
    }
    if !config.spread_skew.is_finite() || config.spread_skew <= 0.0 {
        return Err(invalid(format!(
            "blob spread_skew must be positive, got {}",
            config.spread_skew
        )));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gaussian = move || -> f64 {
        // Box–Muller; 1 - u is in (0, 1], so the log is finite.
        let u: f64 = rng.gen();
        let v: f64 = rng.gen();
        (-2.0 * (1.0 - u).ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    };
    let class_spread = |class: usize| -> f64 {
        if config.classes < 2 {
            config.spread
        } else {
            let t = class as f64 / (config.classes - 1) as f64;
            config.spread * (1.0 + (config.spread_skew - 1.0) * t)
        }
    };
    let mut features = DenseMatrix::zeros(config.nodes, config.dims);
    let mut labels = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let class = i % config.classes;
        let axis = class % config.dims;
        let center = BlobConfig::SEPARATION * (1.0 + (class / config.dims) as f64);
        let spread = class_spread(class);
        let row = features.row_mut(i);
        for (d, value) in row.iter_mut().enumerate() {
            let mean = if d == axis { center } else { 0.0 };
            *value = mean + spread * gaussian();
        }
        labels.push(class);
    }
    Ok((features, Labeling::new(labels, config.classes)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_features(nodes: usize, spread: f64, seed: u64) -> DenseMatrix {
        synthesize_blobs(&BlobConfig {
            nodes,
            spread,
            seed,
            ..BlobConfig::default()
        })
        .unwrap()
        .0
    }

    #[test]
    fn knn_graph_is_valid_and_deterministic() {
        let x = blob_features(60, 0.8, 1);
        let builder = KnnBuilder::default();
        let g = builder.build(&x).unwrap();
        assert_eq!(g.num_nodes(), 60);
        assert!(g.num_edges() >= 60 * 10 / 2, "{} edges", g.num_edges());
        // Symmetric CSR, zero diagonal, no negative weights.
        assert!(g.adjacency().is_symmetric(0.0));
        assert!(g.adjacency().diagonal().iter().all(|&d| d == 0.0));
        assert!(g.edges().all(|(_, _, w)| w > 0.0));
        // Re-running reproduces the exact graph (same fingerprint).
        let again = builder.build(&x).unwrap();
        assert_eq!(g.fingerprint(), again.fingerprint());
    }

    #[test]
    fn knn_is_bit_identical_across_thread_counts() {
        let x = blob_features(80, 1.2, 3);
        for weighting in [
            Weighting::Binary,
            Weighting::HeatKernel,
            Weighting::InverseDistance,
        ] {
            let serial = KnnBuilder {
                weighting,
                ..KnnBuilder::default()
            };
            let baseline = serial.build(&x).unwrap();
            for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
                let parallel = KnnBuilder {
                    threads,
                    ..serial.clone()
                }
                .build(&x)
                .unwrap();
                assert_eq!(
                    baseline.fingerprint(),
                    parallel.fingerprint(),
                    "{weighting:?} {threads:?}"
                );
            }
        }
    }

    #[test]
    fn sparse_reg_is_bit_identical_across_thread_counts() {
        let x = blob_features(60, 1.0, 5);
        let serial = SparseRegBuilder::default();
        let baseline = serial.build(&x).unwrap();
        assert!(baseline.adjacency().is_symmetric(0.0));
        assert!(baseline.adjacency().diagonal().iter().all(|&d| d == 0.0));
        assert!(baseline.edges().all(|(_, _, w)| w > 0.0));
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            let parallel = SparseRegBuilder {
                threads,
                ..serial.clone()
            }
            .build(&x)
            .unwrap();
            assert_eq!(
                baseline.fingerprint(),
                parallel.fingerprint(),
                "{threads:?}"
            );
        }
    }

    #[test]
    fn metrics_and_weightings_change_the_graph() {
        let x = blob_features(50, 1.0, 7);
        let base = KnnBuilder::default().build(&x).unwrap();
        let cosine = KnnBuilder {
            metric: Metric::Cosine,
            ..KnnBuilder::default()
        }
        .build(&x)
        .unwrap();
        assert_ne!(base.fingerprint(), cosine.fingerprint());
        let heat = KnnBuilder {
            weighting: Weighting::HeatKernel,
            ..KnnBuilder::default()
        }
        .build(&x)
        .unwrap();
        assert_ne!(base.fingerprint(), heat.fingerprint());
        // Heat-kernel weights are in (0, 1]; an explicit sigma changes them.
        assert!(heat.edges().all(|(_, _, w)| w > 0.0 && w <= 1.0));
        let heat_sigma = KnnBuilder {
            weighting: Weighting::HeatKernel,
            sigma: Some(0.25),
            ..KnnBuilder::default()
        }
        .build(&x)
        .unwrap();
        assert_ne!(heat.fingerprint(), heat_sigma.fingerprint());
    }

    #[test]
    fn symmetrization_policies_nest() {
        let x = blob_features(70, 1.5, 11);
        let edges_of = |sym: Symmetrize| {
            KnnBuilder {
                symmetrize: sym,
                k: 5,
                ..KnnBuilder::default()
            }
            .build(&x)
            .unwrap()
        };
        let union = edges_of(Symmetrize::Union);
        let inter = edges_of(Symmetrize::Intersection);
        let mutual = edges_of(Symmetrize::Mutual);
        // Intersection and mutual keep a subset of the union's edges.
        assert!(inter.num_edges() <= union.num_edges());
        assert!(inter.num_edges() < union.num_edges() || union.num_edges() == 0);
        for (u, v, _) in inter.edges() {
            assert!(union.has_edge(u, v));
        }
        // For distance-symmetric kNN weights, intersection == mutual.
        assert_eq!(inter.fingerprint(), mutual.fingerprint());
        // The sparse-regularized weights are asymmetric, so the policies differ.
        let sr = |sym: Symmetrize| {
            SparseRegBuilder {
                symmetrize: sym,
                ..SparseRegBuilder::default()
            }
            .build(&x)
            .unwrap()
        };
        assert_ne!(
            sr(Symmetrize::Intersection).fingerprint(),
            sr(Symmetrize::Mutual).fingerprint()
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let tiny = DenseMatrix::zeros(1, 3);
        assert!(KnnBuilder::default().build(&tiny).is_err());
        let mut nan = DenseMatrix::zeros(4, 2);
        nan.set(2, 1, f64::NAN);
        assert!(KnnBuilder::default().build(&nan).is_err());
        assert!(SparseRegBuilder::default().build(&nan).is_err());
        let x = blob_features(20, 1.0, 1);
        assert!(KnnBuilder {
            k: 0,
            ..KnnBuilder::default()
        }
        .build(&x)
        .is_err());
        assert!(KnnBuilder {
            sigma: Some(-1.0),
            ..KnnBuilder::default()
        }
        .build(&x)
        .is_err());
        assert!(SparseRegBuilder {
            alpha: f64::NAN,
            ..SparseRegBuilder::default()
        }
        .build(&x)
        .is_err());
        assert!(SparseRegBuilder {
            iterations: 0,
            ..SparseRegBuilder::default()
        }
        .build(&x)
        .is_err());
        let skewed = |spread_skew| BlobConfig {
            spread_skew,
            ..BlobConfig::default()
        };
        assert!(synthesize_blobs(&skewed(0.0)).is_err());
        assert!(synthesize_blobs(&skewed(-2.0)).is_err());
        assert!(synthesize_blobs(&skewed(f64::NAN)).is_err());
    }

    #[test]
    fn features_fingerprint_is_content_addressed() {
        let a = blob_features(40, 1.0, 1);
        let b = blob_features(40, 1.0, 1);
        assert_eq!(features_fingerprint(&a), features_fingerprint(&b));
        // A single flipped bit changes the key.
        let mut c = a.clone();
        c.set(3, 1, f64::from_bits(c.get(3, 1).to_bits() ^ 1));
        assert_ne!(features_fingerprint(&a), features_fingerprint(&c));
        // Shape is part of the key even when the flattened data agrees.
        let flat = DenseMatrix::from_vec(2, 6, vec![0.0; 12]).unwrap();
        let tall = DenseMatrix::from_vec(6, 2, vec![0.0; 12]).unwrap();
        assert_ne!(features_fingerprint(&flat), features_fingerprint(&tall));
    }

    #[test]
    fn registry_round_trips_every_builder_name() {
        for spec in construction_registry() {
            let built = (spec.build)(&ConstructionOptions::default());
            let name = built.name();
            let rebuilt = construction_by_name(&name)
                .unwrap_or_else(|e| panic!("name '{name}' failed to parse: {e}"));
            assert_eq!(rebuilt.name(), name, "round trip changed the builder");
        }
        assert_eq!(construction_names(), vec!["knn", "sparsereg"]);
        assert_eq!(canonical_construction_name("Knn"), Some("knn"));
        assert_eq!(canonical_construction_name("sparse-reg"), Some("sparsereg"));
        assert_eq!(canonical_construction_name("l1"), Some("sparsereg"));
        assert_eq!(canonical_construction_name("nope"), None);
    }

    #[test]
    fn parameterized_specs_apply_overrides() {
        let b = construction_by_name("Knn(k=7,metric=cosine,weighting=heat,sym=mutual)").unwrap();
        assert_eq!(b.name(), "Knn(k=7,metric=cosine,weighting=heat,sym=mutual)");
        let b = construction_by_name("knn(sigma=0.5,weighting=heat)").unwrap();
        assert_eq!(
            b.name(),
            "Knn(k=10,metric=euclidean,weighting=heat,sigma=0.5,sym=union)"
        );
        let b = construction_by_name("SparseReg(k=6,alpha=0.05,iters=20)").unwrap();
        assert_eq!(b.name(), "SparseReg(k=6,alpha=0.05,iters=20,sym=union)");
        // Defaults fill unspecified keys; spec keys win.
        let defaults = ConstructionOptions {
            k: Some(4),
            symmetrize: Some(Symmetrize::Mutual),
            ..ConstructionOptions::default()
        };
        let b = construction_by_name_with("knn(k=9)", &defaults).unwrap();
        assert_eq!(
            b.name(),
            "Knn(k=9,metric=euclidean,weighting=binary,sym=mutual)"
        );
    }

    #[test]
    fn malformed_specs_are_rejected_with_messages() {
        let err_of = |spec: &str| construction_by_name(spec).map(|_| ()).unwrap_err();
        assert!(err_of("nope").contains("unknown construction method"));
        assert!(err_of("knn(k=10").contains("unterminated"));
        assert!(err_of("knn(k)").contains("key=value"));
        assert!(err_of("knn(k=lots)").contains("invalid"));
        assert!(err_of("knn(frobs=1)").contains("unknown construction parameter"));
        assert!(err_of("knn(metric=manhattan)").contains("unknown metric"));
        assert!(err_of("knn(weighting=wishful)").contains("unknown weighting"));
        assert!(err_of("knn(sym=sideways)").contains("unknown symmetrization"));
    }

    #[test]
    fn blobs_are_deterministic_and_separable() {
        let config = BlobConfig {
            nodes: 90,
            classes: 3,
            dims: 4,
            spread: 0.5,
            spread_skew: 1.0,
            seed: 9,
        };
        let (xa, la) = synthesize_blobs(&config).unwrap();
        let (xb, lb) = synthesize_blobs(&config).unwrap();
        assert_eq!(xa.data(), xb.data());
        assert_eq!(la.as_slice(), lb.as_slice());
        assert_eq!(xa.shape(), (90, 4));
        assert_eq!(la.k(), 3);
        // With tight blobs, most kNN edges connect same-class nodes.
        let g = KnnBuilder {
            k: 5,
            ..KnnBuilder::default()
        }
        .build(&xa)
        .unwrap();
        let same = g
            .edges()
            .filter(|&(u, v, _)| la.as_slice()[u] == la.as_slice()[v])
            .count();
        assert!(same * 10 >= g.num_edges() * 9, "{same}/{}", g.num_edges());
        // Invalid configs error.
        assert!(synthesize_blobs(&BlobConfig {
            classes: 0,
            ..config.clone()
        })
        .is_err());
        assert!(synthesize_blobs(&BlobConfig {
            spread: -1.0,
            ..config.clone()
        })
        .is_err());
        assert!(synthesize_blobs(&BlobConfig { dims: 0, ..config }).is_err());
    }
}
