//! Plain-text graph and label IO.
//!
//! A minimal, dependency-free interchange format so users can run the estimators on
//! their own graphs:
//!
//! * **Edge list** — one undirected edge per line, `u<TAB>v` or `u<TAB>v<TAB>weight`,
//!   with `#`-prefixed comment lines (the SNAP convention used by Pokec et al.).
//! * **Label file** — one `node<TAB>class` pair per line; nodes missing from the file
//!   are unlabeled.

use fg_graph::{Graph, GraphError, Labeling, Result, SeedLabels};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Build a [`GraphError::Parse`] for the given zero-based line index.
fn parse_err(line_no: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line: line_no + 1,
        message: message.into(),
    }
}

/// Parse an edge list from a string. Node ids must be zero-based integers smaller than
/// `n`. Lines that are empty or start with `#` are ignored. Malformed lines are
/// reported as [`GraphError::Parse`] with their 1-based line number.
pub fn parse_edge_list(n: usize, content: &str) -> Result<Graph> {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for (line_no, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_node(parts.next(), line_no)?;
        let v = parse_node(parts.next(), line_no)?;
        let w = match parts.next() {
            Some(tok) => tok
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, format!("invalid edge weight '{tok}'")))?,
            None => 1.0,
        };
        edges.push((u, v, w));
    }
    Graph::from_weighted_edges(n, &edges)
}

fn parse_node(token: Option<&str>, line_no: usize) -> Result<usize> {
    let tok = token.ok_or_else(|| parse_err(line_no, "missing node id"))?;
    tok.parse::<usize>()
        .map_err(|_| parse_err(line_no, format!("invalid node id '{tok}'")))
}

/// Serialize a graph as an edge list (each undirected edge once, `u<TAB>v<TAB>weight`).
pub fn format_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("# undirected edge list: u\tv\tweight\n");
    for (u, v, w) in graph.edges() {
        out.push_str(&format!("{u}\t{v}\t{w}\n"));
    }
    out
}

/// Parse a label file into a seed set over `n` nodes with `k` classes. Malformed or
/// out-of-range lines are reported as [`GraphError::Parse`] with their 1-based line
/// number.
pub fn parse_labels(n: usize, k: usize, content: &str) -> Result<SeedLabels> {
    let mut observed = vec![None; n];
    for (line_no, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let node = parse_node(parts.next(), line_no)?;
        let class = parse_node(parts.next(), line_no)?;
        if node >= n {
            return Err(parse_err(
                line_no,
                format!("node {node} out of bounds for graph with {n} nodes"),
            ));
        }
        if class >= k {
            return Err(parse_err(
                line_no,
                format!("class {class} out of range for k = {k}"),
            ));
        }
        observed[node] = Some(class);
    }
    SeedLabels::new(observed, k)
}

/// Serialize a full labeling as a label file.
pub fn format_labels(labeling: &Labeling) -> String {
    let mut out = String::new();
    out.push_str("# node\tclass\n");
    for (i, &c) in labeling.as_slice().iter().enumerate() {
        out.push_str(&format!("{i}\t{c}\n"));
    }
    out
}

/// Read a graph from an edge-list file.
pub fn read_edge_list(path: &Path, n: usize) -> Result<Graph> {
    let content = fs::read_to_string(path)
        .map_err(|e| GraphError::Io(format!("cannot read {path:?}: {e}")))?;
    parse_edge_list(n, &content)
}

/// Write a graph to an edge-list file.
pub fn write_edge_list(path: &Path, graph: &Graph) -> Result<()> {
    let mut file = fs::File::create(path)
        .map_err(|e| GraphError::Io(format!("cannot create {path:?}: {e}")))?;
    file.write_all(format_edge_list(graph).as_bytes())
        .map_err(|e| GraphError::Io(format!("cannot write {path:?}: {e}")))
}

/// Read a seed-label file.
pub fn read_labels(path: &Path, n: usize, k: usize) -> Result<SeedLabels> {
    let content = fs::read_to_string(path)
        .map_err(|e| GraphError::Io(format!("cannot read {path:?}: {e}")))?;
    parse_labels(n, k, &content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let text = format_edge_list(&graph);
        let parsed = parse_edge_list(4, &text).unwrap();
        assert_eq!(parsed.num_edges(), 3);
        assert!(parsed.has_edge(1, 2));
    }

    #[test]
    fn edge_list_with_weights_and_comments() {
        let text = "# comment\n0\t1\t2.5\n\n1 2 0.5\n";
        let g = parse_edge_list(3, text).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 2.5);
        assert_eq!(g.adjacency().get(2, 1), 0.5);
    }

    #[test]
    fn malformed_edge_lines_rejected() {
        assert!(parse_edge_list(3, "0\n").is_err());
        assert!(parse_edge_list(3, "0\tx\n").is_err());
        assert!(parse_edge_list(3, "0\t1\tabc\n").is_err());
        assert!(parse_edge_list(2, "0\t5\n").is_err());
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        // The comment and blank lines still count toward the reported line number.
        let err = parse_edge_list(3, "# header\n0\t1\n\n0\tx\n").unwrap_err();
        assert_eq!(
            err,
            GraphError::Parse {
                line: 4,
                message: "invalid node id 'x'".into()
            }
        );
        let err = parse_edge_list(3, "0\t1\t2.5\n1\t2\theavy\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_labels(5, 2, "0\t1\n3\t9\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_labels(2, 2, "5\t0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn label_roundtrip() {
        let labeling = Labeling::new(vec![0, 2, 1, 0], 3).unwrap();
        let text = format_labels(&labeling);
        let seeds = parse_labels(4, 3, &text).unwrap();
        assert_eq!(seeds.num_labeled(), 4);
        assert_eq!(seeds.get(1), Some(2));
    }

    #[test]
    fn partial_labels_parse() {
        let seeds = parse_labels(5, 2, "0\t1\n3\t0\n").unwrap();
        assert_eq!(seeds.num_labeled(), 2);
        assert_eq!(seeds.get(4), None);
    }

    #[test]
    fn label_validation() {
        assert!(parse_labels(2, 2, "5\t0\n").is_err());
        assert!(parse_labels(2, 2, "0\t7\n").is_err());
        assert!(parse_labels(2, 2, "0\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fg_datasets_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.tsv");
        let graph = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        write_edge_list(&path, &graph).unwrap();
        let read = read_edge_list(&path, 3).unwrap();
        assert_eq!(read.num_edges(), 2);
        // Unreadable files surface as the dedicated Io variant.
        let missing = read_edge_list(Path::new("/nonexistent/file"), 3).unwrap_err();
        assert!(matches!(missing, GraphError::Io(_)), "{missing}");
        let missing = read_labels(Path::new("/nonexistent/file"), 3, 2).unwrap_err();
        assert!(matches!(missing, GraphError::Io(_)), "{missing}");
        fs::remove_dir_all(&dir).ok();
    }
}
