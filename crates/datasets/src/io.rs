//! Plain-text graph and label IO.
//!
//! A minimal, dependency-free interchange format so users can run the estimators on
//! their own graphs:
//!
//! * **Edge list** — one undirected edge per line, `u<TAB>v` or `u<TAB>v<TAB>weight`,
//!   with `#`-prefixed comment lines (the SNAP convention used by Pokec et al.).
//! * **Label file** — one `node<TAB>class` pair per line; nodes missing from the file
//!   are unlabeled.

use fg_graph::{Graph, GraphError, Labeling, Result, SeedLabels};
use fg_sparse::DenseMatrix;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Build a [`GraphError::Parse`] for the given zero-based line index.
fn parse_err(line_no: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line: line_no + 1,
        message: message.into(),
    }
}

/// Parse an edge list from a string. Node ids must be zero-based integers smaller than
/// `n`. Lines that are empty or start with `#` are ignored. Malformed lines are
/// reported as [`GraphError::Parse`] with their 1-based line number.
pub fn parse_edge_list(n: usize, content: &str) -> Result<Graph> {
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for (line_no, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_node(parts.next(), line_no)?;
        let v = parse_node(parts.next(), line_no)?;
        let w = match parts.next() {
            Some(tok) => tok
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, format!("invalid edge weight '{tok}'")))?,
            None => 1.0,
        };
        edges.push((u, v, w));
    }
    Graph::from_weighted_edges(n, &edges)
}

fn parse_node(token: Option<&str>, line_no: usize) -> Result<usize> {
    let tok = token.ok_or_else(|| parse_err(line_no, "missing node id"))?;
    tok.parse::<usize>()
        .map_err(|_| parse_err(line_no, format!("invalid node id '{tok}'")))
}

/// Serialize a graph as an edge list (each undirected edge once, `u<TAB>v<TAB>weight`).
pub fn format_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("# undirected edge list: u\tv\tweight\n");
    for (u, v, w) in graph.edges() {
        out.push_str(&format!("{u}\t{v}\t{w}\n"));
    }
    out
}

/// Parse a label file into a seed set over `n` nodes with `k` classes. Malformed or
/// out-of-range lines are reported as [`GraphError::Parse`] with their 1-based line
/// number.
pub fn parse_labels(n: usize, k: usize, content: &str) -> Result<SeedLabels> {
    let mut observed = vec![None; n];
    for (line_no, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let node = parse_node(parts.next(), line_no)?;
        let class = parse_node(parts.next(), line_no)?;
        if node >= n {
            return Err(parse_err(
                line_no,
                format!("node {node} out of bounds for graph with {n} nodes"),
            ));
        }
        if class >= k {
            return Err(parse_err(
                line_no,
                format!("class {class} out of range for k = {k}"),
            ));
        }
        observed[node] = Some(class);
    }
    SeedLabels::new(observed, k)
}

/// Serialize a full labeling as a label file.
pub fn format_labels(labeling: &Labeling) -> String {
    let mut out = String::new();
    out.push_str("# node\tclass\n");
    for (i, &c) in labeling.as_slice().iter().enumerate() {
        out.push_str(&format!("{i}\t{c}\n"));
    }
    out
}

/// Read a graph from an edge-list file.
pub fn read_edge_list(path: &Path, n: usize) -> Result<Graph> {
    let content = fs::read_to_string(path)
        .map_err(|e| GraphError::Io(format!("cannot read {path:?}: {e}")))?;
    parse_edge_list(n, &content)
}

/// Write a graph to an edge-list file.
pub fn write_edge_list(path: &Path, graph: &Graph) -> Result<()> {
    let mut file = fs::File::create(path)
        .map_err(|e| GraphError::Io(format!("cannot create {path:?}: {e}")))?;
    file.write_all(format_edge_list(graph).as_bytes())
        .map_err(|e| GraphError::Io(format!("cannot write {path:?}: {e}")))
}

/// Read a seed-label file.
pub fn read_labels(path: &Path, n: usize, k: usize) -> Result<SeedLabels> {
    let content = fs::read_to_string(path)
        .map_err(|e| GraphError::Io(format!("cannot read {path:?}: {e}")))?;
    parse_labels(n, k, &content)
}

/// A parsed feature file: one node per row, its feature vector followed by a class
/// label in the last column (`?` marks an unlabeled node).
#[derive(Debug, Clone)]
pub struct FeatureData {
    /// Dense `n x d` feature matrix (labels column excluded).
    pub features: DenseMatrix,
    /// Per-node observed class, `None` where the label column was `?`.
    pub labels: Vec<Option<usize>>,
    /// `1 + max(observed class)`, or 0 when every node is unlabeled.
    pub num_classes: usize,
}

impl FeatureData {
    /// The full ground-truth labeling, when **every** node is labeled.
    pub fn truth(&self) -> Option<Labeling> {
        let labels: Option<Vec<usize>> = self.labels.iter().copied().collect();
        Labeling::new(labels?, self.num_classes.max(1)).ok()
    }

    /// The observed labels as a seed set over `k` classes (defaults to the
    /// inferred [`FeatureData::num_classes`] when `k` is `None`).
    pub fn seed_labels(&self, k: Option<usize>) -> Result<SeedLabels> {
        SeedLabels::new(self.labels.clone(), k.unwrap_or(self.num_classes))
    }
}

/// Parse a dense feature matrix with a trailing labels column. Values are separated
/// by commas and/or whitespace (so both CSV and TSV work); lines that are empty or
/// start with `#` are ignored. Ragged rows, non-finite feature values, and malformed
/// labels are rejected as [`GraphError::Parse`] with their 1-based line number.
pub fn parse_features(content: &str) -> Result<FeatureData> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<Option<usize>> = Vec::new();
    let mut width = None;
    for (line_no, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|t| !t.is_empty())
            .collect();
        if tokens.len() < 2 {
            return Err(parse_err(
                line_no,
                "feature row needs at least one feature and a label column",
            ));
        }
        let expected = *width.get_or_insert(tokens.len());
        if tokens.len() != expected {
            return Err(parse_err(
                line_no,
                format!(
                    "ragged row: expected {expected} columns, got {}",
                    tokens.len()
                ),
            ));
        }
        let mut row = Vec::with_capacity(tokens.len() - 1);
        for tok in &tokens[..tokens.len() - 1] {
            let value = tok
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, format!("invalid feature value '{tok}'")))?;
            if !value.is_finite() {
                return Err(parse_err(
                    line_no,
                    format!("non-finite feature value '{tok}'"),
                ));
            }
            row.push(value);
        }
        let label_tok = tokens[tokens.len() - 1];
        labels.push(if label_tok == "?" {
            None
        } else {
            Some(
                label_tok.parse::<usize>().map_err(|_| {
                    parse_err(line_no, format!("invalid class label '{label_tok}'"))
                })?,
            )
        });
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(parse_err(0, "feature file contains no data rows"));
    }
    let num_classes = labels.iter().flatten().max().map_or(0, |&c| c + 1);
    Ok(FeatureData {
        features: DenseMatrix::from_rows(&rows)?,
        labels,
        num_classes,
    })
}

/// Serialize a feature matrix with its labels column (`?` for unlabeled nodes) in
/// the format [`parse_features`] reads.
pub fn format_features(features: &DenseMatrix, labels: &[Option<usize>]) -> String {
    let mut out = String::new();
    out.push_str("# features: f_1,...,f_d,label ('?' = unlabeled)\n");
    for i in 0..features.rows() {
        for v in features.row(i) {
            out.push_str(&format!("{v},"));
        }
        match labels.get(i).copied().flatten() {
            Some(c) => out.push_str(&format!("{c}\n")),
            None => out.push_str("?\n"),
        }
    }
    out
}

/// Read a feature file (see [`parse_features`] for the format).
pub fn read_features(path: &Path) -> Result<FeatureData> {
    let content = fs::read_to_string(path)
        .map_err(|e| GraphError::Io(format!("cannot read {path:?}: {e}")))?;
    parse_features(&content)
}

/// Write a feature matrix with its labels column to a file.
pub fn write_features(path: &Path, features: &DenseMatrix, labels: &[Option<usize>]) -> Result<()> {
    let mut file = fs::File::create(path)
        .map_err(|e| GraphError::Io(format!("cannot create {path:?}: {e}")))?;
    file.write_all(format_features(features, labels).as_bytes())
        .map_err(|e| GraphError::Io(format!("cannot write {path:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let text = format_edge_list(&graph);
        let parsed = parse_edge_list(4, &text).unwrap();
        assert_eq!(parsed.num_edges(), 3);
        assert!(parsed.has_edge(1, 2));
    }

    #[test]
    fn edge_list_with_weights_and_comments() {
        let text = "# comment\n0\t1\t2.5\n\n1 2 0.5\n";
        let g = parse_edge_list(3, text).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 2.5);
        assert_eq!(g.adjacency().get(2, 1), 0.5);
    }

    #[test]
    fn malformed_edge_lines_rejected() {
        assert!(parse_edge_list(3, "0\n").is_err());
        assert!(parse_edge_list(3, "0\tx\n").is_err());
        assert!(parse_edge_list(3, "0\t1\tabc\n").is_err());
        assert!(parse_edge_list(2, "0\t5\n").is_err());
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        // The comment and blank lines still count toward the reported line number.
        let err = parse_edge_list(3, "# header\n0\t1\n\n0\tx\n").unwrap_err();
        assert_eq!(
            err,
            GraphError::Parse {
                line: 4,
                message: "invalid node id 'x'".into()
            }
        );
        let err = parse_edge_list(3, "0\t1\t2.5\n1\t2\theavy\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_labels(5, 2, "0\t1\n3\t9\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_labels(2, 2, "5\t0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn label_roundtrip() {
        let labeling = Labeling::new(vec![0, 2, 1, 0], 3).unwrap();
        let text = format_labels(&labeling);
        let seeds = parse_labels(4, 3, &text).unwrap();
        assert_eq!(seeds.num_labeled(), 4);
        assert_eq!(seeds.get(1), Some(2));
    }

    #[test]
    fn partial_labels_parse() {
        let seeds = parse_labels(5, 2, "0\t1\n3\t0\n").unwrap();
        assert_eq!(seeds.num_labeled(), 2);
        assert_eq!(seeds.get(4), None);
    }

    #[test]
    fn label_validation() {
        assert!(parse_labels(2, 2, "5\t0\n").is_err());
        assert!(parse_labels(2, 2, "0\t7\n").is_err());
        assert!(parse_labels(2, 2, "0\n").is_err());
    }

    #[test]
    fn feature_file_roundtrip() {
        let text = "# header\n0.5, 1.0, 0\n-1.25\t2.5\t1\n0.0, 0.0, ?\n";
        let data = parse_features(text).unwrap();
        assert_eq!(data.features.shape(), (3, 2));
        assert_eq!(data.features.get(1, 0), -1.25);
        assert_eq!(data.labels, vec![Some(0), Some(1), None]);
        assert_eq!(data.num_classes, 2);
        assert!(data.truth().is_none());
        assert_eq!(data.seed_labels(None).unwrap().num_labeled(), 2);
        // Round trip through the formatter.
        let again = parse_features(&format_features(&data.features, &data.labels)).unwrap();
        assert_eq!(again.features.data(), data.features.data());
        assert_eq!(again.labels, data.labels);
        // Fully labeled data exposes a ground-truth labeling.
        let full = parse_features("1,0\n2,1\n3,0\n").unwrap();
        assert_eq!(full.truth().unwrap().as_slice(), &[0, 1, 0]);
    }

    #[test]
    fn feature_parse_errors_carry_the_line_number() {
        // Ragged row (comment still counts toward the line number).
        let err = parse_features("# header\n1,2,0\n1,2,3,0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("ragged"), "{err}");
        // NaN / non-finite feature values.
        let err = parse_features("1,2,0\n1,NaN,1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");
        let err = parse_features("1,inf,0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
        // Garbage feature values, bad labels, missing columns, empty files.
        let err = parse_features("1,x,0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
        let err = parse_features("1,2,maybe\n").unwrap_err();
        assert!(err.to_string().contains("invalid class label"), "{err}");
        assert!(parse_features("7\n").is_err());
        assert!(parse_features("# only comments\n").is_err());
    }

    #[test]
    fn feature_file_io() {
        let dir = std::env::temp_dir().join("fg_datasets_feature_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("features.csv");
        let features = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        write_features(&path, &features, &[Some(1), None]).unwrap();
        let read = read_features(&path).unwrap();
        assert_eq!(read.features.data(), features.data());
        assert_eq!(read.labels, vec![Some(1), None]);
        let missing = read_features(Path::new("/nonexistent/file")).unwrap_err();
        assert!(matches!(missing, GraphError::Io(_)), "{missing}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fg_datasets_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.tsv");
        let graph = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        write_edge_list(&path, &graph).unwrap();
        let read = read_edge_list(&path, 3).unwrap();
        assert_eq!(read.num_edges(), 2);
        // Unreadable files surface as the dedicated Io variant.
        let missing = read_edge_list(Path::new("/nonexistent/file"), 3).unwrap_err();
        assert!(matches!(missing, GraphError::Io(_)), "{missing}");
        let missing = read_labels(Path::new("/nonexistent/file"), 3, 2).unwrap_err();
        assert!(matches!(missing, GraphError::Io(_)), "{missing}");
        fs::remove_dir_all(&dir).ok();
    }
}
