//! Substitute-graph synthesis for the real-world datasets.
//!
//! We cannot ship the original Cora / Pokec / Flickr graphs, so every dataset is
//! reproduced as a planted graph with the published size, class imbalance, power-law
//! degree profile, and gold-standard compatibility matrix (see [`crate::specs`]). A
//! `scale` factor shrinks the node and edge counts proportionally so the full
//! experiment suite stays laptop-sized; `scale = 1.0` reproduces the published sizes.

use crate::specs::{spec, DatasetId, DatasetSpec};
use fg_graph::{
    generate, measure_compatibilities, DegreeDistribution, GeneratorConfig, Graph, Labeling, Result,
};
use fg_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthesized substitute for one of the paper's real-world datasets.
#[derive(Debug, Clone)]
pub struct DatasetInstance {
    /// The specification the instance was generated from.
    pub spec: DatasetSpec,
    /// The scale factor applied to `n` and `m`.
    pub scale: f64,
    /// The generated graph.
    pub graph: Graph,
    /// Ground-truth labels for every node.
    pub labeling: Labeling,
}

impl DatasetInstance {
    /// The gold-standard compatibility matrix *measured* on the generated graph (this is
    /// what the GS baseline uses, exactly as the paper measures it on the real graph).
    pub fn measured_gold_standard(&self) -> Result<DenseMatrix> {
        measure_compatibilities(&self.graph, &self.labeling)
    }
}

/// Synthesize a substitute instance of a dataset at the given scale.
///
/// * `scale` — fraction of the published node/edge counts to generate (clamped so at
///   least a few hundred nodes exist).
/// * `seed` — RNG seed; fixed seeds give identical graphs.
pub fn synthesize(id: DatasetId, scale: f64, seed: u64) -> Result<DatasetInstance> {
    let spec = spec(id);
    let scale = scale.clamp(1e-4, 1.0);
    let n = ((spec.n as f64 * scale).round() as usize).max(200);
    // Keep the average degree of the original dataset rather than scaling edges
    // quadratically: the estimators' behaviour depends on d and f, not on raw n.
    let m = ((n as f64 * spec.average_degree()) / 2.0).round() as usize;
    let max_edges = n * (n - 1) / 2;
    let config = GeneratorConfig {
        n,
        m: m.min(max_edges),
        alpha: spec.alpha.clone(),
        h: spec.gold_h.clone(),
        distribution: DegreeDistribution::paper_power_law(),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let synthetic = generate(&config, &mut rng)?;
    Ok(DatasetInstance {
        spec,
        scale,
        graph: synthetic.graph,
        labeling: synthetic.labeling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_cora_matches_spec_shape() {
        let inst = synthesize(DatasetId::Cora, 0.5, 7).unwrap();
        assert_eq!(inst.labeling.k(), 7);
        assert!(inst.graph.num_nodes() >= 1300 && inst.graph.num_nodes() <= 1400);
        // Average degree close to the published 2m/n ≈ 4.
        let d = inst.graph.average_degree();
        assert!(d > 2.0 && d < 6.0, "degree {d}");
    }

    #[test]
    fn measured_gold_standard_resembles_published_matrix() {
        let inst = synthesize(DatasetId::MovieLens, 0.05, 3).unwrap();
        let measured = inst.measured_gold_standard().unwrap();
        let published = inst.spec.gold_h.as_dense();
        // The dominant structure survives generation: class 2 (tags) never links to
        // itself, classes link across types.
        assert!(measured.get(2, 2) < 0.15);
        assert!(measured.get(0, 1) > measured.get(0, 0));
        // And the overall distance is moderate.
        let dist = published.frobenius_distance(&measured).unwrap();
        assert!(dist < 0.6, "distance {dist}");
    }

    #[test]
    fn scale_is_clamped() {
        let inst = synthesize(DatasetId::Citeseer, 0.0, 1).unwrap();
        assert!(inst.graph.num_nodes() >= 200);
        let inst2 = synthesize(DatasetId::Citeseer, 5.0, 1).unwrap();
        assert!(inst2.graph.num_nodes() <= 3312);
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let a = synthesize(DatasetId::Enron, 0.02, 11).unwrap();
        let b = synthesize(DatasetId::Enron, 0.02, 11).unwrap();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.labeling.as_slice(), b.labeling.as_slice());
        let c = synthesize(DatasetId::Enron, 0.02, 12).unwrap();
        assert_ne!(a.labeling.as_slice(), c.labeling.as_slice());
    }

    #[test]
    fn class_imbalance_is_preserved() {
        let inst = synthesize(DatasetId::Flickr, 0.002, 5).unwrap();
        let dist = inst.labeling.class_distribution();
        // Published alpha ~ [0.30, 0.55, 0.15]: ordering must be preserved.
        assert!(dist[1] > dist[0]);
        assert!(dist[0] > dist[2]);
    }
}
