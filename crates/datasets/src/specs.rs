//! Specifications of the paper's 8 real-world datasets (Section 5.3, Fig. 8 / Fig. 13).
//!
//! We do not redistribute the original graphs. Instead, each dataset is described by its
//! *published* statistics — node count, edge count, number of classes, class imbalance,
//! and the full gold-standard compatibility matrix printed in Fig. 13 of the paper — and
//! the substitute generator in [`crate::synthesize()`] plants exactly those properties.
//! This preserves everything the estimators can observe about a graph: `(W, X)` with the
//! same size, degree profile, class priors, and compatibility structure.

use fg_graph::{CompatibilityMatrix, GraphError, Result};

/// Identifier for one of the paper's eight real-world datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Cora citation graph, 7 ML paper categories (homophilous).
    Cora,
    /// Citeseer citation graph, 6 CS categories (homophilous).
    Citeseer,
    /// Hep-Th citation graph, 11 publication-year classes (band-structured).
    HepTh,
    /// MovieLens tagging graph: users / movies / tags (heterophilous, tripartite-ish).
    MovieLens,
    /// Enron communication graph: person / email / message / topic (heterophilous).
    Enron,
    /// Prop-37 Twitter graph: users / tweets / words (heterophilous).
    Prop37,
    /// Pokec social network with gender labels (mildly heterophilous, 2 classes).
    PokecGender,
    /// Flickr graph: users / pictures / groups (heterophilous).
    Flickr,
}

impl DatasetId {
    /// All eight datasets in the paper's order (Fig. 8).
    pub fn all() -> [DatasetId; 8] {
        [
            DatasetId::Cora,
            DatasetId::Citeseer,
            DatasetId::HepTh,
            DatasetId::MovieLens,
            DatasetId::Enron,
            DatasetId::Prop37,
            DatasetId::PokecGender,
            DatasetId::Flickr,
        ]
    }

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Cora => "Cora",
            DatasetId::Citeseer => "Citeseer",
            DatasetId::HepTh => "Hep-Th",
            DatasetId::MovieLens => "MovieLens",
            DatasetId::Enron => "Enron",
            DatasetId::Prop37 => "Prop-37",
            DatasetId::PokecGender => "Pokec-Gender",
            DatasetId::Flickr => "Flickr",
        }
    }

    /// Parse a (case-insensitive) dataset name.
    pub fn parse(name: &str) -> Option<DatasetId> {
        let lower = name.to_ascii_lowercase();
        DatasetId::all()
            .into_iter()
            .find(|d| d.name().to_ascii_lowercase() == lower)
    }
}

/// The published statistics of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which dataset this describes.
    pub id: DatasetId,
    /// Number of nodes (Fig. 8).
    pub n: usize,
    /// Number of undirected edges (Fig. 8).
    pub m: usize,
    /// Number of classes (Fig. 8).
    pub k: usize,
    /// Class distribution `α` (approximate; renormalized to sum to 1).
    pub alpha: Vec<f64>,
    /// Gold-standard compatibility matrix (Fig. 13), symmetrized and projected to the
    /// doubly-stochastic polytope.
    pub gold_h: CompatibilityMatrix,
}

impl DatasetSpec {
    /// Average degree `2m / n`.
    pub fn average_degree(&self) -> f64 {
        2.0 * self.m as f64 / self.n as f64
    }
}

/// Project a (possibly non-stochastic) symmetric non-negative matrix onto the
/// doubly-stochastic polytope with Sinkhorn–Knopp scaling, then validate it.
///
/// The matrices printed in Fig. 13 of the paper are row-normalized neighbor statistics
/// rounded to two decimals; they are neither exactly symmetric nor exactly stochastic,
/// so a light projection is required before they can be planted.
fn project_to_compatibility(rows: &[Vec<f64>]) -> Result<CompatibilityMatrix> {
    let k = rows.len();
    let mut m = vec![vec![0.0f64; k]; k];
    // Symmetrize and clamp a small floor so Sinkhorn converges even with zero entries.
    for i in 0..k {
        for j in 0..k {
            let v = (rows[i][j] + rows[j][i]) / 2.0;
            m[i][j] = v.max(1e-3);
        }
    }
    for _ in 0..2000 {
        // Row scaling.
        for row in m.iter_mut() {
            let s: f64 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= s;
            }
        }
        // Column scaling.
        for j in 0..k {
            let s: f64 = (0..k).map(|i| m[i][j]).sum();
            for row in m.iter_mut() {
                row[j] /= s;
            }
        }
    }
    // Final symmetrization to remove residual asymmetry.
    let mut sym = vec![vec![0.0f64; k]; k];
    for i in 0..k {
        for j in 0..k {
            sym[i][j] = (m[i][j] + m[j][i]) / 2.0;
        }
    }
    // Renormalize rows one last time; after symmetrization the matrix is already very
    // close to doubly stochastic.
    CompatibilityMatrix::from_rows(&sym).map_err(|e| match e {
        GraphError::InvalidCompatibility(msg) => GraphError::InvalidCompatibility(format!(
            "projection of published matrix failed: {msg}"
        )),
        other => other,
    })
}

/// The published specification of a dataset.
pub fn spec(id: DatasetId) -> DatasetSpec {
    match id {
        DatasetId::Cora => DatasetSpec {
            id,
            n: 2708,
            m: 5429,
            k: 7,
            alpha: normalize(vec![0.30, 0.16, 0.15, 0.13, 0.10, 0.09, 0.07]),
            gold_h: project_to_compatibility(&[
                vec![0.81, 0.01, 0.04, 0.05, 0.06, 0.01, 0.02],
                vec![0.01, 0.79, 0.02, 0.02, 0.09, 0.01, 0.07],
                vec![0.04, 0.02, 0.81, 0.02, 0.03, 0.05, 0.04],
                vec![0.05, 0.02, 0.02, 0.84, 0.05, 0.00, 0.02],
                vec![0.06, 0.09, 0.03, 0.05, 0.70, 0.01, 0.06],
                vec![0.01, 0.01, 0.05, 0.00, 0.01, 0.90, 0.02],
                vec![0.02, 0.07, 0.04, 0.02, 0.06, 0.02, 0.78],
            ])
            .expect("Cora matrix projects"),
        },
        DatasetId::Citeseer => DatasetSpec {
            id,
            n: 3312,
            m: 4714,
            k: 6,
            alpha: normalize(vec![0.21, 0.20, 0.18, 0.16, 0.15, 0.10]),
            gold_h: project_to_compatibility(&[
                vec![0.77, 0.00, 0.01, 0.13, 0.05, 0.03],
                vec![0.00, 0.75, 0.06, 0.06, 0.03, 0.10],
                vec![0.01, 0.06, 0.77, 0.10, 0.03, 0.03],
                vec![0.13, 0.06, 0.10, 0.48, 0.06, 0.17],
                vec![0.05, 0.03, 0.03, 0.06, 0.81, 0.02],
                vec![0.03, 0.10, 0.03, 0.17, 0.02, 0.64],
            ])
            .expect("Citeseer matrix projects"),
        },
        DatasetId::HepTh => DatasetSpec {
            id,
            n: 27_770,
            m: 352_807,
            k: 11,
            alpha: normalize(vec![
                0.04, 0.06, 0.08, 0.09, 0.10, 0.11, 0.11, 0.11, 0.10, 0.10, 0.10,
            ]),
            gold_h: project_to_compatibility(&[
                vec![
                    0.10, 0.11, 0.14, 0.11, 0.11, 0.08, 0.08, 0.08, 0.04, 0.08, 0.08,
                ],
                vec![
                    0.11, 0.09, 0.12, 0.12, 0.10, 0.08, 0.09, 0.09, 0.05, 0.06, 0.09,
                ],
                vec![
                    0.14, 0.12, 0.11, 0.13, 0.11, 0.10, 0.09, 0.06, 0.03, 0.03, 0.06,
                ],
                vec![
                    0.11, 0.12, 0.13, 0.15, 0.12, 0.10, 0.08, 0.06, 0.03, 0.04, 0.06,
                ],
                vec![
                    0.11, 0.10, 0.11, 0.12, 0.17, 0.13, 0.08, 0.07, 0.03, 0.02, 0.05,
                ],
                vec![
                    0.08, 0.08, 0.10, 0.10, 0.13, 0.18, 0.12, 0.08, 0.04, 0.03, 0.06,
                ],
                vec![
                    0.08, 0.09, 0.09, 0.08, 0.08, 0.12, 0.17, 0.13, 0.07, 0.03, 0.06,
                ],
                vec![
                    0.08, 0.09, 0.06, 0.06, 0.07, 0.08, 0.13, 0.16, 0.14, 0.08, 0.07,
                ],
                vec![
                    0.04, 0.05, 0.03, 0.03, 0.03, 0.04, 0.07, 0.14, 0.28, 0.17, 0.11,
                ],
                vec![
                    0.08, 0.06, 0.03, 0.04, 0.02, 0.03, 0.03, 0.08, 0.17, 0.26, 0.20,
                ],
                vec![
                    0.08, 0.09, 0.06, 0.06, 0.05, 0.06, 0.06, 0.07, 0.11, 0.20, 0.16,
                ],
            ])
            .expect("Hep-Th matrix projects"),
        },
        DatasetId::MovieLens => DatasetSpec {
            id,
            n: 26_850,
            m: 336_742,
            k: 3,
            alpha: normalize(vec![0.15, 0.35, 0.50]),
            gold_h: project_to_compatibility(&[
                vec![0.08, 0.45, 0.47],
                vec![0.45, 0.02, 0.53],
                vec![0.47, 0.53, 0.00],
            ])
            .expect("MovieLens matrix projects"),
        },
        DatasetId::Enron => DatasetSpec {
            id,
            n: 46_463,
            m: 613_838,
            k: 4,
            alpha: normalize(vec![0.25, 0.30, 0.30, 0.15]),
            gold_h: project_to_compatibility(&[
                vec![0.62, 0.24, 0.00, 0.14],
                vec![0.24, 0.06, 0.55, 0.16],
                vec![0.00, 0.55, 0.00, 0.45],
                vec![0.14, 0.16, 0.45, 0.25],
            ])
            .expect("Enron matrix projects"),
        },
        DatasetId::Prop37 => DatasetSpec {
            id,
            n: 62_383,
            m: 2_167_809,
            k: 3,
            alpha: normalize(vec![0.30, 0.40, 0.30]),
            gold_h: project_to_compatibility(&[
                vec![0.35, 0.26, 0.38],
                vec![0.26, 0.12, 0.61],
                vec![0.38, 0.61, 0.00],
            ])
            .expect("Prop-37 matrix projects"),
        },
        DatasetId::PokecGender => DatasetSpec {
            id,
            n: 1_632_803,
            m: 30_622_564,
            k: 2,
            alpha: normalize(vec![0.51, 0.49]),
            gold_h: project_to_compatibility(&[vec![0.44, 0.56], vec![0.56, 0.44]])
                .expect("Pokec matrix projects"),
        },
        DatasetId::Flickr => DatasetSpec {
            id,
            n: 2_007_369,
            m: 18_147_504,
            k: 3,
            alpha: normalize(vec![0.30, 0.55, 0.15]),
            gold_h: project_to_compatibility(&[
                vec![0.17, 0.32, 0.51],
                vec![0.32, 0.19, 0.49],
                vec![0.51, 0.49, 0.00],
            ])
            .expect("Flickr matrix projects"),
        },
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let total: f64 = v.iter().sum();
    for x in v.iter_mut() {
        *x /= total;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_consistent() {
        for id in DatasetId::all() {
            let s = spec(id);
            assert_eq!(s.k, s.gold_h.k(), "{:?}: k mismatch", id);
            assert_eq!(s.alpha.len(), s.k, "{:?}: alpha length", id);
            assert!((s.alpha.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(s.n > 0 && s.m > 0);
            assert!(s.average_degree() > 1.0);
            // The projected gold matrix is a valid compatibility matrix by construction
            // (CompatibilityMatrix::new validates).
            assert!(s.gold_h.as_dense().is_doubly_stochastic(1e-5));
        }
    }

    #[test]
    fn paper_statistics_match_fig8() {
        assert_eq!(spec(DatasetId::Cora).n, 2708);
        assert_eq!(spec(DatasetId::Citeseer).k, 6);
        assert_eq!(spec(DatasetId::HepTh).k, 11);
        assert_eq!(spec(DatasetId::PokecGender).k, 2);
        assert_eq!(spec(DatasetId::Flickr).n, 2_007_369);
        assert_eq!(spec(DatasetId::Prop37).m, 2_167_809);
    }

    #[test]
    fn homophily_structure_of_citation_graphs() {
        // Cora and Citeseer are homophilous; MovieLens / Prop-37 / Flickr are not.
        assert!(spec(DatasetId::Cora).gold_h.is_homophilous());
        assert!(spec(DatasetId::Citeseer).gold_h.is_homophilous());
        assert!(!spec(DatasetId::MovieLens).gold_h.is_homophilous());
        assert!(!spec(DatasetId::Flickr).gold_h.is_homophilous());
        assert!(!spec(DatasetId::PokecGender).gold_h.is_homophilous());
    }

    #[test]
    fn projection_preserves_dominant_structure() {
        // The largest entry of each row of the published MovieLens matrix stays largest
        // after projection.
        let s = spec(DatasetId::MovieLens);
        let h = s.gold_h.as_dense();
        assert!(h.get(0, 2) > h.get(0, 0));
        assert!(h.get(1, 2) > h.get(1, 1));
        assert!(h.get(2, 0) > h.get(2, 2));
    }

    #[test]
    fn name_roundtrip() {
        for id in DatasetId::all() {
            assert_eq!(DatasetId::parse(id.name()), Some(id));
            assert_eq!(DatasetId::parse(&id.name().to_uppercase()), Some(id));
        }
        assert_eq!(DatasetId::parse("not-a-dataset"), None);
    }
}
