//! # fg-datasets
//!
//! Real-world dataset substitutes and graph IO for the `factorized-graphs` workspace.
//!
//! The paper evaluates on eight real graphs (Cora, Citeseer, Hep-Th, MovieLens, Enron,
//! Prop-37, Pokec-Gender, Flickr). This crate encodes their *published* statistics —
//! sizes, class imbalance, and the gold-standard compatibility matrices printed in
//! Fig. 13 — and synthesizes substitute graphs with exactly those properties, so the
//! estimation experiments exercise the same code paths without redistributing the
//! original data. A simple edge-list / label-file IO layer is included for running the
//! estimators on user-provided graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod specs;
pub mod synthesize;

pub use io::{
    format_edge_list, format_labels, parse_edge_list, parse_labels, read_edge_list, read_labels,
    write_edge_list,
};
pub use specs::{spec, DatasetId, DatasetSpec};
pub use synthesize::{synthesize, DatasetInstance};
