//! # fg-datasets
//!
//! Real-world dataset substitutes and graph IO for the `factorized-graphs` workspace.
//!
//! The paper evaluates on eight real graphs (Cora, Citeseer, Hep-Th, MovieLens, Enron,
//! Prop-37, Pokec-Gender, Flickr). This crate encodes their *published* statistics —
//! sizes, class imbalance, and the gold-standard compatibility matrices printed in
//! Fig. 13 — and synthesizes substitute graphs with exactly those properties, so the
//! estimation experiments exercise the same code paths without redistributing the
//! original data. A simple edge-list / label-file IO layer is included for running the
//! estimators on user-provided graphs.
//!
//! The [`construct`] module opens a second front door: it builds graphs directly from
//! raw feature matrices (exact kNN and sparse-regularized reconstruction builders),
//! so any tabular or embedding dataset becomes a workload without a pre-existing
//! edge list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod construct;
pub mod io;
pub mod specs;
pub mod synthesize;

pub use construct::{
    canonical_construction_name, construction_by_name, construction_by_name_with,
    construction_names, construction_registry, features_fingerprint, synthesize_blobs, BlobConfig,
    ConstructionOptions, ConstructionSpec, GraphBuilder, KnnBuilder, Metric, SparseRegBuilder,
    Symmetrize, Weighting,
};
pub use io::{
    format_edge_list, format_features, format_labels, parse_edge_list, parse_features,
    parse_labels, read_edge_list, read_features, read_labels, write_edge_list, write_features,
    FeatureData,
};
pub use specs::{spec, DatasetId, DatasetSpec};
pub use synthesize::{synthesize, DatasetInstance};
