//! Property-based tests for graph construction, compatibility matrices, and the
//! synthetic generator.

use fg_graph::{
    generate, measure_compatibilities, CompatibilityMatrix, DegreeDistribution, GeneratorConfig,
    Graph, Labeling,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_from_edges_is_symmetric(edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60)) {
        let filtered: Vec<(usize, usize)> = edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = Graph::from_edges(20, &filtered).unwrap();
        prop_assert!(g.adjacency().is_symmetric(0.0));
        // Handshake lemma: sum of degrees equals 2m (unit weights, duplicates merged add weight).
        let total_weight: f64 = g.degrees().iter().sum();
        let stored: f64 = g.adjacency().values().iter().sum();
        prop_assert!((total_weight - stored).abs() < 1e-9);
    }

    #[test]
    fn h_skew_always_valid(k in 2usize..8, h in 1.0f64..20.0) {
        let m = CompatibilityMatrix::h_skew(k, h).unwrap();
        prop_assert!(m.as_dense().is_doubly_stochastic(1e-9));
        prop_assert!(m.as_dense().is_symmetric(1e-9));
        prop_assert_eq!(m.k(), k);
    }

    #[test]
    fn homophily_matrix_always_valid(k in 2usize..8, h in 1.1f64..20.0) {
        let m = CompatibilityMatrix::homophily(k, h).unwrap();
        prop_assert!(m.as_dense().is_doubly_stochastic(1e-9));
        prop_assert!(m.is_homophilous());
    }

    #[test]
    fn compatibility_powers_stay_doubly_stochastic(k in 2usize..6, h in 1.0f64..10.0, p in 1usize..6) {
        let m = CompatibilityMatrix::h_skew(k, h).unwrap();
        let mp = m.pow(p);
        prop_assert!(mp.is_doubly_stochastic(1e-8));
        prop_assert!(mp.is_symmetric(1e-8));
    }

    #[test]
    fn stratified_sampling_fraction(f in 0.05f64..1.0, seed in 0u64..1000) {
        let labels: Vec<usize> = (0..300).map(|i| i % 3).collect();
        let labeling = Labeling::new(labels, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = labeling.stratified_sample(f, &mut rng);
        let realized = seeds.label_fraction();
        prop_assert!((realized - f).abs() < 0.05 + 3.0 / 300.0);
        // Every seed label matches ground truth.
        for (i, o) in seeds.as_slice().iter().enumerate() {
            if let Some(c) = o {
                prop_assert_eq!(*c, labeling.class_of(i));
            }
        }
    }

    #[test]
    fn degree_distribution_weights_normalized(n in 1usize..500, exp in 0.0f64..2.0) {
        let w = DegreeDistribution::PowerLaw { exponent: exp }.relative_weights(n).unwrap();
        prop_assert_eq!(w.len(), n);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn generator_respects_node_and_class_counts(
        n in 60usize..300,
        k in 2usize..5,
        h in 2.0f64..8.0,
        seed in 0u64..100,
    ) {
        let cfg = GeneratorConfig::balanced(n, 6.0, k, h).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        prop_assert_eq!(syn.graph.num_nodes(), n);
        prop_assert_eq!(syn.labeling.n(), n);
        let counts = syn.labeling.class_counts();
        prop_assert_eq!(counts.len(), k);
        prop_assert!(counts.iter().all(|&c| c > 0));
        // No self loops by construction.
        prop_assert!(syn.graph.adjacency().diagonal().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn measured_gs_is_row_stochastic(seed in 0u64..50) {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let gs = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
        for s in gs.row_sums() {
            // A class with no incident edges would give a zero row; with d=8 that is
            // practically impossible, but allow it formally.
            prop_assert!(s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9);
        }
    }
}
