//! Property-style tests for graph construction, compatibility matrices, and the
//! synthetic generator.
//!
//! The build environment has no access to crates.io, so instead of `proptest` these
//! run each property over a deterministic sweep of seeded random inputs.

use fg_graph::{
    generate, measure_compatibilities, CompatibilityMatrix, DegreeDistribution, GeneratorConfig,
    Graph, Labeling,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn graph_from_edges_is_symmetric() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(usize, usize)> = (0..rng.gen_index(60))
            .map(|_| (rng.gen_index(20), rng.gen_index(20)))
            .collect();
        let filtered: Vec<(usize, usize)> = edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = Graph::from_edges(20, &filtered).unwrap();
        assert!(g.adjacency().is_symmetric(0.0), "seed {seed}");
        // Handshake lemma: sum of degrees equals 2m (unit weights, duplicates merged add weight).
        let total_weight: f64 = g.degrees().iter().sum();
        let stored: f64 = g.adjacency().values().iter().sum();
        assert!((total_weight - stored).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn h_skew_always_valid() {
    let mut rng = StdRng::seed_from_u64(0);
    for _ in 0..64 {
        let k = 2 + rng.gen_index(6);
        let h = 1.0 + rng.gen::<f64>() * 19.0;
        let m = CompatibilityMatrix::h_skew(k, h).unwrap();
        assert!(m.as_dense().is_doubly_stochastic(1e-9), "k {k} h {h}");
        assert!(m.as_dense().is_symmetric(1e-9), "k {k} h {h}");
        assert_eq!(m.k(), k);
    }
}

#[test]
fn homophily_matrix_always_valid() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..64 {
        let k = 2 + rng.gen_index(6);
        let h = 1.1 + rng.gen::<f64>() * 18.9;
        let m = CompatibilityMatrix::homophily(k, h).unwrap();
        assert!(m.as_dense().is_doubly_stochastic(1e-9), "k {k} h {h}");
        assert!(m.is_homophilous(), "k {k} h {h}");
    }
}

#[test]
fn compatibility_powers_stay_doubly_stochastic() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..64 {
        let k = 2 + rng.gen_index(4);
        let h = 1.0 + rng.gen::<f64>() * 9.0;
        let p = 1 + rng.gen_index(5);
        let m = CompatibilityMatrix::h_skew(k, h).unwrap();
        let mp = m.pow(p);
        assert!(mp.is_doubly_stochastic(1e-8), "k {k} h {h} p {p}");
        assert!(mp.is_symmetric(1e-8), "k {k} h {h} p {p}");
    }
}

#[test]
fn stratified_sampling_fraction() {
    let labels: Vec<usize> = (0..300).map(|i| i % 3).collect();
    let labeling = Labeling::new(labels, 3).unwrap();
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = 0.05 + rng.gen::<f64>() * 0.95;
        let seeds = labeling.stratified_sample(f, &mut rng);
        let realized = seeds.label_fraction();
        assert!(
            (realized - f).abs() < 0.05 + 3.0 / 300.0,
            "seed {seed} f {f}"
        );
        // Every seed label matches ground truth.
        for (i, o) in seeds.as_slice().iter().enumerate() {
            if let Some(c) = o {
                assert_eq!(*c, labeling.class_of(i), "seed {seed} node {i}");
            }
        }
    }
}

#[test]
fn degree_distribution_weights_normalized() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..64 {
        let n = 1 + rng.gen_index(499);
        let exp = rng.gen::<f64>() * 2.0;
        let w = DegreeDistribution::PowerLaw { exponent: exp }
            .relative_weights(n)
            .unwrap();
        assert_eq!(w.len(), n);
        assert!(
            (w.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "n {n} exp {exp}"
        );
        assert!(w.iter().all(|&x| x > 0.0), "n {n} exp {exp}");
    }
}

#[test]
fn generator_respects_node_and_class_counts() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 60 + rng.gen_index(240);
        let k = 2 + rng.gen_index(3);
        let h = 2.0 + rng.gen::<f64>() * 6.0;
        let cfg = GeneratorConfig::balanced(n, 6.0, k, h).unwrap();
        let syn = generate(&cfg, &mut rng).unwrap();
        assert_eq!(syn.graph.num_nodes(), n, "seed {seed}");
        assert_eq!(syn.labeling.n(), n, "seed {seed}");
        let counts = syn.labeling.class_counts();
        assert_eq!(counts.len(), k, "seed {seed}");
        assert!(counts.iter().all(|&c| c > 0), "seed {seed}");
        // No self loops by construction.
        assert!(
            syn.graph.adjacency().diagonal().iter().all(|&d| d == 0.0),
            "seed {seed}"
        );
    }
}

#[test]
fn measured_gs_is_row_stochastic() {
    for seed in 0..24u64 {
        let cfg = GeneratorConfig::balanced(200, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let gs = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
        for s in gs.row_sums() {
            // A class with no incident edges would give a zero row; with d=8 that is
            // practically impossible, but allow it formally.
            assert!(s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9, "seed {seed}");
        }
    }
}
