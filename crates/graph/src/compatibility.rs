//! Class-compatibility matrices.
//!
//! A compatibility matrix `H` is a symmetric, doubly-stochastic `k x k` matrix whose
//! entry `H_ce` gives the relative frequency with which a node of class `c` links to a
//! node of class `e` (Section 3.1 of the paper). Homophily corresponds to a dominant
//! diagonal, heterophily to dominant off-diagonal entries.

use crate::error::{GraphError, Result};
use fg_sparse::DenseMatrix;

/// Numerical tolerance used when validating symmetry / stochasticity.
pub const VALIDATION_TOL: f64 = 1e-6;

/// A validated symmetric, doubly-stochastic class-compatibility matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompatibilityMatrix {
    matrix: DenseMatrix,
}

impl CompatibilityMatrix {
    /// Wrap a dense matrix after validating that it is square, symmetric, non-negative,
    /// and doubly stochastic (within [`VALIDATION_TOL`]).
    pub fn new(matrix: DenseMatrix) -> Result<Self> {
        if !matrix.is_square() {
            return Err(GraphError::InvalidCompatibility(format!(
                "matrix must be square, got {}x{}",
                matrix.rows(),
                matrix.cols()
            )));
        }
        if matrix.rows() == 0 {
            return Err(GraphError::InvalidCompatibility("matrix is empty".into()));
        }
        if !matrix.is_symmetric(VALIDATION_TOL) {
            return Err(GraphError::InvalidCompatibility(
                "matrix must be symmetric".into(),
            ));
        }
        if matrix.data().iter().any(|&v| v < -VALIDATION_TOL) {
            return Err(GraphError::InvalidCompatibility(
                "matrix entries must be non-negative".into(),
            ));
        }
        if !matrix.is_doubly_stochastic(VALIDATION_TOL) {
            return Err(GraphError::InvalidCompatibility(
                "matrix rows and columns must sum to 1".into(),
            ));
        }
        Ok(CompatibilityMatrix { matrix })
    }

    /// Build from nested rows (convenience wrapper around [`CompatibilityMatrix::new`]).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let m = DenseMatrix::from_rows(rows).map_err(GraphError::Sparse)?;
        Self::new(m)
    }

    /// The uninformative uniform matrix with every entry `1/k`.
    pub fn uniform(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidCompatibility(
                "k must be positive".into(),
            ));
        }
        Self::new(DenseMatrix::filled(k, k, 1.0 / k as f64))
    }

    /// The `h`-skew matrix family used by the paper's synthetic experiments (Section 5).
    ///
    /// For `k = 3` this is exactly the paper's `H = [[1,h,1],[h,1,1],[1,1,h]] / (2+h)`.
    /// For general `k` we generalize the same structure: classes are paired
    /// `(0,1), (2,3), ...` and each pair attracts with weight `h` while every other pair
    /// of classes attracts with weight `1`; an unpaired last class (odd `k`) attracts
    /// itself with weight `h`. The result is symmetric and doubly stochastic with skew
    /// ratio `max/min = h`.
    pub fn h_skew(k: usize, h: f64) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidCompatibility(
                "k must be positive".into(),
            ));
        }
        if h <= 0.0 {
            return Err(GraphError::InvalidCompatibility(
                "skew h must be positive".into(),
            ));
        }
        let denom = (k as f64 - 1.0) + h;
        let mut m = DenseMatrix::filled(k, k, 1.0 / denom);
        // Pair classes (0,1), (2,3), ...; if k is odd the last class pairs with itself.
        let mut c = 0;
        while c < k {
            if c + 1 < k {
                m.set(c, c + 1, h / denom);
                m.set(c + 1, c, h / denom);
                m.set(c, c, 1.0 / denom);
                m.set(c + 1, c + 1, 1.0 / denom);
                c += 2;
            } else {
                m.set(c, c, h / denom);
                c += 1;
            }
        }
        Self::new(m)
    }

    /// A pure-homophily matrix: diagonal weight `h`, off-diagonal weight `1`,
    /// normalized to be doubly stochastic. Used for the homophily sanity-check
    /// experiments (Fig. 6i).
    pub fn homophily(k: usize, h: f64) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidCompatibility(
                "k must be positive".into(),
            ));
        }
        if h <= 0.0 {
            return Err(GraphError::InvalidCompatibility(
                "skew h must be positive".into(),
            ));
        }
        let denom = (k as f64 - 1.0) + h;
        let mut m = DenseMatrix::filled(k, k, 1.0 / denom);
        for i in 0..k {
            m.set(i, i, h / denom);
        }
        Self::new(m)
    }

    /// Number of classes `k`.
    pub fn k(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of free parameters `k* = k(k-1)/2` (Section 4).
    pub fn free_parameters(&self) -> usize {
        let k = self.k();
        k * (k - 1) / 2
    }

    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.matrix.get(i, j)
    }

    /// Borrow the underlying dense matrix.
    pub fn as_dense(&self) -> &DenseMatrix {
        &self.matrix
    }

    /// Consume and return the underlying dense matrix.
    pub fn into_dense(self) -> DenseMatrix {
        self.matrix
    }

    /// The residual (centered) matrix `H̃ = H - 1/k` used by LinBP (Section 2.3).
    pub fn centered(&self) -> DenseMatrix {
        self.matrix.centered()
    }

    /// Matrix power `H^ℓ` (also doubly stochastic and symmetric).
    pub fn pow(&self, p: usize) -> DenseMatrix {
        // A validated square matrix cannot fail to be powered.
        self.matrix.pow(p).expect("compatibility matrix is square")
    }

    /// Frobenius (L2) distance to another `k x k` matrix, the metric reported in the
    /// paper's Figures 6a/6b/6e/14.
    pub fn l2_distance(&self, other: &DenseMatrix) -> Result<f64> {
        self.matrix
            .frobenius_distance(other)
            .map_err(GraphError::Sparse)
    }

    /// Ratio of the largest to the smallest entry (the paper's skew `h`).
    pub fn skew(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in self.matrix.data() {
            min = min.min(v);
            max = max.max(v);
        }
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Whether the diagonal dominates (homophily) rather than off-diagonal entries.
    pub fn is_homophilous(&self) -> bool {
        let k = self.k();
        let diag_mean: f64 = (0..k).map(|i| self.get(i, i)).sum::<f64>() / k as f64;
        diag_mean > 1.0 / k as f64
    }
}

/// Construct the "two-value heuristic" matrix of Appendix E.1: every entry of the gold
/// standard is replaced by either a high value `H` or a low value `L` depending on
/// whether it is above or below the mean entry `1/k`, then the result is projected back
/// to a doubly-stochastic matrix by scaling rows/columns (Sinkhorn iterations).
pub fn two_value_heuristic(gold: &CompatibilityMatrix, spread: f64) -> Result<CompatibilityMatrix> {
    let k = gold.k();
    let mean = 1.0 / k as f64;
    let high = mean * (1.0 + spread);
    let low = (mean * (1.0 - spread)).max(1e-6);
    let mut m = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            m.set(i, j, if gold.get(i, j) >= mean { high } else { low });
        }
    }
    // Sinkhorn-Knopp projection to the doubly-stochastic polytope. Symmetry is preserved
    // because the input is symmetric and row/column scalings alternate.
    for _ in 0..500 {
        let row_sums = m.row_sums();
        for (i, &rs) in row_sums.iter().enumerate() {
            for j in 0..k {
                m.set(i, j, m.get(i, j) / rs);
            }
        }
        let col_sums = m.col_sums();
        for i in 0..k {
            for (j, &cs) in col_sums.iter().enumerate() {
                m.set(i, j, m.get(i, j) / cs);
            }
        }
    }
    // Symmetrize against residual asymmetry from finite iterations.
    let sym = m
        .add(&m.transpose())
        .map_err(GraphError::Sparse)?
        .scaled(0.5);
    CompatibilityMatrix::new(sym)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matrix_is_valid() {
        let h = CompatibilityMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        assert_eq!(h.k(), 3);
        assert_eq!(h.free_parameters(), 3);
        assert!(!h.is_homophilous());
        assert!((h.skew() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(CompatibilityMatrix::new(m).is_err());
    }

    #[test]
    fn rejects_non_symmetric() {
        let m = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.4, 0.6]]).unwrap();
        assert!(CompatibilityMatrix::new(m).is_err());
    }

    #[test]
    fn rejects_non_stochastic() {
        let m = DenseMatrix::from_rows(&[vec![0.5, 0.4], vec![0.4, 0.5]]).unwrap();
        assert!(CompatibilityMatrix::new(m).is_err());
    }

    #[test]
    fn rejects_negative_entries() {
        let m = DenseMatrix::from_rows(&[vec![1.2, -0.2], vec![-0.2, 1.2]]).unwrap();
        assert!(CompatibilityMatrix::new(m).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(CompatibilityMatrix::uniform(0).is_err());
        assert!(CompatibilityMatrix::h_skew(0, 3.0).is_err());
        assert!(CompatibilityMatrix::h_skew(3, 0.0).is_err());
        assert!(CompatibilityMatrix::homophily(0, 2.0).is_err());
        assert!(CompatibilityMatrix::homophily(3, -1.0).is_err());
    }

    #[test]
    fn uniform_matrix_entries() {
        let h = CompatibilityMatrix::uniform(4).unwrap();
        assert!((h.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((h.get(3, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn h_skew_k3_matches_paper() {
        // h=3 gives the matrix from Example 4.2 up to row permutation:
        // [[1,3,1],[3,1,1],[1,1,3]]/5 = [[0.2,0.6,0.2],[0.6,0.2,0.2],[0.2,0.2,0.6]].
        let h = CompatibilityMatrix::h_skew(3, 3.0).unwrap();
        assert!((h.get(0, 1) - 0.6).abs() < 1e-12);
        assert!((h.get(0, 0) - 0.2).abs() < 1e-12);
        assert!((h.get(2, 2) - 0.6).abs() < 1e-12);
        // h=8 gives the matrix from Example C.1.
        let h8 = CompatibilityMatrix::h_skew(3, 8.0).unwrap();
        assert!((h8.get(0, 1) - 0.8).abs() < 1e-12);
        assert!((h8.get(2, 2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn h_skew_valid_for_many_k() {
        for k in 2..=8 {
            let h = CompatibilityMatrix::h_skew(k, 5.0).unwrap();
            assert!(h.as_dense().is_doubly_stochastic(1e-9));
            assert!(h.as_dense().is_symmetric(1e-9));
            assert!((h.skew() - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn homophily_matrix_is_homophilous() {
        let h = CompatibilityMatrix::homophily(3, 8.0).unwrap();
        assert!(h.is_homophilous());
        assert!(h.as_dense().is_doubly_stochastic(1e-9));
        let het = CompatibilityMatrix::h_skew(3, 8.0).unwrap();
        assert!(!het.is_homophilous());
    }

    #[test]
    fn centered_rows_sum_to_zero() {
        let h = CompatibilityMatrix::h_skew(3, 3.0).unwrap();
        for s in h.centered().row_sums() {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn powers_match_paper_example_4_2() {
        // H^2 of the h=3 matrix has diagonal 0.44 and off-diagonal 0.28.
        let h = CompatibilityMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let h2 = h.pow(2);
        assert!((h2.get(0, 0) - 0.44).abs() < 1e-12);
        assert!((h2.get(0, 1) - 0.28).abs() < 1e-12);
        // The paper reports the max entry series 0.6, 0.44, 0.376, 0.3504 for l=1..4.
        let h3 = h.pow(3);
        assert!((h3.get(0, 1) - 0.376).abs() < 1e-12);
        let h4 = h.pow(4);
        assert!((h4.get(0, 0) - 0.3504).abs() < 1e-12);
    }

    #[test]
    fn powers_stay_doubly_stochastic() {
        let h = CompatibilityMatrix::h_skew(4, 6.0).unwrap();
        for p in 1..6 {
            let hp = h.pow(p);
            assert!(hp.is_doubly_stochastic(1e-9));
            assert!(hp.is_symmetric(1e-9));
        }
    }

    #[test]
    fn l2_distance_to_self_is_zero() {
        let h = CompatibilityMatrix::h_skew(3, 3.0).unwrap();
        assert!(h.l2_distance(h.as_dense()).unwrap() < 1e-12);
        let u = CompatibilityMatrix::uniform(3).unwrap();
        assert!(h.l2_distance(u.as_dense()).unwrap() > 0.1);
    }

    #[test]
    fn two_value_heuristic_is_valid_and_matches_structure() {
        let gold = CompatibilityMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let heur = two_value_heuristic(&gold, 0.5).unwrap();
        assert_eq!(heur.k(), 3);
        // High positions of the gold standard stay high in the heuristic.
        assert!(heur.get(0, 1) > heur.get(0, 0));
        assert!(heur.get(2, 2) > heur.get(2, 0));
    }
}
