//! Low-rank spectral factorization of a graph's adjacency matrix.
//!
//! The low-rank counting backend replaces the exact adjacency `W` with its
//! rank-`r` spectral approximation `W ≈ V·Λ·Vᵀ` (the `r` largest-magnitude
//! eigenpairs, computed by [`fg_sparse::eigen`]). Once the factor exists, path
//! statistics collapse to factor-space recurrences whose per-length cost is
//! independent of both the edge count **and** the node count — the
//! compute-efficiency trade the fgcn line of work exploits.
//!
//! [`LowRankFactor`] carries everything the counting recurrences need:
//!
//! * `V` (n×r, orthonormal columns) and `Λ` (the eigenvalues), and
//! * `G = Vᵀ·(D−I)·V` (r×r), the degree correction projected into factor
//!   space, precomputed once here so the non-backtracking recurrence never
//!   touches an n-dimensional object per path length.
//!
//! The factor has its own [`LowRankFactor::fingerprint`] derived from
//! `(graph fingerprint, rank, solver parameters)`, which keys both the
//! in-memory factor cache and the on-disk `.fgv` store records.

use crate::error::Result;
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use crate::graph::Graph;
use fg_sparse::eigen::{
    symmetric_eigen, EigenConfig, DEFAULT_EIGEN_MAX_ITER, DEFAULT_EIGEN_SEED, DEFAULT_EIGEN_TOL,
};
use fg_sparse::{DenseMatrix, SparseError, Threads};

/// Solver parameters for computing a [`LowRankFactor`]. All four fields enter
/// the factor fingerprint: change any of them and the factor is a different
/// cache entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorConfig {
    /// Number of eigenpairs retained (`1 ..= n`).
    pub rank: usize,
    /// Subspace-iteration budget.
    pub max_iter: usize,
    /// Relative residual tolerance.
    pub tol: f64,
    /// Seed for the deterministic starting block.
    pub seed: u64,
}

impl FactorConfig {
    /// Config with the solver defaults for the given rank.
    pub fn with_rank(rank: usize) -> Self {
        FactorConfig {
            rank,
            max_iter: DEFAULT_EIGEN_MAX_ITER,
            tol: DEFAULT_EIGEN_TOL,
            seed: DEFAULT_EIGEN_SEED,
        }
    }
}

/// A rank-`r` spectral factorization `W ≈ V·Λ·Vᵀ` of a graph's adjacency
/// matrix, plus the projected degree correction `G = Vᵀ·(D−I)·V` used by the
/// non-backtracking recurrence.
#[derive(Debug, Clone)]
pub struct LowRankFactor {
    v: DenseMatrix,
    lambda: Vec<f64>,
    g: DenseMatrix,
    degrees: Vec<f64>,
    graph_fp: Fingerprint,
    config: FactorConfig,
    iterations: usize,
}

/// The fingerprint a factor of `graph_fp` under `config` will carry — derived
/// purely from the inputs, so cache/store lookups never need the factor itself.
pub fn factor_fingerprint(graph_fp: Fingerprint, config: &FactorConfig) -> Fingerprint {
    FingerprintBuilder::new(b"fg-lowrank-factor-v1")
        .write_bytes(&graph_fp.as_u128().to_le_bytes())
        .write_usize(config.rank)
        .write_usize(config.max_iter)
        .write_f64(config.tol)
        .write_u64(config.seed)
        .finish()
}

impl LowRankFactor {
    /// Factorize a graph's adjacency matrix: the `rank` largest-magnitude
    /// eigenpairs via blocked subspace iteration, then the one-time projection
    /// `G = Vᵀ·(D−I)·V`. All edge-proportional work runs through the
    /// thread-parallel bit-identical kernels, so the factor is byte-identical
    /// at any `threads` setting.
    pub fn compute(graph: &Graph, config: &FactorConfig, threads: Threads) -> Result<Self> {
        let eigen_config = EigenConfig {
            rank: config.rank,
            max_iter: config.max_iter,
            tol: config.tol,
            seed: config.seed,
        };
        let pairs = symmetric_eigen(graph.adjacency(), &eigen_config, threads)?;
        let dv = graph
            .degree_minus_identity()
            .spmm_dense_with(&pairs.vectors, threads)?;
        let g = pairs.vectors.transpose().matmul(&dv)?;
        Ok(LowRankFactor {
            v: pairs.vectors,
            lambda: pairs.values,
            g,
            degrees: graph.degrees(),
            graph_fp: graph.fingerprint(),
            config: *config,
            iterations: pairs.iterations,
        })
    }

    /// Reassemble a factor from stored parts (the `.fgv` load path), validating
    /// shape consistency.
    pub fn from_parts(
        v: DenseMatrix,
        lambda: Vec<f64>,
        g: DenseMatrix,
        degrees: Vec<f64>,
        graph_fp: Fingerprint,
        config: FactorConfig,
        iterations: usize,
    ) -> Result<Self> {
        let rank = config.rank;
        if v.cols() != rank || lambda.len() != rank || g.shape() != (rank, rank) {
            return Err(SparseError::InvalidInput(format!(
                "inconsistent factor parts: V is {}x{}, lambda has {}, G is {}x{}, rank {}",
                v.rows(),
                v.cols(),
                lambda.len(),
                g.rows(),
                g.cols(),
                rank
            ))
            .into());
        }
        if degrees.len() != v.rows() {
            return Err(SparseError::InvalidInput(format!(
                "inconsistent factor parts: {} degrees for {} nodes",
                degrees.len(),
                v.rows()
            ))
            .into());
        }
        Ok(LowRankFactor {
            v,
            lambda,
            g,
            degrees,
            graph_fp,
            config,
            iterations,
        })
    }

    /// The eigenvector block `V` (n×r, orthonormal columns).
    pub fn v(&self) -> &DenseMatrix {
        &self.v
    }

    /// The eigenvalues, sorted by magnitude descending.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// The projected degree correction `G = Vᵀ·(D−I)·V` (r×r).
    pub fn g(&self) -> &DenseMatrix {
        &self.g
    }

    /// Per-node weighted degrees of the factored graph (length n), carried so
    /// the non-backtracking correction `Z = VᵀDX` never needs the graph itself
    /// — a factor loaded from the store is self-contained.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// Retained rank `r`.
    pub fn rank(&self) -> usize {
        self.config.rank
    }

    /// Number of graph nodes `n` (rows of `V`).
    pub fn num_nodes(&self) -> usize {
        self.v.rows()
    }

    /// Fingerprint of the graph this factor was computed from.
    pub fn graph_fingerprint(&self) -> Fingerprint {
        self.graph_fp
    }

    /// The solver parameters the factor was computed with.
    pub fn config(&self) -> &FactorConfig {
        &self.config
    }

    /// Subspace-iteration rounds the eigensolve used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The factor's own cache/store identity — see [`factor_fingerprint`].
    pub fn fingerprint(&self) -> Fingerprint {
        factor_fingerprint(self.graph_fp, &self.config)
    }

    /// Densely reconstruct `V·Λ·Vᵀ` — test/diagnostic helper for small graphs
    /// (O(n²·r); never on the serving path).
    pub fn approximate_adjacency(&self) -> Result<DenseMatrix> {
        let mut vl = self.v.clone();
        for i in 0..vl.rows() {
            let row = vl.row_mut(i);
            for (j, value) in row.iter_mut().enumerate() {
                *value *= self.lambda[j];
            }
        }
        Ok(vl.matmul(&self.v.transpose())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn full_rank_factor_reconstructs_adjacency() {
        let graph = ring(8);
        let factor =
            LowRankFactor::compute(&graph, &FactorConfig::with_rank(8), Threads::Serial).unwrap();
        let approx = factor.approximate_adjacency().unwrap();
        let exact = graph.adjacency().to_dense();
        assert!(
            approx.approx_eq(&exact, 1e-7),
            "full-rank V·Λ·Vᵀ must reproduce W"
        );
    }

    #[test]
    fn g_matches_explicit_projection() {
        let graph = ring(8);
        let factor =
            LowRankFactor::compute(&graph, &FactorConfig::with_rank(4), Threads::Serial).unwrap();
        let dmi = graph.degree_minus_identity().to_dense();
        let explicit = factor
            .v()
            .transpose()
            .matmul(&dmi.matmul(factor.v()).unwrap())
            .unwrap();
        assert!(factor.g().approx_eq(&explicit, 1e-10));
        assert_eq!(factor.g().shape(), (4, 4));
    }

    #[test]
    fn fingerprint_distinguishes_rank_solver_params_and_graph() {
        let graph = ring(8);
        let other = ring(10);
        let base = FactorConfig::with_rank(4);
        let fp = factor_fingerprint(graph.fingerprint(), &base);
        assert_eq!(fp, factor_fingerprint(graph.fingerprint(), &base));
        assert_ne!(fp, factor_fingerprint(other.fingerprint(), &base));
        for tweaked in [
            FactorConfig { rank: 5, ..base },
            FactorConfig {
                max_iter: base.max_iter + 1,
                ..base
            },
            FactorConfig {
                tol: base.tol * 10.0,
                ..base
            },
            FactorConfig {
                seed: base.seed + 1,
                ..base
            },
        ] {
            assert_ne!(fp, factor_fingerprint(graph.fingerprint(), &tweaked));
        }
        let factor = LowRankFactor::compute(&graph, &base, Threads::Serial).unwrap();
        assert_eq!(factor.fingerprint(), fp);
    }

    #[test]
    fn factor_is_bit_identical_across_thread_counts() {
        let graph = ring(32);
        let config = FactorConfig::with_rank(6);
        let serial = LowRankFactor::compute(&graph, &config, Threads::Serial).unwrap();
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            let parallel = LowRankFactor::compute(&graph, &config, threads).unwrap();
            assert_eq!(serial.v().data(), parallel.v().data());
            assert_eq!(serial.lambda(), parallel.lambda());
            assert_eq!(serial.g().data(), parallel.g().data());
        }
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let graph = ring(8);
        let config = FactorConfig::with_rank(3);
        let factor = LowRankFactor::compute(&graph, &config, Threads::Serial).unwrap();
        let rebuilt = LowRankFactor::from_parts(
            factor.v().clone(),
            factor.lambda().to_vec(),
            factor.g().clone(),
            factor.degrees().to_vec(),
            factor.graph_fingerprint(),
            config,
            factor.iterations(),
        )
        .unwrap();
        assert_eq!(rebuilt.fingerprint(), factor.fingerprint());
        assert_eq!(rebuilt.v().data(), factor.v().data());
        assert_eq!(rebuilt.degrees(), factor.degrees());
        // Mismatched lambda length is rejected.
        assert!(LowRankFactor::from_parts(
            factor.v().clone(),
            vec![1.0; 2],
            factor.g().clone(),
            factor.degrees().to_vec(),
            factor.graph_fingerprint(),
            config,
            0,
        )
        .is_err());
        // Mismatched degree length is rejected.
        assert!(LowRankFactor::from_parts(
            factor.v().clone(),
            factor.lambda().to_vec(),
            factor.g().clone(),
            vec![1.0; 2],
            factor.graph_fingerprint(),
            config,
            0,
        )
        .is_err());
    }
}
