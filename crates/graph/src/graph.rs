//! The undirected graph type used throughout the workspace.
//!
//! A [`Graph`] owns the symmetric weighted adjacency matrix `W` (CSR), its diagonal
//! degree matrix `D`, and basic structural statistics. Everything downstream — label
//! propagation, path summarization, estimation — consumes graphs through this type.

use crate::error::{GraphError, Result};
use crate::fingerprint::{Fingerprint, FingerprintBuilder};
use fg_sparse::{CooMatrix, CsrMatrix};
use std::sync::OnceLock;

/// An undirected, optionally weighted graph backed by a symmetric CSR adjacency matrix.
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: CsrMatrix,
    num_edges: usize,
    /// Lazily computed structural fingerprint. Content-derived, so cloning the cached
    /// value along with the graph is always valid; the graph is immutable after
    /// construction.
    fingerprint: OnceLock<Fingerprint>,
}

impl Graph {
    /// Build a graph from an undirected edge list. Each `(u, v)` pair is inserted in
    /// both directions with weight 1. Self-loops are rejected, parallel edges are merged.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        Self::from_weighted_edges(
            n,
            &edges.iter().map(|&(u, v)| (u, v, 1.0)).collect::<Vec<_>>(),
        )
    }

    /// Build a graph from a weighted undirected edge list.
    pub fn from_weighted_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2);
        for &(u, v, w) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfBounds { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfBounds { node: v, n });
            }
            if u == v {
                return Err(GraphError::InvalidGeneratorConfig(format!(
                    "self-loop on node {u} is not allowed"
                )));
            }
            coo.push_symmetric(u, v, w)?;
        }
        let adjacency = coo.to_csr();
        let num_edges = adjacency.nnz() / 2;
        Ok(Graph {
            adjacency,
            num_edges,
            fingerprint: OnceLock::new(),
        })
    }

    /// Wrap an existing symmetric adjacency matrix.
    pub fn from_adjacency(adjacency: CsrMatrix) -> Result<Self> {
        if !adjacency.is_square() {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "adjacency must be square, got {}x{}",
                adjacency.rows(),
                adjacency.cols()
            )));
        }
        if !adjacency.is_symmetric(1e-9) {
            return Err(GraphError::InvalidGeneratorConfig(
                "adjacency must be symmetric".into(),
            ));
        }
        if adjacency.diagonal().iter().any(|&d| d != 0.0) {
            return Err(GraphError::InvalidGeneratorConfig(
                "adjacency must have an empty diagonal (no self-loops)".into(),
            ));
        }
        let num_edges = adjacency.nnz() / 2;
        Ok(Graph {
            adjacency,
            num_edges,
            fingerprint: OnceLock::new(),
        })
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Average degree `d = 2m / n`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_nodes() as f64
        }
    }

    /// The symmetric adjacency matrix `W`.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// The weighted degree of node `i` (sum of incident edge weights).
    pub fn degree(&self, i: usize) -> f64 {
        self.adjacency.row(i).1.iter().sum()
    }

    /// Weighted degrees of all nodes (the diagonal of `D`).
    pub fn degrees(&self) -> Vec<f64> {
        self.adjacency.row_sums()
    }

    /// The diagonal degree matrix `D`.
    pub fn degree_matrix(&self) -> CsrMatrix {
        CsrMatrix::from_diagonal(&self.degrees())
    }

    /// The diagonal matrix `D - I` used by the non-backtracking recurrence (Prop. 4.3).
    pub fn degree_minus_identity(&self) -> CsrMatrix {
        let diag: Vec<f64> = self.degrees().iter().map(|&d| d - 1.0).collect();
        CsrMatrix::from_diagonal(&diag)
    }

    /// Neighbors of node `i` (column indices of row `i`).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        self.adjacency.row(i).0
    }

    /// Neighbors of node `i` together with edge weights.
    pub fn neighbors_weighted(&self, i: usize) -> (&[usize], &[f64]) {
        self.adjacency.row(i)
    }

    /// Whether an edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency.get(u, v) != 0.0
    }

    /// Iterate over each undirected edge once as `(u, v, weight)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adjacency.iter().filter(|&(u, v, _)| u < v)
    }

    /// Estimated spectral radius of `W` (needed for LinBP's scaling factor, Eq. 2).
    pub fn spectral_radius(&self) -> Result<f64> {
        fg_sparse::spectral_radius(&self.adjacency).map_err(GraphError::Sparse)
    }

    /// Count of isolated (degree-zero) nodes.
    pub fn num_isolated_nodes(&self) -> usize {
        (0..self.num_nodes())
            .filter(|&i| self.adjacency.row_nnz(i) == 0)
            .count()
    }

    /// Deterministic structural [`Fingerprint`] of this graph: a 128-bit content hash
    /// over the CSR shape, `indptr`, `indices`, and the exact `f64` bit patterns of
    /// the edge weights (domain tag `fg-graph-csr-v1`).
    ///
    /// Two independently loaded copies of the same graph share one fingerprint, and
    /// any structural difference — an extra edge, a changed weight, a different node
    /// count — produces a different one (up to 128-bit hash collisions). Computed in
    /// `O(n + m)` on first use and memoized; the graph is immutable after
    /// construction, so the cached value can never go stale.
    pub fn fingerprint(&self) -> Fingerprint {
        *self.fingerprint.get_or_init(|| {
            let mut h = FingerprintBuilder::new(b"fg-graph-csr-v1");
            h.write_usize(self.adjacency.rows());
            h.write_usize(self.adjacency.cols());
            for &p in self.adjacency.indptr() {
                h.write_usize(p);
            }
            for &i in self.adjacency.indices() {
                h.write_usize(i);
            }
            for &v in self.adjacency.values() {
                h.write_f64(v);
            }
            h.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // Triangle 0-1-2 plus pendant node 3 attached to node 2.
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_edges_rejects_out_of_bounds() {
        assert!(Graph::from_edges(2, &[(0, 5)]).is_err());
        assert!(Graph::from_edges(2, &[(5, 0)]).is_err());
    }

    #[test]
    fn from_edges_rejects_self_loops() {
        assert!(Graph::from_edges(3, &[(1, 1)]).is_err());
    }

    #[test]
    fn parallel_edges_are_merged() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.adjacency().get(0, 1), 2.0); // weights accumulate
    }

    #[test]
    fn weighted_edges() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 0.5)]).unwrap();
        assert_eq!(g.degree(1), 3.0);
        assert_eq!(g.adjacency().get(2, 1), 0.5);
    }

    #[test]
    fn from_adjacency_validation() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(Graph::from_adjacency(sym).is_ok());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(Graph::from_adjacency(asym).is_err());
        let non_square = CsrMatrix::zeros(2, 3);
        assert!(Graph::from_adjacency(non_square).is_err());
        let self_loop = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert!(Graph::from_adjacency(self_loop).is_err());
    }

    #[test]
    fn degrees_and_degree_matrix() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degrees(), vec![2.0, 2.0, 3.0, 1.0]);
        let d = g.degree_matrix();
        assert_eq!(d.get(2, 2), 3.0);
        assert_eq!(d.nnz(), 4);
        let dmi = g.degree_minus_identity();
        assert_eq!(dmi.get(2, 2), 2.0);
        assert_eq!(dmi.get(3, 3), 0.0); // 1 - 1 = 0 is dropped
    }

    #[test]
    fn neighbors_and_edges() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn spectral_radius_of_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert!((g.spectral_radius().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_nodes_counted() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
        assert_eq!(g.num_isolated_nodes(), 3);
    }

    #[test]
    fn fingerprints_follow_content_not_identity() {
        let g1 = triangle_plus_pendant();
        let g2 = triangle_plus_pendant();
        // Independently constructed copies of the same structure share a fingerprint,
        // and the memoized value is stable across calls and clones.
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        assert_eq!(g1.fingerprint(), g1.fingerprint());
        assert_eq!(g1.clone().fingerprint(), g1.fingerprint());
        // Edge order in the input list does not matter (CSR canonicalizes).
        let reordered = Graph::from_edges(4, &[(2, 3), (0, 2), (1, 2), (0, 1)]).unwrap();
        assert_eq!(reordered.fingerprint(), g1.fingerprint());
        // Any structural change produces a different fingerprint.
        let extra_edge = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]).unwrap();
        assert_ne!(extra_edge.fingerprint(), g1.fingerprint());
        let reweighted =
            Graph::from_weighted_edges(4, &[(0, 1, 2.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
                .unwrap();
        assert_ne!(reweighted.fingerprint(), g1.fingerprint());
        let extra_node = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        assert_ne!(extra_node.fingerprint(), g1.fingerprint());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }
}
