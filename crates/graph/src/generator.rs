//! Synthetic graph generator with planted compatibilities.
//!
//! This reproduces the paper's generator (Section 5): a variant of the stochastic
//! block-model that (1) controls the degree distribution of the resulting graph and
//! (2) plants the desired class-compatibility structure by construction, so that the
//! relative frequencies of edges between classes match the requested `H` (exactly for
//! balanced classes, approximately under class imbalance — the paper notes the same
//! caveat in Section 4.4, footnote 4).
//!
//! The input is the paper's tuple `(n, m, α, H, dist)`.

use crate::compatibility::CompatibilityMatrix;
use crate::degree::DegreeDistribution;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::labels::Labeling;
use fg_sparse::DenseMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Configuration of the synthetic graph generator: the paper's `(n, m, α, H, dist)`.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of nodes.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Node label distribution `α` (fractions per class, must sum to 1).
    pub alpha: Vec<f64>,
    /// Planted compatibility matrix.
    pub h: CompatibilityMatrix,
    /// Degree-distribution family.
    pub distribution: DegreeDistribution,
}

impl GeneratorConfig {
    /// The paper's standard synthetic setup: `n` nodes, average degree `d`, `k` balanced
    /// classes, `h`-skew compatibilities, power-law degrees (coefficient 0.3).
    pub fn balanced(n: usize, avg_degree: f64, k: usize, h_skew: f64) -> Result<Self> {
        let h = CompatibilityMatrix::h_skew(k, h_skew)?;
        Ok(GeneratorConfig {
            n,
            m: ((n as f64 * avg_degree) / 2.0).round() as usize,
            alpha: vec![1.0 / k as f64; k],
            h,
            distribution: DegreeDistribution::paper_power_law(),
        })
    }

    /// Same as [`GeneratorConfig::balanced`] but with uniform degrees.
    pub fn balanced_uniform(n: usize, avg_degree: f64, k: usize, h_skew: f64) -> Result<Self> {
        let mut cfg = Self::balanced(n, avg_degree, k, h_skew)?;
        cfg.distribution = DegreeDistribution::Uniform;
        Ok(cfg)
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.h.k()
    }

    fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(GraphError::InvalidGeneratorConfig(
                "n must be positive".into(),
            ));
        }
        if self.alpha.len() != self.k() {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "alpha has {} entries but H has k = {}",
                self.alpha.len(),
                self.k()
            )));
        }
        if self.alpha.iter().any(|&a| a < 0.0) {
            return Err(GraphError::InvalidGeneratorConfig(
                "alpha entries must be non-negative".into(),
            ));
        }
        let total: f64 = self.alpha.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "alpha must sum to 1, sums to {total}"
            )));
        }
        if self.n < self.k() {
            return Err(GraphError::InvalidGeneratorConfig(
                "need at least one node per class".into(),
            ));
        }
        let max_edges = self.n * (self.n - 1) / 2;
        if self.m > max_edges {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "m = {} exceeds the maximum {} for a simple graph on {} nodes",
                self.m, max_edges, self.n
            )));
        }
        Ok(())
    }
}

/// A generated graph together with its ground-truth labeling and the planted `H`.
#[derive(Debug, Clone)]
pub struct SyntheticGraph {
    /// The generated graph.
    pub graph: Graph,
    /// Ground-truth labels for every node.
    pub labeling: Labeling,
    /// The compatibility matrix that was planted.
    pub planted_h: CompatibilityMatrix,
}

/// Per-class cumulative weight index for weighted node sampling.
struct ClassSampler {
    nodes: Vec<usize>,
    cumulative: Vec<f64>,
}

impl ClassSampler {
    fn new(nodes: Vec<usize>, weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(nodes.len());
        let mut acc = 0.0;
        for &node in &nodes {
            acc += weights[node].max(1e-12);
            cumulative.push(acc);
        }
        ClassSampler { nodes, cumulative }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty class");
        let target = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c < target);
        self.nodes[idx.min(self.nodes.len() - 1)]
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

/// Generate a synthetic graph with planted compatibilities.
///
/// The construction proceeds in three steps:
/// 1. assign class sizes from `α` (largest-remainder rounding) and shuffle node ids;
/// 2. derive the target number of edges per class pair from `α` and `H`
///    (`E_ce ∝ (α_c + α_e)/2 · H_ce`, symmetrized);
/// 3. for each class pair, sample endpoints proportionally to their target degree
///    weights, rejecting self-loops and duplicate edges.
pub fn generate<R: Rng + ?Sized>(config: &GeneratorConfig, rng: &mut R) -> Result<SyntheticGraph> {
    config.validate()?;
    let n = config.n;
    let k = config.k();

    // ---- Step 1: class assignment -------------------------------------------------
    let mut class_sizes: Vec<usize> = config
        .alpha
        .iter()
        .map(|&a| (a * n as f64).floor() as usize)
        .collect();
    // Give every class at least one node, then distribute the remainder by largest
    // fractional part.
    for s in class_sizes.iter_mut() {
        if *s == 0 {
            *s = 1;
        }
    }
    let mut assigned: usize = class_sizes.iter().sum();
    let mut fractional: Vec<(usize, f64)> = config
        .alpha
        .iter()
        .enumerate()
        .map(|(c, &a)| (c, a * n as f64 - (a * n as f64).floor()))
        .collect();
    fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut fi = 0;
    while assigned < n {
        class_sizes[fractional[fi % k].0] += 1;
        assigned += 1;
        fi += 1;
    }
    while assigned > n {
        // Remove from the largest class while keeping at least one node per class.
        let largest = (0..k).max_by_key(|&c| class_sizes[c]).expect("k > 0");
        if class_sizes[largest] > 1 {
            class_sizes[largest] -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }

    let mut node_ids: Vec<usize> = (0..n).collect();
    node_ids.shuffle(rng);
    let mut labels = vec![0usize; n];
    let mut cursor = 0;
    for (class, &size) in class_sizes.iter().enumerate() {
        for &node in &node_ids[cursor..cursor + size] {
            labels[node] = class;
        }
        cursor += size;
    }
    let labeling = Labeling::new(labels, k)?;

    // ---- Step 2: target edge counts per class pair ---------------------------------
    let weights = config.distribution.relative_weights(n)?;
    // Shuffle degree weights over nodes so degree is independent of node id / class.
    let mut weight_perm: Vec<usize> = (0..n).collect();
    weight_perm.shuffle(rng);
    let node_weights: Vec<f64> = (0..n).map(|i| weights[weight_perm[i]]).collect();

    // Target *undirected* edge counts per class pair. The measured (gold-standard)
    // statistics matrix counts each within-class edge twice (once per direction), so the
    // diagonal targets are halved to make the row-normalized measurement match `H`.
    let mut pair_weight = DenseMatrix::zeros(k, k);
    for c in 0..k {
        for e in c..k {
            let base = (config.alpha[c] + config.alpha[e]) / 2.0 * config.h.get(c, e);
            let w = if c == e { base / 2.0 } else { base };
            pair_weight.set(c, e, w);
        }
    }
    let total_weight: f64 = (0..k)
        .map(|c| (c..k).map(|e| pair_weight.get(c, e)).sum::<f64>())
        .sum();
    if total_weight <= 0.0 {
        return Err(GraphError::InvalidGeneratorConfig(
            "compatibility matrix and alpha produce no edges".into(),
        ));
    }

    // ---- Step 3: sample edges ------------------------------------------------------
    let samplers: Vec<ClassSampler> = (0..k)
        .map(|c| ClassSampler::new(labeling.nodes_of_class(c), &node_weights))
        .collect();

    let mut edge_set: HashSet<u64> = HashSet::with_capacity(config.m * 2);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(config.m);
    let encode = |u: usize, v: usize| -> u64 {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        (a as u64) << 32 | b as u64
    };

    for c in 0..k {
        for e in c..k {
            if samplers[c].len() == 0 || samplers[e].len() == 0 {
                continue;
            }
            // Intra-class pairs with a single node cannot host an edge.
            if c == e && samplers[c].len() < 2 {
                continue;
            }
            let target = (config.m as f64 * pair_weight.get(c, e) / total_weight).round() as usize;
            let mut placed = 0;
            let mut attempts = 0usize;
            let max_attempts = target.saturating_mul(30) + 100;
            while placed < target && attempts < max_attempts {
                attempts += 1;
                let u = samplers[c].sample(rng);
                let v = samplers[e].sample(rng);
                if u == v {
                    continue;
                }
                let key = encode(u, v);
                if edge_set.insert(key) {
                    edges.push((u, v));
                    placed += 1;
                }
            }
        }
    }

    let graph = Graph::from_edges(n, &edges)?;
    Ok(SyntheticGraph {
        graph,
        labeling,
        planted_h: config.h.clone(),
    })
}

/// Measure the empirical (gold-standard) compatibility matrix of a fully labeled graph:
/// the row-normalized class-to-class edge-count matrix `|M|_row` with
/// `M = Xᵀ W X` (Section 5.3, "we retrieve the GS compatibilities from the relative
/// label distribution on the fully labeled graph").
pub fn measure_compatibilities(graph: &Graph, labeling: &Labeling) -> Result<DenseMatrix> {
    if labeling.n() != graph.num_nodes() {
        return Err(GraphError::InvalidLabels(format!(
            "labeling has {} nodes but graph has {}",
            labeling.n(),
            graph.num_nodes()
        )));
    }
    let k = labeling.k();
    let mut m = DenseMatrix::zeros(k, k);
    for (u, v, w) in graph.edges() {
        let cu = labeling.class_of(u);
        let cv = labeling.class_of(v);
        m.add_at(cu, cv, w);
        m.add_at(cv, cu, w);
    }
    Ok(m.row_normalized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_config_construction() {
        let cfg = GeneratorConfig::balanced(1000, 10.0, 3, 3.0).unwrap();
        assert_eq!(cfg.n, 1000);
        assert_eq!(cfg.m, 5000);
        assert_eq!(cfg.k(), 3);
        assert!((cfg.alpha.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation_errors() {
        let mut cfg = GeneratorConfig::balanced(100, 5.0, 3, 3.0).unwrap();
        cfg.alpha = vec![0.5, 0.5]; // wrong length
        assert!(generate(&cfg, &mut StdRng::seed_from_u64(0)).is_err());

        let mut cfg = GeneratorConfig::balanced(100, 5.0, 3, 3.0).unwrap();
        cfg.alpha = vec![0.5, 0.4, 0.4]; // does not sum to 1
        assert!(generate(&cfg, &mut StdRng::seed_from_u64(0)).is_err());

        let mut cfg = GeneratorConfig::balanced(100, 5.0, 3, 3.0).unwrap();
        cfg.n = 0;
        assert!(generate(&cfg, &mut StdRng::seed_from_u64(0)).is_err());

        let mut cfg = GeneratorConfig::balanced(10, 5.0, 3, 3.0).unwrap();
        cfg.m = 1000; // more than n(n-1)/2
        assert!(generate(&cfg, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn generated_graph_has_requested_size() {
        let cfg = GeneratorConfig::balanced(500, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let syn = generate(&cfg, &mut rng).unwrap();
        assert_eq!(syn.graph.num_nodes(), 500);
        // Rejection sampling may fall a little short of m, but not by much.
        let m = syn.graph.num_edges() as f64;
        assert!(m > cfg.m as f64 * 0.9, "too few edges: {m}");
        assert!(m <= cfg.m as f64 * 1.05);
        assert_eq!(syn.labeling.n(), 500);
    }

    #[test]
    fn generated_classes_are_balanced() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&cfg, &mut rng).unwrap();
        let counts = syn.labeling.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 300);
        for &c in &counts {
            assert!((c as i64 - 100).unsigned_abs() <= 1);
        }
    }

    #[test]
    fn class_imbalance_is_respected() {
        let mut cfg = GeneratorConfig::balanced(600, 10.0, 3, 3.0).unwrap();
        cfg.alpha = vec![1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0];
        let mut rng = StdRng::seed_from_u64(11);
        let syn = generate(&cfg, &mut rng).unwrap();
        let dist = syn.labeling.class_distribution();
        assert!((dist[0] - 1.0 / 6.0).abs() < 0.02);
        assert!((dist[2] - 0.5).abs() < 0.02);
    }

    #[test]
    fn planted_compatibilities_are_recovered_on_balanced_graph() {
        // On a reasonably dense balanced graph the measured GS matrix must be close to
        // the planted H.
        let cfg = GeneratorConfig::balanced_uniform(2000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let syn = generate(&cfg, &mut rng).unwrap();
        let measured = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
        let dist = syn.planted_h.l2_distance(&measured).unwrap();
        assert!(
            dist < 0.1,
            "planted vs measured L2 distance too large: {dist}"
        );
    }

    #[test]
    fn homophily_graph_has_dominant_diagonal() {
        let mut cfg = GeneratorConfig::balanced(1000, 15.0, 3, 1.0).unwrap();
        cfg.h = CompatibilityMatrix::homophily(3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let syn = generate(&cfg, &mut rng).unwrap();
        let measured = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
        for c in 0..3 {
            for e in 0..3 {
                if c != e {
                    assert!(measured.get(c, c) > measured.get(c, e));
                }
            }
        }
    }

    #[test]
    fn power_law_produces_skewed_degrees() {
        let cfg = GeneratorConfig::balanced(2000, 20.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let syn = generate(&cfg, &mut rng).unwrap();
        let mut degrees = syn.graph.degrees();
        degrees.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Max degree should clearly exceed the average for a power-law family.
        let avg = syn.graph.average_degree();
        assert!(degrees[0] > 1.5 * avg, "max {} vs avg {avg}", degrees[0]);
    }

    #[test]
    fn measure_compatibilities_validates_sizes() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let l = Labeling::new(vec![0, 1], 2).unwrap();
        assert!(measure_compatibilities(&g, &l).is_err());
    }

    #[test]
    fn measured_matrix_rows_sum_to_one() {
        let cfg = GeneratorConfig::balanced(500, 10.0, 4, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let syn = generate(&cfg, &mut rng).unwrap();
        let measured = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
        for s in measured.row_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_deterministic_for_fixed_seed() {
        let cfg = GeneratorConfig::balanced(200, 6.0, 3, 3.0).unwrap();
        let a = generate(&cfg, &mut StdRng::seed_from_u64(123)).unwrap();
        let b = generate(&cfg, &mut StdRng::seed_from_u64(123)).unwrap();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.labeling.as_slice(), b.labeling.as_slice());
    }
}
