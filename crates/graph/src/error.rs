//! Error type for graph construction and generation.

use std::fmt;

/// Errors produced while building graphs, labels, or compatibility matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A compatibility matrix failed validation (not square / symmetric / stochastic).
    InvalidCompatibility(String),
    /// The label vector or label matrix is inconsistent with the graph or class count.
    InvalidLabels(String),
    /// The generator was asked for an impossible configuration.
    InvalidGeneratorConfig(String),
    /// An edge references a node outside the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A text input (edge list / label file) failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// A file could not be read or written.
    Io(String),
    /// Error bubbled up from the linear-algebra layer.
    Sparse(fg_sparse::SparseError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidCompatibility(msg) => {
                write!(f, "invalid compatibility matrix: {msg}")
            }
            GraphError::InvalidLabels(msg) => write!(f, "invalid labels: {msg}"),
            GraphError::InvalidGeneratorConfig(msg) => write!(f, "invalid generator config: {msg}"),
            GraphError::NodeOutOfBounds { node, n } => {
                write!(f, "node {node} out of bounds for graph with {n} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
            GraphError::Sparse(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fg_sparse::SparseError> for GraphError {
    fn from(e: fg_sparse::SparseError) -> Self {
        GraphError::Sparse(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::InvalidCompatibility("x".into())
            .to_string()
            .contains("compatibility"));
        assert!(GraphError::InvalidLabels("y".into())
            .to_string()
            .contains("labels"));
        assert!(GraphError::InvalidGeneratorConfig("z".into())
            .to_string()
            .contains("generator"));
        assert!(GraphError::NodeOutOfBounds { node: 5, n: 3 }
            .to_string()
            .contains('5'));
        let parse = GraphError::Parse {
            line: 7,
            message: "invalid node id 'x'".into(),
        };
        assert_eq!(
            parse.to_string(),
            "parse error at line 7: invalid node id 'x'"
        );
        assert!(GraphError::Io("cannot read file".into())
            .to_string()
            .starts_with("io error"));
    }

    #[test]
    fn from_sparse_error() {
        let e: GraphError = fg_sparse::SparseError::NotSquare { rows: 1, cols: 2 }.into();
        assert!(e.to_string().contains("linear algebra"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
