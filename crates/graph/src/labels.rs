//! Node labels, seed sets, and label matrices.
//!
//! The estimation pipeline sees labels in two forms: the (unknown) ground-truth labeling
//! of every node, and the *observed* partial labeling of a small seed fraction `f`.
//! The observed labels are encoded as the explicit-belief matrix `X` (`n x k`, one-hot
//! rows for labeled nodes, zero rows otherwise) used by both LinBP and the estimators.

use crate::error::{GraphError, Result};
use crate::fingerprint::{Fingerprint, FingerprintBuilder, RollingFingerprint};
use fg_sparse::DenseMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A complete ground-truth labeling: every node has exactly one class in `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    labels: Vec<usize>,
    k: usize,
}

impl Labeling {
    /// Create a labeling, validating that every label is `< k`.
    pub fn new(labels: Vec<usize>, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidLabels("k must be positive".into()));
        }
        if let Some(&bad) = labels.iter().find(|&&c| c >= k) {
            return Err(GraphError::InvalidLabels(format!(
                "label {bad} out of range for k = {k}"
            )));
        }
        Ok(Labeling { labels, k })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The class of node `i`.
    pub fn class_of(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Borrow the label vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.labels
    }

    /// Count of nodes per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &c in &self.labels {
            counts[c] += 1;
        }
        counts
    }

    /// Fraction of nodes per class (the paper's `α`).
    pub fn class_distribution(&self) -> Vec<f64> {
        let n = self.n().max(1) as f64;
        self.class_counts().iter().map(|&c| c as f64 / n).collect()
    }

    /// Indices of all nodes of a given class.
    pub fn nodes_of_class(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Build the fully-labeled one-hot matrix (every row one-hot). This is what the gold
    /// standard measurement uses.
    pub fn to_full_matrix(&self) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(self.n(), self.k);
        for (i, &c) in self.labels.iter().enumerate() {
            x.set(i, c, 1.0);
        }
        x
    }

    /// Draw a stratified random seed set with overall label fraction `f`: classes are
    /// sampled in proportion to their frequencies (Section 5, "Quality assessment").
    /// At least one node per class is kept whenever the class is non-empty and
    /// `f > 0`, so the estimators always see every class at least once.
    pub fn stratified_sample<R: Rng + ?Sized>(&self, f: f64, rng: &mut R) -> SeedLabels {
        let mut observed = vec![None; self.n()];
        if f <= 0.0 {
            return SeedLabels::new(observed, self.k).expect("valid by construction");
        }
        for class in 0..self.k {
            let mut members = self.nodes_of_class(class);
            if members.is_empty() {
                continue;
            }
            members.shuffle(rng);
            let take = ((members.len() as f64 * f).round() as usize)
                .max(1)
                .min(members.len());
            for &node in members.iter().take(take) {
                observed[node] = Some(class);
            }
        }
        SeedLabels::new(observed, self.k).expect("valid by construction")
    }
}

/// Hash one `(node, label)` seed observation into an independent element
/// [`Fingerprint`] for the commutative rolling reduction (domain tag
/// `fg-seed-pair-v2`).
fn seed_pair_hash(node: usize, label: usize) -> Fingerprint {
    let mut h = FingerprintBuilder::new(b"fg-seed-pair-v2");
    h.write_usize(node);
    h.write_usize(label);
    h.finish()
}

/// Accumulate every labeled `(node, label)` pair of `observed` into a fresh rolling
/// accumulator — the O(n) from-scratch derivation the rolling scheme avoids on the
/// warm path.
fn rolling_from_observed(observed: &[Option<usize>]) -> RollingFingerprint {
    let mut rolling = RollingFingerprint::new();
    for (node, observed) in observed.iter().enumerate() {
        if let Some(c) = observed {
            rolling.add(seed_pair_hash(node, *c));
        }
    }
    rolling
}

/// A partial labeling: the seed labels visible to the estimation and propagation steps.
///
/// The seed-set [`fingerprint`](Self::fingerprint) is maintained *rolling*: a
/// commutative [`RollingFingerprint`] over per-`(node, label)` hashes is updated in
/// O(1) by every [`set_label`](Self::set_label) call, so serving layers that
/// fingerprint the seed set on every request never pay the O(n) re-derivation
/// ([`scratch_derivations`](Self::scratch_derivations) lets tests assert exactly
/// that).
#[derive(Debug)]
pub struct SeedLabels {
    observed: Vec<Option<usize>>,
    k: usize,
    /// Commutative accumulator over `seed_pair_hash(node, label)` for every labeled
    /// node — always equal to `rolling_from_observed(&self.observed)`.
    rolling: RollingFingerprint,
    /// How many O(n) from-scratch fingerprint derivations ran *after* construction
    /// (see [`scratch_derivations`](Self::scratch_derivations)).
    scratch_derivations: AtomicUsize,
}

impl Clone for SeedLabels {
    fn clone(&self) -> Self {
        SeedLabels {
            observed: self.observed.clone(),
            k: self.k,
            rolling: self.rolling,
            scratch_derivations: AtomicUsize::new(0),
        }
    }
}

impl PartialEq for SeedLabels {
    fn eq(&self, other: &Self) -> bool {
        // `rolling` is a pure function of the content and the counter is a
        // diagnostic, so equality is decided by the observations alone.
        self.observed == other.observed && self.k == other.k
    }
}

impl Eq for SeedLabels {}

impl SeedLabels {
    /// Create a seed set, validating that every present label is `< k`.
    pub fn new(observed: Vec<Option<usize>>, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidLabels("k must be positive".into()));
        }
        if let Some(bad) = observed.iter().flatten().find(|&&c| c >= k) {
            return Err(GraphError::InvalidLabels(format!(
                "seed label {bad} out of range for k = {k}"
            )));
        }
        Ok(Self::from_observed(observed, k))
    }

    /// Build from observations already known to be valid, initializing the rolling
    /// fingerprint state (the one O(n) pass a seed set ever needs).
    fn from_observed(observed: Vec<Option<usize>>, k: usize) -> Self {
        let rolling = rolling_from_observed(&observed);
        SeedLabels {
            observed,
            k,
            rolling,
            scratch_derivations: AtomicUsize::new(0),
        }
    }

    /// Create a seed set that reveals every label of a full labeling (f = 1).
    pub fn fully_labeled(labeling: &Labeling) -> Self {
        Self::from_observed(
            labeling.as_slice().iter().map(|&c| Some(c)).collect(),
            labeling.k(),
        )
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.observed.len()
    }

    /// Number of classes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The observed class of node `i`, if labeled.
    pub fn get(&self, i: usize) -> Option<usize> {
        self.observed[i]
    }

    /// Borrow the observation vector.
    pub fn as_slice(&self) -> &[Option<usize>] {
        &self.observed
    }

    /// Number of labeled nodes.
    pub fn num_labeled(&self) -> usize {
        self.observed.iter().filter(|o| o.is_some()).count()
    }

    /// The realized label fraction `f`.
    pub fn label_fraction(&self) -> f64 {
        if self.observed.is_empty() {
            0.0
        } else {
            self.num_labeled() as f64 / self.observed.len() as f64
        }
    }

    /// Indices of labeled nodes.
    pub fn labeled_nodes(&self) -> Vec<usize> {
        self.observed
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of unlabeled nodes.
    pub fn unlabeled_nodes(&self) -> Vec<usize> {
        self.observed
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-class counts over the labeled nodes only.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for c in self.observed.iter().flatten() {
            counts[*c] += 1;
        }
        counts
    }

    /// Build the explicit-belief matrix `X` (`n x k`): one-hot rows for labeled nodes,
    /// all-zero rows for unlabeled nodes.
    pub fn to_matrix(&self) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(self.n(), self.k);
        for (i, o) in self.observed.iter().enumerate() {
            if let Some(c) = o {
                x.set(i, *c, 1.0);
            }
        }
        x
    }

    /// Split the labeled nodes into `b` (seed, holdout) partitions for the Holdout
    /// baseline (Section 4.1). The labeled nodes are divided into `max(b, 2)` folds;
    /// partition `q` holds out fold `q` and keeps the remaining folds as seeds, so even
    /// `b = 1` produces a proper split rather than an empty seed set.
    pub fn holdout_partitions(&self, b: usize) -> Vec<(SeedLabels, SeedLabels)> {
        let b = b.max(1);
        let folds = b.max(2);
        let labeled = self.labeled_nodes();
        let mut partitions = Vec::with_capacity(b);
        for q in 0..b {
            let mut seed = vec![None; self.n()];
            let mut holdout = vec![None; self.n()];
            for (pos, &node) in labeled.iter().enumerate() {
                let class = self.observed[node];
                if pos % folds == q {
                    holdout[node] = class;
                } else {
                    seed[node] = class;
                }
            }
            partitions.push((
                SeedLabels::new(seed, self.k).expect("valid by construction"),
                SeedLabels::new(holdout, self.k).expect("valid by construction"),
            ));
        }
        partitions
    }

    /// Deterministic [`Fingerprint`] of this seed set: a 128-bit content hash over
    /// `n`, `k`, and the order-independent commutative reduction of every
    /// `(node id, observed label)` pair hash (domain tag `fg-seed-labels-v2`).
    ///
    /// Two independently loaded copies of the same seed file share one fingerprint;
    /// adding, removing, moving, or relabeling any seed changes it (up to 128-bit
    /// hash collisions). **O(1)**: the pair-hash reduction is maintained rolling by
    /// [`set_label`](Self::set_label), so per-request fingerprinting in the serving
    /// layer costs a constant-size finishing hash, never an O(n) scan.
    /// [`fingerprint_from_scratch`](Self::fingerprint_from_scratch) is the O(n)
    /// re-derivation the property tests check this against.
    pub fn fingerprint(&self) -> Fingerprint {
        Self::finish_fingerprint(b"fg-seed-labels-v2", &[], self.n(), self.k, self.rolling)
    }

    /// The same fingerprint as [`fingerprint`](Self::fingerprint), re-derived with a
    /// full O(n) pass over the observations instead of the maintained rolling state.
    ///
    /// Exists as the equality oracle for the rolling scheme: after *any* interleaving
    /// of [`set_label`](Self::set_label) mutations, both methods return identical
    /// fingerprints. Each call bumps
    /// [`scratch_derivations`](Self::scratch_derivations), which is how tests assert
    /// the warm serving path never falls back to this.
    pub fn fingerprint_from_scratch(&self) -> Fingerprint {
        self.scratch_derivations.fetch_add(1, Ordering::Relaxed);
        Self::finish_fingerprint(
            b"fg-seed-labels-v2",
            &[],
            self.n(),
            self.k,
            rolling_from_observed(&self.observed),
        )
    }

    /// A keyed variant of [`fingerprint`](Self::fingerprint) for stores and sessions
    /// that cross trust boundaries (domain tag `fg-seed-labels-keyed-v2`).
    ///
    /// The caller's `key` is folded into the finishing hash, so fingerprints produced
    /// under different keys are unrelated (an actor who can observe fingerprints
    /// under one key learns nothing that lets them forge or correlate fingerprints
    /// under another), while remaining stable per `(key, seed content)` pair. Same
    /// O(1) cost in `n` as the unkeyed variant (O(|key|) overall).
    pub fn keyed_fingerprint(&self, key: &[u8]) -> Fingerprint {
        Self::finish_fingerprint(
            b"fg-seed-labels-keyed-v2",
            key,
            self.n(),
            self.k,
            self.rolling,
        )
    }

    /// Finish a seed-set fingerprint from its maintained (or re-derived) rolling
    /// state: a constant-size domain-tagged stream over the key, `n`, `k`, and the
    /// accumulator's `(count, sum)`.
    fn finish_fingerprint(
        domain: &[u8],
        key: &[u8],
        n: usize,
        k: usize,
        rolling: RollingFingerprint,
    ) -> Fingerprint {
        let mut h = FingerprintBuilder::new(domain);
        h.write_usize(key.len());
        h.write_bytes(key);
        h.write_usize(n);
        h.write_usize(k);
        h.write_u64(rolling.len());
        let sum = rolling.value();
        h.write_u64(sum as u64);
        h.write_u64((sum >> 64) as u64);
        h.finish()
    }

    /// How many O(n) from-scratch fingerprint derivations this instance ran after
    /// construction (only [`fingerprint_from_scratch`](Self::fingerprint_from_scratch)
    /// bumps it — [`fingerprint`](Self::fingerprint) and
    /// [`set_label`](Self::set_label) never do). Serving tests assert this stays `0`
    /// across mutate/fingerprint cycles, which is the O(1)-maintenance guarantee in
    /// counter form. Clones start back at `0`.
    pub fn scratch_derivations(&self) -> usize {
        self.scratch_derivations.load(Ordering::Relaxed)
    }

    /// Set (or clear) the observed label of one node, returning the previous value.
    ///
    /// This is the mutation primitive behind the online-serving layer: streaming
    /// workloads adjust a handful of seeds between queries instead of rebuilding the
    /// whole seed set. The rolling [`fingerprint`](Self::fingerprint) state is
    /// updated in **O(1)** — the old pair hash is subtracted and the new one added
    /// under the commutative reduction — so after any sequence of `set_label` calls
    /// the fingerprint equals that of a seed set freshly constructed with the same
    /// observations.
    pub fn set_label(&mut self, node: usize, label: Option<usize>) -> Result<Option<usize>> {
        if node >= self.observed.len() {
            return Err(GraphError::InvalidLabels(format!(
                "node {node} out of range for n = {}",
                self.observed.len()
            )));
        }
        if let Some(c) = label {
            if c >= self.k {
                return Err(GraphError::InvalidLabels(format!(
                    "seed label {c} out of range for k = {}",
                    self.k
                )));
            }
        }
        let previous = std::mem::replace(&mut self.observed[node], label);
        if let Some(c) = previous {
            self.rolling.remove(seed_pair_hash(node, c));
        }
        if let Some(c) = label {
            self.rolling.add(seed_pair_hash(node, c));
        }
        Ok(previous)
    }

    /// Restrict this seed set to a subset of nodes (everything else becomes unlabeled).
    pub fn restricted_to(&self, nodes: &[usize]) -> SeedLabels {
        let mut observed = vec![None; self.n()];
        for &i in nodes {
            observed[i] = self.observed[i];
        }
        Self::from_observed(observed, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_labeling() -> Labeling {
        Labeling::new(vec![0, 0, 1, 1, 2, 2, 0, 1, 2, 0], 3).unwrap()
    }

    #[test]
    fn labeling_validation() {
        assert!(Labeling::new(vec![0, 1, 2], 3).is_ok());
        assert!(Labeling::new(vec![0, 3], 3).is_err());
        assert!(Labeling::new(vec![], 0).is_err());
    }

    #[test]
    fn class_counts_and_distribution() {
        let l = sample_labeling();
        assert_eq!(l.class_counts(), vec![4, 3, 3]);
        let dist = l.class_distribution();
        assert!((dist[0] - 0.4).abs() < 1e-12);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_of_class_returns_members() {
        let l = sample_labeling();
        assert_eq!(l.nodes_of_class(2), vec![4, 5, 8]);
    }

    #[test]
    fn full_matrix_is_one_hot() {
        let l = sample_labeling();
        let x = l.to_full_matrix();
        assert_eq!(x.shape(), (10, 3));
        for i in 0..10 {
            assert!((x.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(x.get(i, l.class_of(i)), 1.0);
        }
    }

    #[test]
    fn stratified_sample_respects_fraction_and_classes() {
        let l = sample_labeling();
        let mut rng = StdRng::seed_from_u64(42);
        let seeds = l.stratified_sample(0.5, &mut rng);
        // roughly half per class (rounded), and at least one per class
        let counts = seeds.class_counts();
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(seeds.num_labeled(), counts.iter().sum::<usize>());
        assert!(seeds.label_fraction() > 0.3 && seeds.label_fraction() < 0.7);
        // all observed labels agree with the ground truth
        for (i, o) in seeds.as_slice().iter().enumerate() {
            if let Some(c) = o {
                assert_eq!(*c, l.class_of(i));
            }
        }
    }

    #[test]
    fn stratified_sample_zero_fraction_is_empty() {
        let l = sample_labeling();
        let mut rng = StdRng::seed_from_u64(1);
        let seeds = l.stratified_sample(0.0, &mut rng);
        assert_eq!(seeds.num_labeled(), 0);
    }

    #[test]
    fn stratified_sample_keeps_at_least_one_per_class() {
        let l = sample_labeling();
        let mut rng = StdRng::seed_from_u64(7);
        let seeds = l.stratified_sample(0.01, &mut rng);
        assert_eq!(seeds.num_labeled(), 3); // one per class
    }

    #[test]
    fn seed_labels_validation() {
        assert!(SeedLabels::new(vec![Some(0), None], 1).is_ok());
        assert!(SeedLabels::new(vec![Some(1)], 1).is_err());
        assert!(SeedLabels::new(vec![], 0).is_err());
    }

    #[test]
    fn fully_labeled_matches_ground_truth() {
        let l = sample_labeling();
        let seeds = SeedLabels::fully_labeled(&l);
        assert_eq!(seeds.num_labeled(), l.n());
        assert!((seeds.label_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_matrix_has_zero_rows_for_unlabeled() {
        let seeds = SeedLabels::new(vec![Some(1), None, Some(0)], 2).unwrap();
        let x = seeds.to_matrix();
        assert_eq!(x.get(0, 1), 1.0);
        assert_eq!(x.row(1), &[0.0, 0.0]);
        assert_eq!(x.get(2, 0), 1.0);
    }

    #[test]
    fn labeled_and_unlabeled_partition() {
        let seeds = SeedLabels::new(vec![Some(1), None, Some(0), None], 2).unwrap();
        assert_eq!(seeds.labeled_nodes(), vec![0, 2]);
        assert_eq!(seeds.unlabeled_nodes(), vec![1, 3]);
    }

    #[test]
    fn holdout_partitions_are_disjoint_and_cover() {
        let l = sample_labeling();
        let seeds = SeedLabels::fully_labeled(&l);
        let parts = seeds.holdout_partitions(3);
        assert_eq!(parts.len(), 3);
        for (seed, holdout) in &parts {
            // disjoint
            for i in 0..seeds.n() {
                assert!(!(seed.get(i).is_some() && holdout.get(i).is_some()));
            }
            // together they cover all labeled nodes
            assert_eq!(
                seed.num_labeled() + holdout.num_labeled(),
                seeds.num_labeled()
            );
            assert!(holdout.num_labeled() > 0);
        }
    }

    #[test]
    fn holdout_partition_b1_is_a_proper_split() {
        let l = sample_labeling();
        let seeds = SeedLabels::fully_labeled(&l);
        let parts = seeds.holdout_partitions(1);
        assert_eq!(parts.len(), 1);
        let (seed, holdout) = &parts[0];
        assert!(seed.num_labeled() > 0);
        assert!(holdout.num_labeled() > 0);
        assert_eq!(
            seed.num_labeled() + holdout.num_labeled(),
            seeds.num_labeled()
        );
    }

    #[test]
    fn seed_fingerprints_follow_content_not_identity() {
        let a = SeedLabels::new(vec![Some(1), None, Some(0)], 2).unwrap();
        let b = SeedLabels::new(vec![Some(1), None, Some(0)], 2).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Relabeling, moving, or dropping a seed changes the fingerprint.
        let relabeled = SeedLabels::new(vec![Some(0), None, Some(0)], 2).unwrap();
        assert_ne!(relabeled.fingerprint(), a.fingerprint());
        let moved = SeedLabels::new(vec![None, Some(1), Some(0)], 2).unwrap();
        assert_ne!(moved.fingerprint(), a.fingerprint());
        let dropped = SeedLabels::new(vec![Some(1), None, None], 2).unwrap();
        assert_ne!(dropped.fingerprint(), a.fingerprint());
        // Same observations under a different k are a different seed set.
        let wider = SeedLabels::new(vec![Some(1), None, Some(0)], 3).unwrap();
        assert_ne!(wider.fingerprint(), a.fingerprint());
        // n matters even when the extra nodes are unlabeled.
        let longer = SeedLabels::new(vec![Some(1), None, Some(0), None], 2).unwrap();
        assert_ne!(longer.fingerprint(), a.fingerprint());
    }

    #[test]
    fn set_label_mutates_and_tracks_fingerprint() {
        let mut seeds = SeedLabels::new(vec![Some(1), None, Some(0)], 2).unwrap();
        assert_eq!(seeds.set_label(1, Some(0)).unwrap(), None);
        assert_eq!(seeds.get(1), Some(0));
        assert_eq!(seeds.set_label(0, None).unwrap(), Some(1));
        assert_eq!(seeds.num_labeled(), 2);
        // The mutated set fingerprints exactly like a freshly built equal set.
        let rebuilt = SeedLabels::new(vec![None, Some(0), Some(0)], 2).unwrap();
        assert_eq!(seeds.fingerprint(), rebuilt.fingerprint());
        // Bounds and label ranges are validated; errors leave the set unchanged.
        assert!(seeds.set_label(9, Some(0)).is_err());
        assert!(seeds.set_label(0, Some(5)).is_err());
        assert_eq!(seeds.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn rolling_fingerprint_matches_from_scratch_under_random_interleavings() {
        // Property-style: arbitrary interleavings of add / remove / relabel keep the
        // O(1) rolling fingerprint equal to the O(n) from-scratch derivation and to
        // the fingerprint of a freshly constructed equal seed set.
        let n = 64;
        let k = 4;
        for trial in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(1000 + trial);
            let mut seeds = SeedLabels::new(vec![None; n], k).unwrap();
            for _ in 0..200 {
                let node = rng.gen_index(n);
                // ~1/3 removals, ~2/3 adds/relabels (including no-op rewrites).
                let label = match rng.gen_index(3) {
                    0 => None,
                    _ => Some(rng.gen_index(k)),
                };
                seeds.set_label(node, label).unwrap();
                assert_eq!(seeds.fingerprint(), seeds.fingerprint_from_scratch());
            }
            let rebuilt = SeedLabels::new(seeds.as_slice().to_vec(), k).unwrap();
            assert_eq!(seeds.fingerprint(), rebuilt.fingerprint());
            assert_eq!(
                seeds.keyed_fingerprint(b"trust-key"),
                rebuilt.keyed_fingerprint(b"trust-key")
            );
        }
    }

    #[test]
    fn fingerprint_is_o1_on_the_warm_path() {
        // The counter form of the O(1) guarantee: mutate-and-fingerprint cycles never
        // fall back to an O(n) from-scratch derivation.
        let mut seeds = SeedLabels::new(vec![None; 100], 3).unwrap();
        for i in 0..50 {
            seeds.set_label(i, Some(i % 3)).unwrap();
            let _ = seeds.fingerprint();
            let _ = seeds.keyed_fingerprint(b"session");
        }
        assert_eq!(seeds.scratch_derivations(), 0);
        // Only the explicit oracle pays O(n) — and says so in the counter.
        let _ = seeds.fingerprint_from_scratch();
        assert_eq!(seeds.scratch_derivations(), 1);
        // Clones restart the diagnostic at zero.
        assert_eq!(seeds.clone().scratch_derivations(), 0);
    }

    #[test]
    fn keyed_fingerprints_differ_per_key_and_are_stable_per_key_and_content() {
        let seeds = SeedLabels::new(vec![Some(1), None, Some(0), Some(2)], 3).unwrap();
        let copy = SeedLabels::new(vec![Some(1), None, Some(0), Some(2)], 3).unwrap();
        // Stable per (key, content): independently built copies agree under each key.
        assert_eq!(
            seeds.keyed_fingerprint(b"key-a"),
            copy.keyed_fingerprint(b"key-a")
        );
        // Different keys give unrelated fingerprints, and none matches the unkeyed one.
        assert_ne!(
            seeds.keyed_fingerprint(b"key-a"),
            seeds.keyed_fingerprint(b"key-b")
        );
        assert_ne!(seeds.keyed_fingerprint(b"key-a"), seeds.fingerprint());
        assert_ne!(seeds.keyed_fingerprint(b""), seeds.fingerprint());
        // Content still separates under a fixed key.
        let other = SeedLabels::new(vec![Some(1), None, Some(0), None], 3).unwrap();
        assert_ne!(
            seeds.keyed_fingerprint(b"key-a"),
            other.keyed_fingerprint(b"key-a")
        );
    }

    #[test]
    fn restricted_to_subset() {
        let seeds = SeedLabels::new(vec![Some(1), Some(0), Some(1)], 2).unwrap();
        let r = seeds.restricted_to(&[0, 2]);
        assert_eq!(r.get(0), Some(1));
        assert_eq!(r.get(1), None);
        assert_eq!(r.get(2), Some(1));
    }
}
