//! Degree-distribution families for the synthetic graph generator.
//!
//! The paper's generator "actively controls the degree distributions in the resulting
//! graph" and runs its synthetic experiments with uniform and power-law (coefficient 0.3)
//! distributions. A [`DegreeDistribution`] produces *relative* degree weights per node;
//! the generator scales them so the expected total degree equals `2m`.

use crate::error::{GraphError, Result};

/// A family of node-degree distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegreeDistribution {
    /// Every node has the same expected degree.
    Uniform,
    /// Node `i` (after an implicit rank ordering) has relative weight `(i+1)^(-exponent)`.
    /// The paper uses `exponent = 0.3`.
    PowerLaw {
        /// The power-law exponent (must be non-negative).
        exponent: f64,
    },
}

impl DegreeDistribution {
    /// The paper's default power-law distribution (coefficient 0.3).
    pub fn paper_power_law() -> Self {
        DegreeDistribution::PowerLaw { exponent: 0.3 }
    }

    /// Generate relative degree weights for `n` nodes, normalized to sum to 1.
    ///
    /// The weights are deterministic per node index; the generator shuffles node
    /// identities independently, so no randomness is needed here.
    pub fn relative_weights(&self, n: usize) -> Result<Vec<f64>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let weights: Vec<f64> = match self {
            DegreeDistribution::Uniform => vec![1.0; n],
            DegreeDistribution::PowerLaw { exponent } => {
                if *exponent < 0.0 {
                    return Err(GraphError::InvalidGeneratorConfig(
                        "power-law exponent must be non-negative".into(),
                    ));
                }
                (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect()
            }
        };
        let total: f64 = weights.iter().sum();
        Ok(weights.into_iter().map(|w| w / total).collect())
    }

    /// Expected degree of each node for a graph with `m` undirected edges.
    pub fn expected_degrees(&self, n: usize, m: usize) -> Result<Vec<f64>> {
        let weights = self.relative_weights(n)?;
        Ok(weights.into_iter().map(|w| w * 2.0 * m as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_equal() {
        let w = DegreeDistribution::Uniform.relative_weights(5).unwrap();
        assert_eq!(w.len(), 5);
        for x in &w {
            assert!((x - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn power_law_weights_decay() {
        let w = DegreeDistribution::paper_power_law()
            .relative_weights(100)
            .unwrap();
        assert!(w[0] > w[50]);
        assert!(w[50] > w[99]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_zero_exponent_is_uniform() {
        let w = DegreeDistribution::PowerLaw { exponent: 0.0 }
            .relative_weights(4)
            .unwrap();
        for x in &w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_exponent_rejected() {
        assert!(DegreeDistribution::PowerLaw { exponent: -1.0 }
            .relative_weights(3)
            .is_err());
    }

    #[test]
    fn expected_degrees_sum_to_2m() {
        let d = DegreeDistribution::paper_power_law()
            .expected_degrees(10, 25)
            .unwrap();
        assert!((d.iter().sum::<f64>() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_weights() {
        assert!(DegreeDistribution::Uniform
            .relative_weights(0)
            .unwrap()
            .is_empty());
    }
}
