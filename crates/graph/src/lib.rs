//! # fg-graph
//!
//! Graph representation, class-compatibility matrices, labelings, and the synthetic
//! planted-partition generator used to reproduce *"Factorized Graph Representations for
//! Semi-Supervised Learning from Sparse Data"* (SIGMOD 2020).
//!
//! The central types are:
//!
//! * [`Graph`] — an undirected graph backed by a symmetric CSR adjacency matrix `W`.
//! * [`CompatibilityMatrix`] — a validated symmetric doubly-stochastic `k x k` matrix
//!   `H` describing how classes link to each other (homophily, heterophily, or any mix).
//! * [`Labeling`] / [`SeedLabels`] — full ground-truth labels and the sparse seed labels
//!   the estimators actually observe, including stratified sampling at label fraction `f`.
//! * [`GeneratorConfig`] / [`generate`] — the paper's synthetic generator
//!   `(n, m, α, H, dist)` with controlled degree distributions and planted compatibilities.
//! * [`measure_compatibilities`] — the gold-standard measurement of `H` from a fully
//!   labeled graph.
//! * [`LowRankFactor`] — a rank-`r` spectral factorization `W ≈ V·Λ·Vᵀ` of the
//!   adjacency (plus the projected degree correction) powering the low-rank
//!   counting backend, fingerprinted by `(graph, rank, solver params)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compatibility;
pub mod degree;
pub mod error;
pub mod fingerprint;
pub mod generator;
pub mod graph;
pub mod labels;
pub mod lowrank;

pub use compatibility::{two_value_heuristic, CompatibilityMatrix};
pub use degree::DegreeDistribution;
pub use error::{GraphError, Result};
pub use fingerprint::{Fingerprint, FingerprintBuilder, RollingFingerprint};
pub use generator::{generate, measure_compatibilities, GeneratorConfig, SyntheticGraph};
pub use graph::Graph;
pub use labels::{Labeling, SeedLabels};
pub use lowrank::{factor_fingerprint, FactorConfig, LowRankFactor};
