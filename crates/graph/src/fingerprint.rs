//! Content-addressed structural fingerprints.
//!
//! A [`Fingerprint`] is a deterministic 128-bit hash of a value's *content* — the CSR
//! arrays of a [`Graph`](crate::Graph), the `(node, label)` pairs of a
//! [`SeedLabels`](crate::SeedLabels) — computed with the FNV-1a 128 function over a
//! domain-tagged, little-endian byte encoding. Two independently loaded copies of the
//! same data therefore share one fingerprint, which is what lets the estimation layer
//! cache expensive graph summaries by *value* instead of by pointer identity and
//! persist them across processes (`fg_core`'s `SummaryCache` / `SummaryStore`).
//!
//! Guarantees relied upon by the cache layers:
//!
//! * **Deterministic**: the hash depends only on the encoded content, never on memory
//!   addresses, hash-map iteration order, or the process. The same bytes always
//!   produce the same fingerprint, across runs and across machines (the encoding is
//!   explicitly little-endian).
//! * **Version-tagged**: every hashed object starts with a domain tag (e.g.
//!   `fg-graph-csr-v1`), so fingerprints of different types never collide by
//!   construction and any future encoding change invalidates old fingerprints instead
//!   of silently matching them.
//! * **Content-complete**: graphs hash shape, `indptr`, `indices`, and the exact
//!   `f64` bit patterns of the edge weights; seed sets hash `n`, `k`, and every
//!   `(node id, label)` pair. Any structural difference — an extra edge, a changed
//!   weight, a relabeled seed — yields a different fingerprint (up to 128-bit hash
//!   collisions).

use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content fingerprint (see the [module docs](self) for the guarantees).
///
/// Renders as 32 lowercase hex characters; [`Fingerprint::parse_hex`] inverts
/// [`Fingerprint::to_hex`], which is how the persistent summary store embeds
/// fingerprints in file names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Wrap a raw 128-bit value (used when decoding persisted fingerprints).
    pub const fn from_u128(raw: u128) -> Self {
        Fingerprint(raw)
    }

    /// The raw 128-bit value (used when encoding fingerprints for persistence).
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Render as 32 lowercase hex characters.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the output of [`Fingerprint::to_hex`] (exactly 32 hex characters; no
    /// sign prefix or other decoration — only canonical `to_hex` strings round-trip).
    pub fn parse_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Incremental FNV-1a 128 hasher with typed, fixed-width write methods.
///
/// All multi-byte values are folded in as little-endian bytes, so the stream — and
/// therefore the fingerprint — is identical on every platform. `f64` values hash
/// their IEEE-754 bit pattern, making the fingerprint exactly as strict as the
/// bit-identity guarantee of the cached summaries themselves.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    state: u128,
}

impl FingerprintBuilder {
    /// Start a hash stream for the given domain tag (e.g. `b"fg-graph-csr-v1"`).
    pub fn new(domain_tag: &[u8]) -> Self {
        let mut builder = FingerprintBuilder {
            state: FNV128_OFFSET,
        };
        builder.write_bytes(domain_tag);
        builder
    }

    /// Fold raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Fold a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Fold a `usize` into the hash, widened to `u64` so 32- and 64-bit platforms
    /// produce the same stream.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Fold an `f64` into the hash via its IEEE-754 bit pattern (`-0.0` and `0.0`
    /// therefore hash differently, matching bit-identity semantics).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Finish the stream.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Order-independent commutative accumulator over element [`Fingerprint`]s.
///
/// Elements are combined with wrapping 128-bit addition, which is commutative and
/// associative, so the accumulated value depends only on the *multiset* of elements —
/// never on insertion order — and every insertion has an exact inverse
/// ([`remove`](Self::remove) undoes [`add`](Self::add) bit-for-bit). That inverse is
/// what makes O(1) *rolling* fingerprints possible: a mutation updates the
/// accumulator by removing the old element hash and adding the new one, instead of
/// re-hashing the whole collection. The element count is folded in alongside the sum
/// so multisets whose sums collide by wrapping (e.g. `{x}` vs `{x, 0}`) still
/// separate.
///
/// `SeedLabels::fingerprint` builds on this: each `(node, label)` pair hashes to an
/// independent element fingerprint, and the seed-set fingerprint is a domain-tagged
/// hash of `(n, k, count, sum)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RollingFingerprint {
    sum: u128,
    count: u64,
}

impl RollingFingerprint {
    /// An empty accumulator (no elements).
    pub fn new() -> Self {
        RollingFingerprint::default()
    }

    /// Fold one element in. O(1); order-independent.
    pub fn add(&mut self, element: Fingerprint) {
        self.sum = self.sum.wrapping_add(element.as_u128());
        self.count += 1;
    }

    /// Remove one previously added element. O(1); the exact inverse of
    /// [`add`](Self::add).
    ///
    /// # Panics
    ///
    /// Panics if more elements are removed than were added — that is always a caller
    /// bug (the accumulator cannot represent a negative multiset).
    pub fn remove(&mut self, element: Fingerprint) {
        self.count = self
            .count
            .checked_sub(1)
            .expect("removed more elements than were added");
        self.sum = self.sum.wrapping_sub(element.as_u128());
    }

    /// The commutative 128-bit sum over the current multiset.
    pub fn value(&self) -> u128 {
        self.sum
    }

    /// Number of elements currently accumulated.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no elements are accumulated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_domain_stream_is_the_offset_basis() {
        assert_eq!(
            FingerprintBuilder::new(b"").finish(),
            Fingerprint(FNV128_OFFSET)
        );
    }

    #[test]
    fn known_fnv1a_128_vector() {
        // FNV-1a 128 of "a" (reference value from the FNV specification test suite).
        let mut b = FingerprintBuilder::new(b"");
        b.write_bytes(b"a");
        assert_eq!(b.finish().to_hex(), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn domain_tags_separate_identical_payloads() {
        let mut a = FingerprintBuilder::new(b"domain-a");
        let mut b = FingerprintBuilder::new(b"domain-b");
        a.write_u64(42);
        b.write_u64(42);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writes_are_order_and_value_sensitive() {
        let fp = |vals: &[u64]| {
            let mut b = FingerprintBuilder::new(b"t");
            for &v in vals {
                b.write_u64(v);
            }
            b.finish()
        };
        assert_eq!(fp(&[1, 2]), fp(&[1, 2]));
        assert_ne!(fp(&[1, 2]), fp(&[2, 1]));
        assert_ne!(fp(&[1]), fp(&[1, 0]));
    }

    #[test]
    fn f64_hashes_bit_patterns() {
        let fp = |v: f64| {
            let mut b = FingerprintBuilder::new(b"f");
            b.write_f64(v);
            b.finish()
        };
        assert_eq!(fp(1.5), fp(1.5));
        assert_ne!(fp(0.0), fp(-0.0));
        assert_ne!(fp(1.0), fp(1.0 + f64::EPSILON));
    }

    #[test]
    fn hex_round_trip() {
        let mut b = FingerprintBuilder::new(b"hex");
        b.write_u64(7).write_f64(0.25).write_usize(9);
        let fp = b.finish();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
        assert_eq!(format!("{fp}"), hex);
        assert!(Fingerprint::parse_hex("short").is_none());
        assert!(Fingerprint::parse_hex(&"g".repeat(32)).is_none());
        // Only canonical hex round-trips: a sign prefix is rejected even though the
        // underlying integer parser would accept it.
        assert!(Fingerprint::parse_hex(&format!("+{}", &"0".repeat(31))).is_none());
    }

    #[test]
    fn rolling_accumulator_is_order_independent_and_invertible() {
        let elems: Vec<Fingerprint> = (0..6u64)
            .map(|i| {
                let mut b = FingerprintBuilder::new(b"roll");
                b.write_u64(i);
                b.finish()
            })
            .collect();
        let mut forward = RollingFingerprint::new();
        assert!(forward.is_empty());
        for &e in &elems {
            forward.add(e);
        }
        let mut backward = RollingFingerprint::new();
        for &e in elems.iter().rev() {
            backward.add(e);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.len(), 6);
        // Removal is the exact inverse of addition, at any position.
        let mut rolled = forward;
        rolled.remove(elems[2]);
        rolled.remove(elems[5]);
        let mut rebuilt = RollingFingerprint::new();
        for (i, &e) in elems.iter().enumerate() {
            if i != 2 && i != 5 {
                rebuilt.add(e);
            }
        }
        assert_eq!(rolled, rebuilt);
        // Draining everything returns to the empty accumulator.
        for (i, &e) in elems.iter().enumerate() {
            if i != 2 && i != 5 {
                rolled.remove(e);
            }
        }
        assert_eq!(rolled, RollingFingerprint::new());
        // The count separates multisets whose sums collide by wrapping.
        let zero = Fingerprint::from_u128(0);
        let mut with_zero = forward;
        with_zero.add(zero);
        assert_eq!(with_zero.value(), forward.value());
        assert_ne!(with_zero, forward);
    }

    #[test]
    #[should_panic(expected = "removed more elements")]
    fn rolling_accumulator_rejects_excess_removal() {
        let mut r = RollingFingerprint::new();
        r.remove(Fingerprint::from_u128(1));
    }
}
