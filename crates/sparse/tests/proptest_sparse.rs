//! Property-style tests: the CSR kernels must agree with the dense reference
//! implementation on arbitrary small matrices.
//!
//! The build environment has no access to crates.io, so instead of `proptest` these
//! run each property over a deterministic sweep of seeded random inputs (the vendored
//! `rand` shim provides the generator). Coverage is equivalent in spirit: dozens of
//! random shapes/values per property, reproducible by seed.

use fg_sparse::{CooMatrix, CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A small dense matrix with entries in [-5, 5].
fn dense_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> DenseMatrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.gen::<f64>() * 10.0 - 5.0)
        .collect();
    DenseMatrix::from_vec(rows, cols, data).unwrap()
}

/// A small sparse matrix (as triplets) of a given shape, with a random number of
/// entries (possibly zero, possibly duplicated — duplicates accumulate).
fn sparse_triplets(rows: usize, cols: usize, rng: &mut StdRng) -> Vec<(usize, usize, f64)> {
    let max_nnz = (rows * cols).max(1);
    let nnz = rng.gen_index(max_nnz);
    (0..nnz)
        .map(|_| {
            (
                rng.gen_index(rows),
                rng.gen_index(cols),
                rng.gen::<f64>() * 10.0 - 5.0,
            )
        })
        .collect()
}

fn sparse_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> CsrMatrix {
    CsrMatrix::from_triplets(rows, cols, &sparse_triplets(rows, cols, rng))
}

#[test]
fn csr_to_dense_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = sparse_matrix(6, 5, &mut rng);
        let dense = m.to_dense();
        let back = CsrMatrix::from_dense(&dense);
        assert!(back.to_dense().approx_eq(&dense, 0.0), "seed {seed}");
    }
}

#[test]
fn spmv_agrees_with_dense() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = sparse_matrix(5, 4, &mut rng);
        let v: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() * 6.0 - 3.0).collect();
        let got = m.spmv(&v).unwrap();
        let expected = m.to_dense().matvec(&v).unwrap();
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn spmm_dense_agrees_with_dense() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = sparse_matrix(5, 4, &mut rng);
        let x = dense_matrix(4, 3, &mut rng);
        let got = m.spmm_dense(&x).unwrap();
        let expected = m.to_dense().matmul(&x).unwrap();
        assert!(got.approx_eq(&expected, 1e-9), "seed {seed}");
    }
}

#[test]
fn spmm_sparse_agrees_with_dense() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = sparse_matrix(4, 5, &mut rng);
        let b = sparse_matrix(5, 3, &mut rng);
        let got = a.spmm(&b).unwrap().to_dense();
        let expected = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert!(got.approx_eq(&expected, 1e-9), "seed {seed}");
    }
}

#[test]
fn add_sub_agree_with_dense() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = sparse_matrix(4, 4, &mut rng);
        let b = sparse_matrix(4, 4, &mut rng);
        let sum = a.add(&b).unwrap().to_dense();
        let expected_sum = a.to_dense().add(&b.to_dense()).unwrap();
        assert!(sum.approx_eq(&expected_sum, 1e-9), "seed {seed}");
        let diff = a.sub(&b).unwrap().to_dense();
        let expected_diff = a.to_dense().sub(&b.to_dense()).unwrap();
        assert!(diff.approx_eq(&expected_diff, 1e-9), "seed {seed}");
    }
}

#[test]
fn transpose_involution() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = sparse_matrix(5, 3, &mut rng);
        assert!(
            a.transpose()
                .transpose()
                .to_dense()
                .approx_eq(&a.to_dense(), 0.0),
            "seed {seed}"
        );
    }
}

#[test]
fn dense_matmul_associative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = dense_matrix(3, 3, &mut rng);
        let b = dense_matrix(3, 3, &mut rng);
        let c = dense_matrix(3, 3, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-6), "seed {seed}");
    }
}

#[test]
fn dense_transpose_of_product() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = dense_matrix(3, 4, &mut rng);
        let b = dense_matrix(4, 2, &mut rng);
        // (AB)^T == B^T A^T
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(left.approx_eq(&right, 1e-9), "seed {seed}");
    }
}

#[test]
fn row_normalized_rows_sum_to_one_or_zero() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = sparse_matrix(5, 5, &mut rng);
        // Row-normalization on |values| keeps each nonzero row summing to 1.
        let abs = CsrMatrix::from_triplets(
            5,
            5,
            &m.iter()
                .map(|(r, c, v)| (r, c, v.abs()))
                .collect::<Vec<_>>(),
        );
        let norm = abs.row_normalized();
        for (i, s) in norm.row_sums().iter().enumerate() {
            if abs.row_nnz(i) > 0 && abs.row(i).1.iter().sum::<f64>() > 0.0 {
                assert!((s - 1.0).abs() < 1e-9, "seed {seed} row {i}");
            } else {
                assert!(s.abs() < 1e-12, "seed {seed} row {i}");
            }
        }
    }
}

#[test]
fn coo_duplicate_accumulation() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<(usize, usize, f64)> = (0..rng.gen_index(20))
            .map(|_| {
                (
                    rng.gen_index(4),
                    rng.gen_index(4),
                    rng.gen::<f64>() * 4.0 - 2.0,
                )
            })
            .collect();
        let mut coo = CooMatrix::new(4, 4);
        let mut reference = DenseMatrix::zeros(4, 4);
        for (r, c, v) in &entries {
            coo.push(*r, *c, *v).unwrap();
            reference.add_at(*r, *c, *v);
        }
        assert!(
            coo.to_csr().to_dense().approx_eq(&reference, 1e-9),
            "seed {seed}"
        );
    }
}

#[test]
fn spectral_radius_scales_linearly() {
    // rho(c * W) = c * rho(W) for a fixed small graph, across a sweep of scales.
    let w = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
    let base = fg_sparse::spectral_radius(&w).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let scale = 0.1 + rng.gen::<f64>() * 3.9;
        let scaled = fg_sparse::spectral_radius(&w.scaled(scale)).unwrap();
        assert!((scaled - scale * base).abs() < 1e-5, "scale {scale}");
    }
}

#[test]
fn frobenius_distance_is_a_metric() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = dense_matrix(3, 3, &mut rng);
        let b = dense_matrix(3, 3, &mut rng);
        let dab = a.frobenius_distance(&b).unwrap();
        let dba = b.frobenius_distance(&a).unwrap();
        assert!((dab - dba).abs() < 1e-12, "seed {seed}");
        assert!(a.frobenius_distance(&a).unwrap() < 1e-12, "seed {seed}");
        assert!(dab >= 0.0, "seed {seed}");
    }
}
