//! Property-based tests: the CSR kernels must agree with the dense reference
//! implementation on arbitrary small matrices.

use fg_sparse::{CooMatrix, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy generating a small dense matrix with entries in [-5, 5].
fn dense_matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy generating a small sparse matrix (as triplets) of a given shape.
fn sparse_matrix(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec(
        (0..rows, 0..cols, -5.0f64..5.0),
        0..(rows * cols).max(1),
    )
    .prop_map(move |trip| CsrMatrix::from_triplets(rows, cols, &trip))
}

proptest! {
    #[test]
    fn csr_to_dense_roundtrip(m in sparse_matrix(6, 5)) {
        let dense = m.to_dense();
        let back = CsrMatrix::from_dense(&dense);
        prop_assert!(back.to_dense().approx_eq(&dense, 0.0));
    }

    #[test]
    fn spmv_agrees_with_dense(m in sparse_matrix(5, 4), v in proptest::collection::vec(-3.0f64..3.0, 4)) {
        let got = m.spmv(&v).unwrap();
        let expected = m.to_dense().matvec(&v).unwrap();
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn spmm_dense_agrees_with_dense(m in sparse_matrix(5, 4), x in dense_matrix(4, 3)) {
        let got = m.spmm_dense(&x).unwrap();
        let expected = m.to_dense().matmul(&x).unwrap();
        prop_assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn spmm_sparse_agrees_with_dense(a in sparse_matrix(4, 5), b in sparse_matrix(5, 3)) {
        let got = a.spmm(&b).unwrap().to_dense();
        let expected = a.to_dense().matmul(&b.to_dense()).unwrap();
        prop_assert!(got.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn add_sub_agree_with_dense(a in sparse_matrix(4, 4), b in sparse_matrix(4, 4)) {
        let sum = a.add(&b).unwrap().to_dense();
        let expected_sum = a.to_dense().add(&b.to_dense()).unwrap();
        prop_assert!(sum.approx_eq(&expected_sum, 1e-9));
        let diff = a.sub(&b).unwrap().to_dense();
        let expected_diff = a.to_dense().sub(&b.to_dense()).unwrap();
        prop_assert!(diff.approx_eq(&expected_diff, 1e-9));
    }

    #[test]
    fn transpose_involution(a in sparse_matrix(5, 3)) {
        prop_assert!(a.transpose().transpose().to_dense().approx_eq(&a.to_dense(), 0.0));
    }

    #[test]
    fn dense_matmul_associative(
        a in dense_matrix(3, 3),
        b in dense_matrix(3, 3),
        c in dense_matrix(3, 3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn dense_transpose_of_product(a in dense_matrix(3, 4), b in dense_matrix(4, 2)) {
        // (AB)^T == B^T A^T
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn row_normalized_rows_sum_to_one_or_zero(m in sparse_matrix(5, 5)) {
        // Row-normalization on |values| keeps each nonzero row summing to 1.
        let abs = CsrMatrix::from_triplets(
            5, 5,
            &m.iter().map(|(r, c, v)| (r, c, v.abs())).collect::<Vec<_>>(),
        );
        let norm = abs.row_normalized();
        for (i, s) in norm.row_sums().iter().enumerate() {
            if abs.row_nnz(i) > 0 && abs.row(i).1.iter().sum::<f64>() > 0.0 {
                prop_assert!((s - 1.0).abs() < 1e-9);
            } else {
                prop_assert!(s.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn coo_duplicate_accumulation(entries in proptest::collection::vec((0usize..4, 0usize..4, -2.0f64..2.0), 0..20)) {
        let mut coo = CooMatrix::new(4, 4);
        let mut reference = DenseMatrix::zeros(4, 4);
        for (r, c, v) in &entries {
            coo.push(*r, *c, *v).unwrap();
            reference.add_at(*r, *c, *v);
        }
        prop_assert!(coo.to_csr().to_dense().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn spectral_radius_scales_linearly(scale in 0.1f64..4.0) {
        // rho(c * W) = c * rho(W) for a fixed small graph.
        let w = CsrMatrix::from_triplets(
            3, 3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        );
        let base = fg_sparse::spectral_radius(&w).unwrap();
        let scaled = fg_sparse::spectral_radius(&w.scaled(scale)).unwrap();
        prop_assert!((scaled - scale * base).abs() < 1e-5);
    }

    #[test]
    fn frobenius_distance_is_a_metric(a in dense_matrix(3, 3), b in dense_matrix(3, 3)) {
        let dab = a.frobenius_distance(&b).unwrap();
        let dba = b.frobenius_distance(&a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(a.frobenius_distance(&a).unwrap() < 1e-12);
        prop_assert!(dab >= 0.0);
    }
}
