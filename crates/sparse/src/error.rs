//! Error types for the sparse linear-algebra kernels.

use std::fmt;

/// Errors produced by the sparse / dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Two operands have incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A row or column index is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
    },
    /// The operation requires a square matrix but the matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// An iterative procedure failed to converge within its iteration budget.
    DidNotConverge {
        /// Description of the procedure.
        what: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The operation would divide by zero (e.g. normalizing an all-zero row).
    SingularScaling {
        /// Description of the operation.
        op: &'static str,
    },
    /// The input data is malformed (e.g. unsorted or duplicate indices where forbidden).
    InvalidInput(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square but is {rows}x{cols}")
            }
            SparseError::DidNotConverge { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            SparseError::SingularScaling { op } => {
                write!(f, "{op} would divide by zero")
            }
            SparseError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = SparseError::DimensionMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds { index: 7, bound: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn display_not_square() {
        let e = SparseError::NotSquare { rows: 3, cols: 4 };
        assert!(e.to_string().contains("3x4"));
    }

    #[test]
    fn display_did_not_converge() {
        let e = SparseError::DidNotConverge {
            what: "power iteration",
            iterations: 100,
        };
        assert!(e.to_string().contains("power iteration"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn display_singular_scaling() {
        let e = SparseError::SingularScaling {
            op: "row normalize",
        };
        assert!(e.to_string().contains("row normalize"));
    }

    #[test]
    fn display_invalid_input() {
        let e = SparseError::InvalidInput("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SparseError::NotSquare { rows: 1, cols: 2 });
        assert!(!e.to_string().is_empty());
    }
}
